//===- collector/PagedIndex.cpp - TBIX v2 paged index checkpoint ----------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "collector/PagedIndex.h"

#include "triage/Signature.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

using namespace traceback;

uint64_t traceback::fnv1a64(const void *Data, size_t Len, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

/// Data-page checksum: a 4-lane multiply-xor hash over the page's 64-bit
/// words. Open validates every data page of a potentially multi-hundred-
/// megabyte checkpoint in one streaming pass, so the page hash runs
/// word-wise with four independent dependency chains instead of FNV's
/// serial byte chain — same fixed-page granularity, ~an order of
/// magnitude faster. FNV-1a stays the hash for the small inputs (header,
/// page-sum table, journal windows) where simplicity wins.
uint64_t pageSum64(const uint8_t *P) {
  constexpr uint64_t M = 0x9ddfea08eb382d69ull;
  uint64_t H0 = 0x9e3779b97f4a7c15ull, H1 = 0xc2b2ae3d27d4eb4full,
           H2 = 0x165667b19e3779f9ull, H3 = 0x27d4eb2f165667c5ull;
  for (size_t I = 0; I < TbixPageSize; I += 32) {
    uint64_t W0, W1, W2, W3;
    std::memcpy(&W0, P + I, 8);
    std::memcpy(&W1, P + I + 8, 8);
    std::memcpy(&W2, P + I + 16, 8);
    std::memcpy(&W3, P + I + 24, 8);
    H0 = (H0 ^ W0) * M;
    H1 = (H1 ^ W1) * M;
    H2 = (H2 ^ W2) * M;
    H3 = (H3 ^ W3) * M;
  }
  uint64_t H = (H0 ^ (H1 >> 29)) * M + H1;
  H = (H ^ (H2 >> 29)) * M + H2;
  H = (H ^ (H3 >> 29)) * M + H3;
  return H ^ (H >> 32);
}

constexpr uint32_t TbixMagic = 0x32584254; // "TBX2"
constexpr uint32_t TbixVersion = 2;

/// Header field order (see serializeHeader). The header occupies page 0;
/// everything after UsedBytes is zero padding.
struct HeaderFields {
  uint64_t FileBytes = 0;
  uint64_t EntryCount = 0;
  uint64_t NextId = 1;
  uint64_t LiveCount = 0;
  uint64_t LiveBytes = 0;
  uint64_t LiveRefs = 0;
  uint64_t JournalBytes = 0;
  uint64_t JournalHeadHash = 0;
  uint64_t JournalTailHash = 0;
  // Regions: entry blob, entry dir, 4x key table, 4x postings, time,
  // dedup, page-sum table — (offset, length) pairs.
  uint64_t Regions[13][2] = {};
  uint64_t TableHash = 0; ///< FNV of the page-sum table bytes.
};

constexpr size_t RegEntryBlob = 0, RegEntryDir = 1, RegKeyFirst = 2,
                 RegPostFirst = 6, RegTime = 10, RegDedup = 11,
                 RegPageSums = 12;

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  const uint8_t *P = reinterpret_cast<const uint8_t *>(&V);
  B.insert(B.end(), P, P + 4);
}
void putU64(std::vector<uint8_t> &B, uint64_t V) {
  const uint8_t *P = reinterpret_cast<const uint8_t *>(&V);
  B.insert(B.end(), P, P + 8);
}
void putU16(std::vector<uint8_t> &B, uint16_t V) {
  const uint8_t *P = reinterpret_cast<const uint8_t *>(&V);
  B.insert(B.end(), P, P + 2);
}
void putStr(std::vector<uint8_t> &B, const std::string &S) {
  putU16(B, static_cast<uint16_t>(S.size()));
  B.insert(B.end(), S.begin(), S.end());
}

std::vector<uint8_t> serializeHeader(const HeaderFields &H) {
  std::vector<uint8_t> B;
  B.reserve(512);
  putU32(B, TbixMagic);
  putU32(B, TbixVersion);
  putU32(B, static_cast<uint32_t>(TbixPageSize));
  putU32(B, 0); // reserved
  putU64(B, H.FileBytes);
  putU64(B, H.EntryCount);
  putU64(B, H.NextId);
  putU64(B, H.LiveCount);
  putU64(B, H.LiveBytes);
  putU64(B, H.LiveRefs);
  putU64(B, H.JournalBytes);
  putU64(B, H.JournalHeadHash);
  putU64(B, H.JournalTailHash);
  for (const auto &R : H.Regions) {
    putU64(B, R[0]);
    putU64(B, R[1]);
  }
  putU64(B, H.TableHash);
  putU64(B, fnv1a64(B.data(), B.size())); // header self-hash, last field
  B.resize(TbixPageSize, 0);
  return B;
}

bool deserializeHeader(const uint8_t *P, size_t Len, HeaderFields &H,
                       std::string &Why) {
  if (Len < TbixPageSize) {
    Why = "short header";
    return false;
  }
  size_t Off = 0;
  auto getU32 = [&]() {
    uint32_t V;
    std::memcpy(&V, P + Off, 4);
    Off += 4;
    return V;
  };
  auto getU64 = [&]() {
    uint64_t V;
    std::memcpy(&V, P + Off, 8);
    Off += 8;
    return V;
  };
  if (getU32() != TbixMagic) {
    Why = "bad magic";
    return false;
  }
  if (getU32() != TbixVersion) {
    Why = "unsupported version";
    return false;
  }
  if (getU32() != TbixPageSize) {
    Why = "page size mismatch";
    return false;
  }
  (void)getU32();
  H.FileBytes = getU64();
  H.EntryCount = getU64();
  H.NextId = getU64();
  H.LiveCount = getU64();
  H.LiveBytes = getU64();
  H.LiveRefs = getU64();
  H.JournalBytes = getU64();
  H.JournalHeadHash = getU64();
  H.JournalTailHash = getU64();
  for (auto &R : H.Regions) {
    R[0] = getU64();
    R[1] = getU64();
  }
  H.TableHash = getU64();
  uint64_t Stored;
  std::memcpy(&Stored, P + Off, 8);
  if (fnv1a64(P, Off) != Stored) {
    Why = "header checksum mismatch";
    return false;
  }
  return true;
}

/// Serializes one entry record into \p B (appended).
void serializeEntry(const SnapStoreEntry &E, std::vector<uint8_t> &B) {
  putU64(B, E.Id);
  putU32(B, E.Shard);
  putU64(B, E.Offset);
  putU64(B, E.ImageBytes);
  putU64(B, E.PayloadHash);
  putU64(B, E.Fingerprint);
  putU64(B, E.MachineId);
  putU64(B, E.Pid);
  putU64(B, E.Timestamp);
  putU16(B, E.Reason);
  putU64(B, E.RefCount);
  B.push_back(E.Dead ? 1 : 0);
  putStr(B, E.Kind);
  putStr(B, E.MachineName);
  putStr(B, E.ProcessName);
  putU16(B, static_cast<uint16_t>(E.ModuleNames.size()));
  for (size_t I = 0; I < E.ModuleNames.size(); ++I) {
    putStr(B, E.ModuleNames[I]);
    putU64(B, E.ModuleKeys[I]);
    B.push_back(E.ModuleInstrumented[I] ? 1 : 0);
  }
  putU16(B, static_cast<uint16_t>(E.Markers.size()));
  for (const std::string &M : E.Markers)
    putStr(B, M);
}

bool deserializeEntry(const uint8_t *P, size_t Len, SnapStoreEntry &E) {
  size_t Off = 0;
  auto need = [&](size_t N) { return Off + N <= Len; };
  auto getU64 = [&](uint64_t &V) {
    if (!need(8))
      return false;
    std::memcpy(&V, P + Off, 8);
    Off += 8;
    return true;
  };
  auto getU32 = [&](uint32_t &V) {
    if (!need(4))
      return false;
    std::memcpy(&V, P + Off, 4);
    Off += 4;
    return true;
  };
  auto getU16 = [&](uint16_t &V) {
    if (!need(2))
      return false;
    std::memcpy(&V, P + Off, 2);
    Off += 2;
    return true;
  };
  auto getU8 = [&](uint8_t &V) {
    if (!need(1))
      return false;
    V = P[Off++];
    return true;
  };
  auto getStr = [&](std::string &S) {
    uint16_t N;
    if (!getU16(N) || !need(N))
      return false;
    S.assign(reinterpret_cast<const char *>(P + Off), N);
    Off += N;
    return true;
  };
  uint8_t Flag = 0;
  uint16_t NMods = 0, NMarks = 0;
  if (!getU64(E.Id) || !getU32(E.Shard) || !getU64(E.Offset) ||
      !getU64(E.ImageBytes) || !getU64(E.PayloadHash) ||
      !getU64(E.Fingerprint) || !getU64(E.MachineId) || !getU64(E.Pid) ||
      !getU64(E.Timestamp) || !getU16(E.Reason) || !getU64(E.RefCount) ||
      !getU8(Flag) || !getStr(E.Kind) || !getStr(E.MachineName) ||
      !getStr(E.ProcessName) || !getU16(NMods))
    return false;
  E.Dead = Flag != 0;
  E.ModuleNames.resize(NMods);
  E.ModuleKeys.resize(NMods);
  E.ModuleInstrumented.resize(NMods);
  for (uint16_t I = 0; I < NMods; ++I) {
    if (!getStr(E.ModuleNames[I]) || !getU64(E.ModuleKeys[I]) ||
        !getU8(E.ModuleInstrumented[I]))
      return false;
  }
  if (!getU16(NMarks))
    return false;
  E.Markers.resize(NMarks);
  for (uint16_t I = 0; I < NMarks; ++I)
    if (!getStr(E.Markers[I]))
      return false;
  return Off == Len;
}

/// Streams bytes to a file while hashing each TbixPageSize-aligned page
/// as it completes. Page 0 (the header) is written as zeros first and
/// patched at the end; its hash lives inside the header itself, not in
/// the table.
class PageStreamWriter {
public:
  explicit PageStreamWriter(std::FILE *F) : F(F) {}

  bool write(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    while (Len) {
      size_t Room = TbixPageSize - Fill;
      size_t N = Len < Room ? Len : Room;
      std::memcpy(Buf + Fill, P, N);
      Fill += N;
      P += N;
      Len -= N;
      Written += N;
      if (Fill == TbixPageSize && !flushPage())
        return false;
    }
    return true;
  }

  /// Pads the current page with zeros up to the page boundary.
  bool padToPage() {
    if (Fill == 0)
      return true;
    static const uint8_t Zeros[256] = {};
    while (Fill != 0) {
      size_t N = TbixPageSize - Fill;
      if (N > sizeof(Zeros))
        N = sizeof(Zeros);
      if (!write(Zeros, N))
        return false;
    }
    return true;
  }

  uint64_t offset() const { return Written; }
  const std::vector<uint64_t> &pageSums() const { return Sums; }

private:
  bool flushPage() {
    // Page 0 is the header placeholder — not in the table.
    if (PageIdx > 0)
      Sums.push_back(pageSum64(Buf));
    ++PageIdx;
    Fill = 0;
    return std::fwrite(Buf, 1, TbixPageSize, F) == TbixPageSize;
  }

  std::FILE *F;
  uint8_t Buf[TbixPageSize];
  size_t Fill = 0;
  uint64_t PageIdx = 0;
  uint64_t Written = 0;
  std::vector<uint64_t> Sums;
};

} // namespace

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

bool traceback::writePagedIndex(
    const std::string &Path, const PagedIndexHeaderInfo &HI,
    const std::function<bool(SnapStoreEntry &)> &NextEntry,
    std::string &Error) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    Error = "cannot create checkpoint: " + Tmp;
    return false;
  }

  HeaderFields H;
  H.NextId = HI.NextId;
  H.LiveCount = HI.LiveCount;
  H.LiveBytes = HI.LiveBytes;
  H.LiveRefs = HI.LiveRefs;
  H.JournalBytes = HI.JournalBytes;
  H.JournalHeadHash = HI.JournalHeadHash;
  H.JournalTailHash = HI.JournalTailHash;

  PageStreamWriter W(F);
  bool Ok = true;
  // Placeholder header page; patched after everything else is laid out.
  {
    std::vector<uint8_t> Zero(TbixPageSize, 0);
    Ok = W.write(Zero.data(), Zero.size());
  }

  // --- Entry blob (streamed) + accumulated side tables -------------------
  struct DirRow {
    uint64_t Id, Off;
    uint32_t Len;
  };
  std::vector<DirRow> Dir;
  // std::map keys the tables deterministically (sorted), which makes the
  // checkpoint byte-reproducible for equal store state.
  std::map<uint64_t, std::vector<uint64_t>> Post[4];
  std::vector<std::pair<uint64_t, uint64_t>> Time;
  std::vector<TbixDedupRow> Dedup;

  H.Regions[RegEntryBlob][0] = W.offset();
  {
    SnapStoreEntry E;
    std::vector<uint8_t> Rec;
    while (Ok) {
      E = SnapStoreEntry();
      if (!NextEntry(E))
        break;
      Rec.clear();
      serializeEntry(E, Rec);
      Dir.push_back({E.Id, W.offset() - H.Regions[RegEntryBlob][0],
                     static_cast<uint32_t>(Rec.size())});
      for (size_t I = 0; I < E.ModuleKeys.size(); ++I) {
        Post[0][E.ModuleKeys[I]].push_back(E.Id);
        uint64_t NameKey = signatureHash(E.ModuleNames[I]);
        if (NameKey != E.ModuleKeys[I])
          Post[0][NameKey].push_back(E.Id);
      }
      Post[1][signatureHash(E.Kind)].push_back(E.Id);
      Post[2][E.Fingerprint].push_back(E.Id);
      Post[3][E.MachineId].push_back(E.Id);
      uint64_t MachKey = signatureHash(E.MachineName);
      if (MachKey != E.MachineId)
        Post[3][MachKey].push_back(E.Id);
      Time.push_back({E.Timestamp, E.Id});
      if (!E.Dead)
        Dedup.push_back({E.Fingerprint, E.PayloadHash, E.Id});
      Ok = W.write(Rec.data(), Rec.size());
    }
  }
  H.Regions[RegEntryBlob][1] = W.offset() - H.Regions[RegEntryBlob][0];
  H.EntryCount = Dir.size();

  // --- Entry directory ---------------------------------------------------
  H.Regions[RegEntryDir][0] = W.offset();
  for (const DirRow &R : Dir) {
    uint8_t Row[20];
    std::memcpy(Row, &R.Id, 8);
    std::memcpy(Row + 8, &R.Off, 8);
    std::memcpy(Row + 16, &R.Len, 4);
    if (!(Ok = W.write(Row, sizeof(Row))))
      break;
  }
  H.Regions[RegEntryDir][1] = W.offset() - H.Regions[RegEntryDir][0];

  // --- Key tables + postings per dimension -------------------------------
  for (unsigned D = 0; D < 4 && Ok; ++D) {
    H.Regions[RegKeyFirst + D][0] = W.offset();
    uint64_t Cum = 0;
    for (const auto &KV : Post[D]) {
      uint8_t Row[24];
      uint64_t Count = KV.second.size();
      std::memcpy(Row, &KV.first, 8);
      std::memcpy(Row + 8, &Cum, 8); // id-offset within the posting region
      std::memcpy(Row + 16, &Count, 8);
      Cum += Count;
      if (!(Ok = W.write(Row, sizeof(Row))))
        break;
    }
    H.Regions[RegKeyFirst + D][1] = W.offset() - H.Regions[RegKeyFirst + D][0];
    H.Regions[RegPostFirst + D][0] = W.offset();
    for (const auto &KV : Post[D]) {
      if (!Ok)
        break;
      Ok = W.write(KV.second.data(), KV.second.size() * 8);
    }
    H.Regions[RegPostFirst + D][1] =
        W.offset() - H.Regions[RegPostFirst + D][0];
  }

  // --- Time table (already ascending: entries stream in id order and
  // ties sort by id; sort pairs to get (ts, id) order) --------------------
  std::sort(Time.begin(), Time.end());
  H.Regions[RegTime][0] = W.offset();
  if (Ok && !Time.empty())
    Ok = W.write(Time.data(), Time.size() * 16);
  H.Regions[RegTime][1] = W.offset() - H.Regions[RegTime][0];

  // --- Dedup table -------------------------------------------------------
  std::sort(Dedup.begin(), Dedup.end(),
            [](const TbixDedupRow &A, const TbixDedupRow &B) {
              return A.Fp != B.Fp ? A.Fp < B.Fp : A.Ph < B.Ph;
            });
  H.Regions[RegDedup][0] = W.offset();
  for (const TbixDedupRow &R : Dedup) {
    uint8_t Row[24];
    std::memcpy(Row, &R.Fp, 8);
    std::memcpy(Row + 8, &R.Ph, 8);
    std::memcpy(Row + 16, &R.Id, 8);
    if (!(Ok = W.write(Row, sizeof(Row))))
      break;
  }
  H.Regions[RegDedup][1] = W.offset() - H.Regions[RegDedup][0];

  // --- Page-sum table (page-aligned so every data page is full) ----------
  if (Ok)
    Ok = W.padToPage();
  H.Regions[RegPageSums][0] = W.offset();
  std::vector<uint64_t> Sums = W.pageSums();
  if (Ok && !Sums.empty())
    Ok = W.write(Sums.data(), Sums.size() * 8);
  H.Regions[RegPageSums][1] = W.offset() - H.Regions[RegPageSums][0];
  H.TableHash = fnv1a64(Sums.data(), Sums.size() * 8);
  // Flush the table's trailing partial page; FileBytes is the padded,
  // page-aligned size the reader checks against.
  if (Ok)
    Ok = W.padToPage();
  H.FileBytes = W.offset();

  // Patch the header page in place.
  if (Ok) {
    std::vector<uint8_t> HdrBytes = serializeHeader(H);
    Ok = std::fseek(F, 0, SEEK_SET) == 0 &&
         std::fwrite(HdrBytes.data(), 1, HdrBytes.size(), F) ==
             HdrBytes.size();
  }
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (Ok)
    Ok = std::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok) {
    std::remove(Tmp.c_str());
    Error = "checkpoint write failed: " + Path;
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

PagedIndexReader::~PagedIndexReader() {
  if (File)
    std::fclose(static_cast<std::FILE *>(File));
  if (PI.Resident && CachedBytes)
    PI.Resident->add(-static_cast<int64_t>(CachedBytes));
}

std::unique_ptr<PagedIndexReader>
PagedIndexReader::open(const std::string &Path, const std::string &JournalPath,
                       size_t CacheBytes, const PageCacheInstruments &Inst,
                       std::string &Why) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Why = "no checkpoint";
    return nullptr;
  }
  auto fail = [&](const std::string &W) {
    Why = W;
    std::fclose(F);
    return nullptr;
  };

  uint8_t HdrPage[TbixPageSize];
  if (std::fread(HdrPage, 1, sizeof(HdrPage), F) != sizeof(HdrPage))
    return fail("short checkpoint header");
  HeaderFields H;
  if (!deserializeHeader(HdrPage, sizeof(HdrPage), H, Why)) {
    std::fclose(F);
    return nullptr;
  }

  if (std::fseek(F, 0, SEEK_END) != 0)
    return fail("seek failed");
  uint64_t FileBytes = static_cast<uint64_t>(std::ftell(F));
  if (FileBytes != H.FileBytes)
    return fail("checkpoint size mismatch (torn tail?)");
  for (const auto &R : H.Regions)
    if (R[0] + R[1] > FileBytes || R[0] + R[1] < R[0])
      return fail("region out of bounds");

  // Page-sum table: read, hash-check, then stream every data page once
  // verifying its checksum. The streaming pass holds one chunk at a time
  // — validation leaves nothing resident.
  uint64_t TableOff = H.Regions[RegPageSums][0];
  uint64_t TableLen = H.Regions[RegPageSums][1];
  if (TableOff % TbixPageSize != 0)
    return fail("misaligned page-sum table");
  uint64_t DataPages = TableOff / TbixPageSize; // pages 0..DataPages-1
  if (DataPages == 0 || TableLen != (DataPages - 1) * 8)
    return fail("page-sum table length mismatch");
  std::vector<uint64_t> Sums(DataPages - 1);
  if (std::fseek(F, static_cast<long>(TableOff), SEEK_SET) != 0 ||
      std::fread(Sums.data(), 8, Sums.size(), F) != Sums.size())
    return fail("cannot read page-sum table");
  if (fnv1a64(Sums.data(), Sums.size() * 8) != H.TableHash)
    return fail("page-sum table hash mismatch");
  {
    if (std::fseek(F, TbixPageSize, SEEK_SET) != 0)
      return fail("seek failed");
    std::vector<uint8_t> Chunk(64 * TbixPageSize);
    uint64_t Page = 1;
    while (Page < DataPages) {
      uint64_t N = DataPages - Page;
      if (N > 64)
        N = 64;
      size_t Want = static_cast<size_t>(N) * TbixPageSize;
      if (std::fread(Chunk.data(), 1, Want, F) != Want)
        return fail("cannot read data pages");
      for (uint64_t I = 0; I < N; ++I, ++Page)
        if (pageSum64(Chunk.data() + I * TbixPageSize) != Sums[Page - 1])
          return fail("page " + std::to_string(Page) + " checksum mismatch");
    }
  }

  // Journal coverage: the checkpoint describes the journal's first
  // JournalBytes bytes. The journal is append-only between compactions,
  // so hashing the prefix's first and last 4 KiB windows catches a
  // truncated, rewritten, or swapped journal without re-reading the
  // whole prefix.
  {
    std::FILE *J = std::fopen(JournalPath.c_str(), "rb");
    uint64_t JBytes = 0;
    if (J) {
      std::fseek(J, 0, SEEK_END);
      JBytes = static_cast<uint64_t>(std::ftell(J));
    }
    if (JBytes < H.JournalBytes) {
      if (J)
        std::fclose(J);
      return fail("journal shorter than checkpoint coverage");
    }
    uint8_t Win[TbixPageSize];
    auto hashAt = [&](uint64_t Off, size_t Len, uint64_t &Out) {
      if (std::fseek(J, static_cast<long>(Off), SEEK_SET) != 0 ||
          std::fread(Win, 1, Len, J) != Len)
        return false;
      Out = fnv1a64(Win, Len);
      return true;
    };
    if (H.JournalBytes > 0) {
      size_t HeadLen = static_cast<size_t>(
          H.JournalBytes < TbixPageSize ? H.JournalBytes : TbixPageSize);
      size_t TailLen = HeadLen;
      uint64_t HeadHash = 0, TailHash = 0;
      bool HOk = J && hashAt(0, HeadLen, HeadHash) &&
                 hashAt(H.JournalBytes - TailLen, TailLen, TailHash);
      if (J)
        std::fclose(J);
      if (!HOk)
        return fail("cannot read journal coverage windows");
      if (HeadHash != H.JournalHeadHash || TailHash != H.JournalTailHash)
        return fail("journal prefix hash mismatch (stale checkpoint)");
    } else if (J) {
      std::fclose(J);
    }
  }

  auto R = std::unique_ptr<PagedIndexReader>(new PagedIndexReader());
  R->Path = Path;
  R->File = F;
  R->FileBytes = FileBytes;
  R->EntryCount = H.EntryCount;
  R->HdrNextId = H.NextId;
  R->HdrLiveCount = H.LiveCount;
  R->HdrLiveBytes = H.LiveBytes;
  R->HdrLiveRefs = H.LiveRefs;
  R->HdrJournalBytes = H.JournalBytes;
  R->EntryBlob = {H.Regions[RegEntryBlob][0], H.Regions[RegEntryBlob][1]};
  R->EntryDir = {H.Regions[RegEntryDir][0], H.Regions[RegEntryDir][1]};
  for (unsigned D = 0; D < 4; ++D) {
    R->KeyTables[D] = {H.Regions[RegKeyFirst + D][0],
                       H.Regions[RegKeyFirst + D][1]};
    R->Postings[D] = {H.Regions[RegPostFirst + D][0],
                      H.Regions[RegPostFirst + D][1]};
  }
  R->Time = {H.Regions[RegTime][0], H.Regions[RegTime][1]};
  R->Dedup = {H.Regions[RegDedup][0], H.Regions[RegDedup][1]};
  R->TimeRows = R->Time.Len / 16;
  R->DedupRows = R->Dedup.Len / 24;
  // At least two pages of cache, whatever the configured cap, or nothing
  // would ever fit a record spanning a page boundary.
  R->CacheCap = CacheBytes < 2 * TbixPageSize ? 2 * TbixPageSize : CacheBytes;
  R->PI = Inst;
  return R;
}

const uint8_t *PagedIndexReader::pageLocked(uint64_t PageIdx) const {
  auto It = Pages.find(PageIdx);
  if (It != Pages.end()) {
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    if (PI.Hits)
      PI.Hits->add();
    return It->second.Bytes.data();
  }
  if (PI.Misses)
    PI.Misses->add();
  uint64_t Off = PageIdx * TbixPageSize;
  size_t Len = TbixPageSize;
  if (Off + Len > FileBytes)
    Len = static_cast<size_t>(FileBytes - Off);
  Page P;
  P.Bytes.resize(TbixPageSize, 0);
  std::FILE *F = static_cast<std::FILE *>(File);
  if (std::fseek(F, static_cast<long>(Off), SEEK_SET) != 0 ||
      std::fread(P.Bytes.data(), 1, Len, F) != Len)
    return nullptr; // Validated at open; only an I/O fault lands here.
  while (CachedBytes + TbixPageSize > CacheCap && !Lru.empty()) {
    uint64_t Victim = Lru.back();
    Lru.pop_back();
    Pages.erase(Victim);
    CachedBytes -= TbixPageSize;
    if (PI.Evictions)
      PI.Evictions->add();
    if (PI.Resident)
      PI.Resident->add(-static_cast<int64_t>(TbixPageSize));
  }
  Lru.push_front(PageIdx);
  P.LruIt = Lru.begin();
  auto Ins = Pages.emplace(PageIdx, std::move(P));
  CachedBytes += TbixPageSize;
  if (PI.Resident)
    PI.Resident->add(static_cast<int64_t>(TbixPageSize));
  return Ins.first->second.Bytes.data();
}

bool PagedIndexReader::read(uint64_t Off, size_t Len, void *Out) const {
  if (Off + Len > FileBytes)
    return false;
  std::lock_guard<std::mutex> Lock(CacheMutex);
  uint8_t *Dst = static_cast<uint8_t *>(Out);
  while (Len) {
    uint64_t PageIdx = Off / TbixPageSize;
    size_t InPage = static_cast<size_t>(Off % TbixPageSize);
    size_t N = TbixPageSize - InPage;
    if (N > Len)
      N = Len;
    const uint8_t *P = pageLocked(PageIdx);
    if (!P)
      return false;
    std::memcpy(Dst, P + InPage, N);
    Dst += N;
    Off += N;
    Len -= N;
  }
  return true;
}

uint64_t PagedIndexReader::readU64(uint64_t Off) const {
  uint64_t V = 0;
  read(Off, 8, &V);
  return V;
}

bool PagedIndexReader::entryByIndex(uint64_t Idx, SnapStoreEntry &Out) const {
  if (Idx >= EntryCount)
    return false;
  uint8_t Row[20];
  if (!read(EntryDir.Off + Idx * 20, 20, Row))
    return false;
  uint64_t BlobOff;
  uint32_t Len;
  std::memcpy(&BlobOff, Row + 8, 8);
  std::memcpy(&Len, Row + 16, 4);
  if (BlobOff + Len > EntryBlob.Len)
    return false;
  std::vector<uint8_t> Rec(Len);
  return read(EntryBlob.Off + BlobOff, Len, Rec.data()) &&
         deserializeEntry(Rec.data(), Rec.size(), Out);
}

bool PagedIndexReader::entryById(uint64_t Id, SnapStoreEntry &Out) const {
  uint64_t Lo = 0, Hi = EntryCount;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t MidId = readU64(EntryDir.Off + Mid * 20);
    if (MidId == Id)
      return entryByIndex(Mid, Out);
    if (MidId < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

bool PagedIndexReader::hasEntry(uint64_t Id) const {
  uint64_t Lo = 0, Hi = EntryCount;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t MidId = readU64(EntryDir.Off + Mid * 20);
    if (MidId == Id)
      return true;
    if (MidId < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

const PagedIndexReader::Region &
PagedIndexReader::keyTable(TbixDim D) const {
  return KeyTables[static_cast<unsigned>(D)];
}
const PagedIndexReader::Region &
PagedIndexReader::postingRegion(TbixDim D) const {
  return Postings[static_cast<unsigned>(D)];
}

bool PagedIndexReader::findPosting(TbixDim D, uint64_t Key,
                                   PostingRef &Out) const {
  const Region &T = keyTable(D);
  uint64_t Rows = T.Len / 24;
  uint64_t Lo = 0, Hi = Rows;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t MidKey = readU64(T.Off + Mid * 24);
    if (MidKey == Key) {
      uint64_t IdOff = readU64(T.Off + Mid * 24 + 8);
      Out.Off = postingRegion(D).Off + IdOff * 8;
      Out.Count = readU64(T.Off + Mid * 24 + 16);
      return true;
    }
    if (MidKey < Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

uint64_t PagedIndexReader::postingIdAt(const PostingRef &P, uint64_t I) const {
  return readU64(P.Off + I * 8);
}

bool PagedIndexReader::postingContains(const PostingRef &P,
                                       uint64_t Id) const {
  uint64_t Lo = 0, Hi = P.Count;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t V = postingIdAt(P, Mid);
    if (V == Id)
      return true;
    if (V < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

void PagedIndexReader::timeAt(uint64_t I, uint64_t &Ts, uint64_t &Id) const {
  uint8_t Row[16];
  if (!read(Time.Off + I * 16, 16, Row)) {
    Ts = Id = 0;
    return;
  }
  std::memcpy(&Ts, Row, 8);
  std::memcpy(&Id, Row + 8, 8);
}

bool PagedIndexReader::findDedup(uint64_t Fp, uint64_t Ph,
                                 uint64_t &IdOut) const {
  uint64_t Lo = 0, Hi = DedupRows;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t MidFp = readU64(Dedup.Off + Mid * 24);
    uint64_t MidPh = readU64(Dedup.Off + Mid * 24 + 8);
    if (MidFp == Fp && MidPh == Ph) {
      IdOut = readU64(Dedup.Off + Mid * 24 + 16);
      return true;
    }
    if (MidFp < Fp || (MidFp == Fp && MidPh < Ph))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

size_t PagedIndexReader::residentBytes() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return CachedBytes;
}
