//===- collector/PagedIndex.h - TBIX v2 paged index checkpoint --*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TBIX v2 checkpoint: a binary, page-structured snapshot of a snap
/// store's index that makes open O(tail) instead of O(history). The v1
/// line-oriented journal (`index.tbx`) remains the crash-consistent
/// write-ahead record of everything that ever happened to the store; the
/// checkpoint (`index.tbx2`) is a pure accelerator written at close()
/// and compact() time. Opening a store with a valid checkpoint loads a
/// 4 KiB header, verifies every page's FNV-1a checksum with one
/// sequential streaming pass (no decode, no resident state), and then
/// replays only the journal bytes appended after the checkpoint. A
/// corrupt, torn, or stale checkpoint is simply ignored — open degrades
/// to full journal replay, never to wrong results.
///
/// File layout (all integers host-endian, fixed width):
///
///   page 0        header: magic "TBX2", version, page size, file size,
///                 entry/live/ref counts, next id, journal coverage
///                 (byte length + FNV of the covered prefix's first and
///                 last 4 KiB), one (offset, length) pair per region,
///                 checksum-table location/hash, header FNV.
///   entry blob    length-prefixed entry records, ascending id.
///   entry dir     (id, blob offset, length) triples, ascending id —
///                 binary-searchable through the page cache.
///   key tables    per dimension (module / kind-hash / fingerprint /
///    + postings   machine): sorted (key, posting offset, count) rows,
///                 then the posting ids (ascending entry id) per key.
///   time table    (timestamp, id) pairs sorted ascending — retention
///                 walks and the fan-in time cursor.
///   dedup table   (fingerprint, payload hash, id) rows sorted by key —
///                 the append path's dedup probe, O(log n) page reads.
///   page sums     one 64-bit word-wise checksum per data page (pages
///                 1..tableStart-1); the table itself is covered by an
///                 FNV hash in the header.
///
/// Readers never materialize a region: every access goes through a
/// bounded LRU page cache (instrumented as store.page.{hits,misses,
/// evictions} and the store.bytes_resident gauge), so resident memory
/// is flat in store size.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_COLLECTOR_PAGEDINDEX_H
#define TRACEBACK_COLLECTOR_PAGEDINDEX_H

#include "collector/SnapStore.h"
#include "support/Metrics.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace traceback {

/// FNV-1a 64 over a raw byte range (header, page-sum table and journal
/// coverage windows; data pages use a faster word-wise hash internally).
uint64_t fnv1a64(const void *Data, size_t Len,
                 uint64_t Seed = 1469598103934665603ull);

/// The checkpoint's fixed page size.
constexpr size_t TbixPageSize = 4096;

/// Posting dimensions a checkpoint indexes (matches SnapStore's posting
/// maps; Kind keys are signatureHash(kind) — the residual predicate
/// re-checks the exact string, so a hash collision only widens the
/// candidate list, never the result).
enum class TbixDim : unsigned { Module = 0, Kind = 1, Fingerprint = 2,
                                Machine = 3 };

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Everything a checkpoint records beyond the entries themselves.
struct PagedIndexHeaderInfo {
  uint64_t NextId = 1;
  uint64_t LiveCount = 0;
  uint64_t LiveBytes = 0;
  uint64_t LiveRefs = 0;     ///< Sum of live entries' refcounts.
  uint64_t JournalBytes = 0; ///< v1 journal length this checkpoint covers.
  uint64_t JournalHeadHash = 0; ///< FNV of the prefix's first 4 KiB.
  uint64_t JournalTailHash = 0; ///< FNV of the prefix's last 4 KiB.
};

/// One dedup-table row: the live (fingerprint, payload hash) -> id
/// mapping exactly as the store's in-memory probe would answer it. At
/// most one live entry exists per key (dedup folds repeats into a
/// refcount), so the table is derived from the live entries themselves.
struct TbixDedupRow {
  uint64_t Fp = 0, Ph = 0, Id = 0;
};

/// Streams a checkpoint to \p Path + ".tmp" and renames it into place.
/// \p NextEntry yields entries in ascending id order (returning false
/// when exhausted). Posting, time and dedup tables are accumulated
/// during the streaming pass (O(entries) transient memory —
/// checkpointing is a maintenance operation; *opening* one is what
/// stays flat).
bool writePagedIndex(const std::string &Path, const PagedIndexHeaderInfo &H,
                     const std::function<bool(SnapStoreEntry &)> &NextEntry,
                     std::string &Error);

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// Instrument sinks the page cache reports into (owned by the store).
struct PageCacheInstruments {
  Counter *Hits = nullptr;
  Counter *Misses = nullptr;
  Counter *Evictions = nullptr;
  Gauge *Resident = nullptr; ///< store.bytes_resident contribution.
};

/// A validated, lazily-read TBIX v2 checkpoint. Thread-safe: all page
/// access is serialized through the cache mutex, so parallel query
/// workers can share one reader.
class PagedIndexReader {
public:
  ~PagedIndexReader();

  /// Opens and fully validates \p Path (header hash, checksum-table
  /// hash, every data page's checksum — one streaming pass — and the
  /// journal-coverage hashes against \p JournalPath). Returns null with
  /// \p Why set when anything fails; the caller falls back to full
  /// journal replay.
  static std::unique_ptr<PagedIndexReader>
  open(const std::string &Path, const std::string &JournalPath,
       size_t CacheBytes, const PageCacheInstruments &PI, std::string &Why);

  // Header facts.
  uint64_t entryCount() const { return EntryCount; }
  uint64_t nextId() const { return HdrNextId; }
  uint64_t liveCount() const { return HdrLiveCount; }
  uint64_t liveBytes() const { return HdrLiveBytes; }
  uint64_t liveRefs() const { return HdrLiveRefs; }
  uint64_t journalBytes() const { return HdrJournalBytes; }

  /// Decodes the \p Idx-th entry (directory order = ascending id).
  bool entryByIndex(uint64_t Idx, SnapStoreEntry &Out) const;
  /// The \p Idx-th entry's id without decoding the record.
  uint64_t entryIdAt(uint64_t Idx) const {
    return readU64(EntryDir.Off + Idx * 20);
  }
  /// Binary-searches the directory for \p Id.
  bool entryById(uint64_t Id, SnapStoreEntry &Out) const;
  bool hasEntry(uint64_t Id) const;

  /// A located posting list (byte offset of its id array + id count).
  struct PostingRef {
    uint64_t Off = 0;
    uint64_t Count = 0;
  };
  /// Finds \p Key's posting list in dimension \p D. False = no such key
  /// (which proves no checkpoint entry matches it).
  bool findPosting(TbixDim D, uint64_t Key, PostingRef &Out) const;
  uint64_t postingIdAt(const PostingRef &P, uint64_t I) const;
  /// Sorted-membership probe — the intersection primitive.
  bool postingContains(const PostingRef &P, uint64_t Id) const;

  /// Time table: (timestamp, id) pairs ascending.
  uint64_t timeCount() const { return TimeRows; }
  void timeAt(uint64_t I, uint64_t &Ts, uint64_t &Id) const;

  /// Dedup probe: the checkpoint-time live mapping for (Fp, Ph).
  bool findDedup(uint64_t Fp, uint64_t Ph, uint64_t &IdOut) const;

  /// Bytes currently held by the page cache (≤ the configured cap).
  size_t residentBytes() const;

private:
  PagedIndexReader() = default;

  struct Region {
    uint64_t Off = 0, Len = 0;
  };

  /// Copies [Off, Off+Len) out of the file through the page cache.
  bool read(uint64_t Off, size_t Len, void *Out) const;
  uint64_t readU64(uint64_t Off) const;
  const Region &keyTable(TbixDim D) const;
  const Region &postingRegion(TbixDim D) const;

  std::string Path;
  void *File = nullptr; ///< FILE*, shared under CacheMutex.
  uint64_t FileBytes = 0;

  uint64_t EntryCount = 0, HdrNextId = 1, HdrLiveCount = 0,
           HdrLiveBytes = 0, HdrLiveRefs = 0, HdrJournalBytes = 0;
  uint64_t TimeRows = 0, DedupRows = 0;
  Region EntryBlob, EntryDir, Time, Dedup;
  Region KeyTables[4], Postings[4];

  // Bounded LRU page cache. Pages are raw 4 KiB file chunks; decoded
  // values are never cached (decoding from a resident page is cheap and
  // keeps the bound exact).
  mutable std::mutex CacheMutex;
  struct Page {
    std::vector<uint8_t> Bytes;
    std::list<uint64_t>::iterator LruIt;
  };
  mutable std::unordered_map<uint64_t, Page> Pages;
  mutable std::list<uint64_t> Lru; ///< Front = most recent.
  mutable size_t CachedBytes = 0;
  size_t CacheCap = 0;
  PageCacheInstruments PI;

  const uint8_t *pageLocked(uint64_t PageIdx) const;
};

} // namespace traceback

#endif // TRACEBACK_COLLECTOR_PAGEDINDEX_H
