//===- collector/SnapStore.h - Indexed, queryable snap store ----*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet collector's persistent snap store: the thing an engineer
/// queries at first-fault time instead of a directory of files loaded
/// whole into memory. A store is a directory of
///
///   shard-NN.tbar   sharded append-only TBAR archives (the payloads)
///   index.tbx       the persistent content index (TBIX v1 journal)
///
/// The index is an append-only, line-oriented journal: `add` records one
/// ingested snap's metadata (shard/offset/size of the payload plus every
/// queryable key — module checksums and names, fault kind, triage
/// signature fingerprint, machine, time), `ref` bumps a dedup refcount
/// and `evict` tombstones a retention victim. Opening a store replays
/// the journal (streamed line by line, never read whole); a torn final
/// line from a crashed collector is dropped, exactly like a torn TBAR
/// tail. compact() rewrites the shards without dead entries and replaces
/// the journal with a clean snapshot.
///
/// Query evaluation is index-only: each predicate dimension keeps a
/// posting list (sorted entry ids per key), the planner starts from the
/// smallest applicable list and filters the residual predicates per
/// entry. Results stream through a cursor in ascending id order —
/// payloads are point-read from their shard on demand and the store is
/// never materialized in memory. scan() runs the same predicates over a
/// full linear walk of the index; the chaos sweeps assert both paths
/// return byte-identical results.
///
/// Dedup: an image whose (signature fingerprint, payload hash) pair was
/// seen before is stored once and refcounted. Retention: byte and age
/// caps evict live entries in deterministic order — oldest timestamp
/// first, lowest id on ties — so two stores fed the same stream evict
/// the same victims.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_COLLECTOR_SNAPSTORE_H
#define TRACEBACK_COLLECTOR_SNAPSTORE_H

#include "runtime/Snap.h"
#include "support/Metrics.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace traceback {

/// One indexed snap: everything a query can match on, plus where the
/// payload lives. This is index metadata only — the image itself stays
/// on disk until loadImage()/loadSnap() point-reads it.
struct SnapStoreEntry {
  uint64_t Id = 0;         ///< Monotonic; stable across compaction.
  uint32_t Shard = 0;      ///< Which shard-NN.tbar holds the payload.
  uint64_t Offset = 0;     ///< Frame offset within the shard.
  uint64_t ImageBytes = 0; ///< Serialized image size.
  uint64_t PayloadHash = 0; ///< FNV-1a 64 of the image bytes.
  uint64_t Fingerprint = 0; ///< Header-level triage signature fingerprint.
  std::string Kind;         ///< Signature kind ("fault:<code>@<mod>", ...).
  std::string MachineName;  ///< Producing machine (from the snap header).
  uint64_t MachineId = 0;   ///< Transport source machine id (0 = direct).
  std::string ProcessName;
  uint64_t Pid = 0;
  uint64_t Timestamp = 0;   ///< Capture time (simulated cycles).
  uint16_t Reason = 0;      ///< SnapReason as stored.
  /// Module names, checksum keys (low 64 bits) and instrumented flags,
  /// aligned. All modules are indexed; the instrumented subset rebuilds
  /// the triage signature for query reports.
  std::vector<std::string> ModuleNames;
  std::vector<uint64_t> ModuleKeys;
  std::vector<uint8_t> ModuleInstrumented;
  /// Degradation markers of the header-level signature.
  std::vector<std::string> Markers;
  uint64_t RefCount = 1;    ///< Dedup occurrences folded into this entry.
  bool Dead = false;        ///< Evicted; payload reclaimed at compact().
};

/// Composable query predicates. Every unset dimension matches anything;
/// set dimensions AND together.
struct SnapQuery {
  /// Module predicate: a checksum key (low 64 of the MD5) or a name hash
  /// (signatureHash of the name) — setModule() accepts either spelling.
  bool HasModule = false;
  uint64_t ModuleKey = 0;
  /// Fault-kind predicate (exact signature kind string).
  std::string Kind;
  /// Signature fingerprint predicate.
  bool HasFingerprint = false;
  uint64_t Fingerprint = 0;
  /// Machine predicate: name hash or raw machine id (setMachine()).
  bool HasMachine = false;
  uint64_t MachineKey = 0;
  /// Time window [Since, Until], inclusive, on Timestamp.
  uint64_t Since = 0;
  uint64_t Until = UINT64_MAX;
  /// Stop after this many matches (0 = unlimited).
  size_t Top = 0;

  /// \p NameOrHex: a module name, or a 16-hex-digit checksum key.
  SnapQuery &setModule(const std::string &NameOrHex);
  SnapQuery &setKind(const std::string &K) { Kind = K; return *this; }
  SnapQuery &setFingerprint(uint64_t FP) {
    HasFingerprint = true;
    Fingerprint = FP;
    return *this;
  }
  /// \p NameOrId: a machine name, or a decimal machine id.
  SnapQuery &setMachine(const std::string &NameOrId);
  SnapQuery &setWindow(uint64_t S, uint64_t U) {
    Since = S;
    Until = U;
    return *this;
  }
};

/// Store tuning. Retention caps are enforced at append time.
struct SnapStoreOptions {
  /// Payload shard count; an entry lands in shard (PayloadHash % Shards).
  unsigned Shards = 4;
  /// Live payload byte cap (0 = unbounded). Exceeding it evicts the
  /// oldest live entries until the cap holds again.
  uint64_t MaxBytes = 0;
  /// Age cap in timestamp units relative to the newest live entry
  /// (0 = unbounded): entries older than Newest - MaxAge are evicted.
  uint64_t MaxAge = 0;
  /// Open for query only: no journal writer, appends fail.
  bool ReadOnly = false;
  /// Destination of the "collector.store." instrument family
  /// (null = the process-global registry).
  MetricsRegistry *Metrics = nullptr;
};

/// The indexed, queryable snap store.
class SnapStore {
public:
  SnapStore();
  ~SnapStore();
  SnapStore(const SnapStore &) = delete;
  SnapStore &operator=(const SnapStore &) = delete;

  /// Opens (creating if needed) the store directory and replays the
  /// index journal. Returns false with \p Error set on malformed index
  /// data or I/O failure.
  bool open(const std::string &Dir, const SnapStoreOptions &O,
            std::string &Error);
  bool isOpen() const { return Open; }
  const std::string &directory() const { return Dir; }
  /// Flushes and closes; the store can be reopened.
  void close();

  /// What one append did.
  struct AppendResult {
    uint64_t Id = 0;     ///< The entry appended to or refcounted.
    bool Deduped = false;
    size_t Evicted = 0;  ///< Entries retention evicted as a consequence.
  };

  /// Ingests one serialized snap image. Parses the header, extracts the
  /// header-level triage signature (the fingerprint index key), dedups,
  /// appends the payload to its shard, journals the index record and
  /// enforces retention. \p SrcMachineId is the transport source (0 when
  /// the snap arrived by direct delivery). Returns false on I/O failure
  /// or an unparsable image.
  bool append(const std::vector<uint8_t> &Image, uint64_t SrcMachineId,
              AppendResult &Out, std::string *Error = nullptr);

  /// Serializes \p Snap (current format) and appends it.
  bool appendSnap(const SnapFile &Snap, uint64_t SrcMachineId,
                  AppendResult &Out, std::string *Error = nullptr);

  // --- Query ---------------------------------------------------------------

  /// Streams matching entries in ascending id order without ever
  /// materializing the store: next() returns index metadata; payloads
  /// are fetched per entry via loadImage()/loadSnap().
  class Cursor {
  public:
    /// The next live matching entry, or null when exhausted (or the
    /// query's Top cap is reached).
    const SnapStoreEntry *next();

  private:
    friend class SnapStore;
    Cursor(const SnapStore &S, SnapQuery Q, const std::vector<uint64_t> *P)
        : S(S), Q(std::move(Q)), Posting(P) {}
    const SnapStore &S;
    SnapQuery Q;
    /// The planner-chosen posting list; null = walk every entry.
    const std::vector<uint64_t> *Posting;
    size_t Pos = 0;
    size_t Returned = 0;
  };

  /// Indexed query: starts from the smallest applicable posting list.
  Cursor query(const SnapQuery &Q) const;
  /// Full linear scan with identical predicate semantics — the oracle
  /// the sweeps compare query() against.
  Cursor scan(const SnapQuery &Q) const;

  /// Entry by id (null when unknown; dead entries are still returned —
  /// callers filter on Dead when they care).
  const SnapStoreEntry *entry(uint64_t Id) const;

  /// Point-reads one payload image from its shard.
  bool loadImage(const SnapStoreEntry &E, std::vector<uint8_t> &Out) const;
  /// loadImage + deserialize.
  bool loadSnap(const SnapStoreEntry &E, SnapFile &Out) const;

  // --- Maintenance ---------------------------------------------------------

  /// Rewrites every shard without dead entries and replaces the journal
  /// with a clean snapshot. Ids, order and live contents are preserved,
  /// so two stores with equal live state compact to identical bytes.
  /// Returns false with \p Error on I/O failure.
  bool compact(std::string *Error = nullptr);

  // --- Stats ---------------------------------------------------------------

  size_t totalEntries() const { return Entries.size(); }
  size_t liveEntries() const { return LiveCount; }
  uint64_t liveBytes() const { return LiveBytes; }
  uint64_t totalRefs() const;
  uint64_t dedupHits() const { return DedupHitCount; }
  uint64_t evictions() const { return EvictionCount; }
  unsigned shardCount() const { return Opt.Shards; }

private:
  struct Shard;

  std::string shardPath(uint32_t Index) const;
  std::string indexPath() const;
  bool replayIndex(std::string &Error);
  bool journalLine(const std::string &Line);
  void indexEntry(const SnapStoreEntry &E);
  void markDead(SnapStoreEntry &E);
  /// Evicts until the byte/age caps hold. Returns how many were evicted.
  size_t enforceRetention();
  /// True when \p E matches every predicate of \p Q.
  static bool matches(const SnapStoreEntry &E, const SnapQuery &Q);
  /// Smallest applicable posting list for \p Q (null = none applicable).
  const std::vector<uint64_t> *planPosting(const SnapQuery &Q) const;

  std::string Dir;
  SnapStoreOptions Opt;
  bool Open = false;

  std::vector<SnapStoreEntry> Entries; ///< Ascending id.
  std::map<uint64_t, size_t> ById;     ///< Id -> slot in Entries.
  uint64_t NextId = 1;

  // Posting lists (sorted ascending entry ids per key). Dead entries
  // stay listed; cursors filter them — eviction is O(1) and compaction
  // rebuilds everything anyway.
  std::map<uint64_t, std::vector<uint64_t>> ByModule; ///< checksum + name hash
  std::map<std::string, std::vector<uint64_t>> ByKind;
  std::map<uint64_t, std::vector<uint64_t>> ByFingerprint;
  std::map<uint64_t, std::vector<uint64_t>> ByMachine; ///< id + name hash
  /// (Timestamp, Id), sorted — the age-cap walk and pure-time queries.
  std::vector<std::pair<uint64_t, uint64_t>> ByTime;

  /// (Fingerprint, PayloadHash) -> live entry id. std::map because
  /// eviction must erase keys (FlatMap64 is insert/find only).
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> DedupByKey;

  std::vector<std::unique_ptr<Shard>> Shards;
  void *Journal = nullptr; ///< FILE*, append mode.

  size_t LiveCount = 0;
  uint64_t LiveBytes = 0;
  uint64_t DedupHitCount = 0;
  uint64_t EvictionCount = 0;

  struct Instruments {
    Counter *Appends = nullptr;
    Counter *DedupHits = nullptr;
    Counter *Evictions = nullptr;
    Counter *Queries = nullptr;
    Counter *PointReads = nullptr;
    Gauge *LiveEntriesG = nullptr;
    Gauge *LiveBytesG = nullptr;
  };
  Instruments SM;
};

} // namespace traceback

#endif // TRACEBACK_COLLECTOR_SNAPSTORE_H
