//===- collector/SnapStore.h - Indexed, queryable snap store ----*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet collector's persistent snap store: the thing an engineer
/// queries at first-fault time instead of a directory of files loaded
/// whole into memory. A store is a directory of
///
///   shard-NN.tbar   sharded append-only TBAR archives (the payloads)
///   index.tbx       the persistent content index (TBIX v1 journal)
///   index.tbx2      paged TBIX v2 index checkpoint (optional accelerator)
///
/// The index journal is append-only and line-oriented: `add` records one
/// ingested snap's metadata (shard/offset/size of the payload plus every
/// queryable key — module checksums and names, fault kind, triage
/// signature fingerprint, machine, time), `ref` bumps a dedup refcount
/// and `evict` tombstones a retention victim. The journal is the
/// complete, crash-consistent history; a torn final line from a crashed
/// collector is dropped, exactly like a torn TBAR tail.
///
/// Opening a store replays the journal — unless a valid TBIX v2
/// checkpoint is present (see collector/PagedIndex.h), in which case
/// open validates the checkpoint's page checksums with one streaming
/// pass and replays only the journal tail appended after it. Checkpoint
/// entries are then read on demand through a bounded LRU page cache, so
/// resident index memory stays flat however large the store grows. A
/// corrupt, torn or stale checkpoint is ignored and open degrades to
/// full journal replay — never to wrong results. close() and compact()
/// write a fresh checkpoint.
///
/// Query evaluation is index-only: each predicate dimension keeps a
/// posting list (sorted entry ids per key), the planner starts from the
/// smallest applicable list and filters the residual predicates per
/// entry. Results stream through a cursor in ascending id order —
/// payloads are point-read from their shard on demand and the store is
/// never materialized in memory. scan() runs the same predicates over a
/// full linear walk of the index; the chaos sweeps assert both paths
/// return byte-identical results. query(Q, Pool) shards the residual
/// filtering across a thread pool and merges per-chunk results in index
/// order, so the parallel path is deterministic too. timeQuery() streams
/// matches in (Timestamp, Id) order — the per-store leg of tbtool's
/// multi-store fan-in merge.
///
/// Dedup: an image whose (signature fingerprint, payload hash) pair was
/// seen before is stored once and refcounted. Retention: byte and age
/// caps evict live entries in deterministic order — oldest timestamp
/// first, lowest id on ties — so two stores fed the same stream evict
/// the same victims.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_COLLECTOR_SNAPSTORE_H
#define TRACEBACK_COLLECTOR_SNAPSTORE_H

#include "runtime/Snap.h"
#include "support/FlatMap.h"
#include "support/Metrics.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace traceback {

class PagedIndexReader;
class ThreadPool;

/// One indexed snap: everything a query can match on, plus where the
/// payload lives. This is index metadata only — the image itself stays
/// on disk until loadImage()/loadSnap() point-reads it.
struct SnapStoreEntry {
  uint64_t Id = 0;         ///< Monotonic; stable across compaction.
  uint32_t Shard = 0;      ///< Which shard-NN.tbar holds the payload.
  uint64_t Offset = 0;     ///< Frame offset within the shard.
  uint64_t ImageBytes = 0; ///< Serialized image size.
  uint64_t PayloadHash = 0; ///< FNV-1a 64 of the image bytes.
  uint64_t Fingerprint = 0; ///< Header-level triage signature fingerprint.
  std::string Kind;         ///< Signature kind ("fault:<code>@<mod>", ...).
  std::string MachineName;  ///< Producing machine (from the snap header).
  uint64_t MachineId = 0;   ///< Transport source machine id (0 = direct).
  std::string ProcessName;
  uint64_t Pid = 0;
  uint64_t Timestamp = 0;   ///< Capture time (simulated cycles).
  uint16_t Reason = 0;      ///< SnapReason as stored.
  /// Module names, checksum keys (low 64 bits) and instrumented flags,
  /// aligned. All modules are indexed; the instrumented subset rebuilds
  /// the triage signature for query reports.
  std::vector<std::string> ModuleNames;
  std::vector<uint64_t> ModuleKeys;
  std::vector<uint8_t> ModuleInstrumented;
  /// Degradation markers of the header-level signature.
  std::vector<std::string> Markers;
  uint64_t RefCount = 1;    ///< Dedup occurrences folded into this entry.
  bool Dead = false;        ///< Evicted; payload reclaimed at compact().
};

/// Composable query predicates. Every unset dimension matches anything;
/// set dimensions AND together.
struct SnapQuery {
  /// Module predicate: a checksum key (low 64 of the MD5) or a name hash
  /// (signatureHash of the name) — setModule() accepts either spelling.
  bool HasModule = false;
  uint64_t ModuleKey = 0;
  /// Fault-kind predicate (exact signature kind string).
  std::string Kind;
  /// Signature fingerprint predicate.
  bool HasFingerprint = false;
  uint64_t Fingerprint = 0;
  /// Machine predicate: name hash or raw machine id (setMachine()).
  bool HasMachine = false;
  uint64_t MachineKey = 0;
  /// Time window [Since, Until], inclusive, on Timestamp.
  uint64_t Since = 0;
  uint64_t Until = UINT64_MAX;
  /// Stop after this many matches (0 = unlimited).
  size_t Top = 0;

  /// \p NameOrHex: a module name, or a 16-hex-digit checksum key.
  SnapQuery &setModule(const std::string &NameOrHex);
  SnapQuery &setKind(const std::string &K) { Kind = K; return *this; }
  SnapQuery &setFingerprint(uint64_t FP) {
    HasFingerprint = true;
    Fingerprint = FP;
    return *this;
  }
  /// \p NameOrId: a machine name, or a decimal machine id.
  SnapQuery &setMachine(const std::string &NameOrId);
  SnapQuery &setWindow(uint64_t S, uint64_t U) {
    Since = S;
    Until = U;
    return *this;
  }
};

/// Store tuning. Retention caps are enforced at append time.
struct SnapStoreOptions {
  /// Payload shard count; an entry lands in shard (PayloadHash % Shards).
  unsigned Shards = 4;
  /// Live payload byte cap (0 = unbounded). Exceeding it evicts the
  /// oldest live entries until the cap holds again.
  uint64_t MaxBytes = 0;
  /// Age cap in timestamp units relative to the newest live entry
  /// (0 = unbounded): entries older than Newest - MaxAge are evicted.
  uint64_t MaxAge = 0;
  /// Open for query only: no journal writer, appends fail, and close()
  /// writes no checkpoint.
  bool ReadOnly = false;
  /// Use the TBIX v2 checkpoint at open when one is present and valid.
  /// false forces full journal replay; checkpoints are still written at
  /// close()/compact() so a later paged open can use them.
  bool Paged = true;
  /// Checkpoint page-cache cap in bytes (the resident-memory bound of a
  /// paged store's index). Clamped to at least two pages.
  size_t PageCacheBytes = 2u << 20;
  /// Destination of the "collector.store." instrument family
  /// (null = the process-global registry).
  MetricsRegistry *Metrics = nullptr;
};

/// The indexed, queryable snap store.
class SnapStore {
public:
  SnapStore();
  ~SnapStore();
  SnapStore(const SnapStore &) = delete;
  SnapStore &operator=(const SnapStore &) = delete;

  /// Opens (creating if needed) the store directory and loads the index
  /// — checkpoint + journal tail when paged, full journal replay
  /// otherwise. Returns false with \p Error set on malformed index data
  /// or I/O failure.
  bool open(const std::string &Dir, const SnapStoreOptions &O,
            std::string &Error);
  bool isOpen() const { return Open; }
  const std::string &directory() const { return Dir; }
  /// True when this open used a valid TBIX v2 checkpoint (index entries
  /// are paged from disk on demand).
  bool openedPaged() const { return Ck != nullptr; }
  /// Writes a fresh checkpoint (writable, dirty stores), flushes and
  /// closes; the store can be reopened.
  void close();

  /// What one append did.
  struct AppendResult {
    uint64_t Id = 0;     ///< The entry appended to or refcounted.
    bool Deduped = false;
    size_t Evicted = 0;  ///< Entries retention evicted as a consequence.
  };

  /// Ingests one serialized snap image. Parses the header, extracts the
  /// header-level triage signature (the fingerprint index key), dedups,
  /// appends the payload to its shard, journals the index record and
  /// enforces retention. \p SrcMachineId is the transport source (0 when
  /// the snap arrived by direct delivery). Returns false on I/O failure
  /// or an unparsable image.
  bool append(const std::vector<uint8_t> &Image, uint64_t SrcMachineId,
              AppendResult &Out, std::string *Error = nullptr);

  /// Serializes \p Snap (current format) and appends it.
  bool appendSnap(const SnapFile &Snap, uint64_t SrcMachineId,
                  AppendResult &Out, std::string *Error = nullptr);

  // --- Query ---------------------------------------------------------------

  /// Streams matching entries in ascending id order without ever
  /// materializing the store: next() returns index metadata; payloads
  /// are fetched per entry via loadImage()/loadSnap().
  class Cursor {
  public:
    /// The next live matching entry, or null when exhausted (or the
    /// query's Top cap is reached). On paged stores the pointer may
    /// reference cursor-owned scratch storage: it stays valid until the
    /// following next() call.
    const SnapStoreEntry *next();

  private:
    friend class SnapStore;
    Cursor(const SnapStore &S, SnapQuery Q) : S(S), Q(std::move(Q)) {}
    const SnapStore &S;
    SnapQuery Q;
    /// Owned-id mode (parallel query): matching ids precomputed by
    /// queryIds(), streamed back through the cursor interface.
    bool UseOwned = false;
    std::vector<uint64_t> Owned;
    size_t OwnedPos = 0;
    /// Stage 1 (paged stores): checkpoint entries — either one posting
    /// list (byte offset + id count into the checkpoint) or a full
    /// directory walk. Checkpoint ids all precede tail ids, so the two
    /// stages concatenate into ascending id order.
    bool CkStage = false;
    bool CkPosting = false;
    uint64_t CkPostOff = 0, CkPostCount = 0;
    uint64_t CkPos = 0;
    /// Stage 2: the in-memory tail. Null posting = walk every entry.
    const std::vector<uint64_t> *Posting = nullptr;
    size_t Pos = 0;
    /// Decode target for checkpoint entries.
    SnapStoreEntry Scratch;
    size_t Returned = 0;
  };

  /// Indexed query: starts from the smallest applicable posting list.
  Cursor query(const SnapQuery &Q) const;
  /// Parallel indexed query: shards the residual filtering over \p Pool
  /// (null or single-index falls back to inline execution) and returns a
  /// cursor over the precomputed matches. Result order is byte-identical
  /// to query()/scan() — per-chunk results merge in index order.
  Cursor query(const SnapQuery &Q, ThreadPool *Pool) const;
  /// The parallel filter itself: matching entry ids, ascending.
  std::vector<uint64_t> queryIds(const SnapQuery &Q, ThreadPool *Pool) const;
  /// Full linear scan with identical predicate semantics — the oracle
  /// the sweeps compare query() against.
  Cursor scan(const SnapQuery &Q) const;

  /// Streams matching entries in global (Timestamp, Id) ascending order
  /// by merging the checkpoint's time table with the tail's — the
  /// per-store leg of a multi-store fan-in merge.
  class TimeCursor {
  public:
    /// Next match in (Timestamp, Id) order; pointer valid until the
    /// following next() call.
    const SnapStoreEntry *next();

  private:
    friend class SnapStore;
    TimeCursor(const SnapStore &S, SnapQuery Q) : S(S), Q(std::move(Q)) {}
    const SnapStore &S;
    SnapQuery Q;
    uint64_t CkPos = 0; ///< Checkpoint time-table index.
    size_t TailPos = 0; ///< Tail ByTime index.
    SnapStoreEntry Scratch;
    size_t Returned = 0;
  };
  TimeCursor timeQuery(const SnapQuery &Q) const;

  /// Entry by id (null when unknown; dead entries are still returned —
  /// callers filter on Dead when they care). On paged stores checkpoint
  /// entries decode into a small bounded cache: the pointer stays valid
  /// for the next ~64 entry() lookups or until the store mutates,
  /// whichever comes first.
  const SnapStoreEntry *entry(uint64_t Id) const;

  /// Point-reads one payload image from its shard.
  bool loadImage(const SnapStoreEntry &E, std::vector<uint8_t> &Out) const;
  /// loadImage + deserialize.
  bool loadSnap(const SnapStoreEntry &E, SnapFile &Out) const;

  // --- Maintenance ---------------------------------------------------------

  /// Rewrites every shard without dead entries, replaces the journal
  /// with a clean snapshot and writes a fresh checkpoint. Ids, order and
  /// live contents are preserved, so two stores with equal live state
  /// compact to identical bytes. Paged stores materialize the checkpoint
  /// into memory first (compaction is the O(n) maintenance operation).
  /// Returns false with \p Error on I/O failure.
  bool compact(std::string *Error = nullptr);

  // --- Stats ---------------------------------------------------------------

  size_t totalEntries() const;
  size_t liveEntries() const { return LiveCount; }
  uint64_t liveBytes() const { return LiveBytes; }
  uint64_t totalRefs() const;
  uint64_t dedupHits() const { return DedupHitCount; }
  uint64_t evictions() const { return EvictionCount; }
  unsigned shardCount() const { return Opt.Shards; }
  /// Bytes the checkpoint page cache holds right now (0 when unpaged) —
  /// the index's resident footprint, bounded by PageCacheBytes.
  size_t pageCacheResidentBytes() const;

private:
  struct Shard;

  /// What the query planner chose for one query.
  struct QueryPlan {
    bool Planned = false; ///< A set dimension picked a posting pair.
    bool HasCkPost = false;
    uint64_t CkPostOff = 0, CkPostCount = 0;
    const std::vector<uint64_t> *Tail = nullptr;
  };

  std::string shardPath(uint32_t Index) const;
  std::string indexPath() const;
  std::string checkpointPath() const;
  bool replayIndex(std::string &Error);
  bool journalLine(const std::string &Line);
  void indexEntry(const SnapStoreEntry &E);
  void markDead(SnapStoreEntry &E);
  /// Tombstones the dedup mapping for \p Key when it points at the dying
  /// entry — including a mapping only the checkpoint's table knows.
  void dedupTombstone(uint64_t Fp, uint64_t Ph, uint64_t DyingId);
  /// Checkpoint-entry accessors: decode + post-checkpoint adjustments
  /// (refcount deltas, eviction tombstones).
  void applyCkAdjust(SnapStoreEntry &E) const;
  bool readCkEntry(uint64_t Id, SnapStoreEntry &Out) const;
  bool readCkEntryAt(uint64_t Idx, SnapStoreEntry &Out) const;
  /// Marks live checkpoint entry \p E (already adjusted) dead.
  void ckMarkDead(const SnapStoreEntry &E);
  /// Replay handlers for tail `ref`/`evict` records naming checkpoint
  /// entries.
  bool ckApplyRef(uint64_t Id);
  bool ckApplyEvict(uint64_t Id);
  /// Folds checkpoint + tail into plain in-memory state (paged stores
  /// only) — the first step of compact().
  bool materializeFromCheckpoint(std::string *Error);
  /// Writes a fresh TBIX v2 checkpoint covering the current journal.
  bool writeCheckpoint();
  /// Evicts until the byte/age caps hold. Returns how many were evicted.
  size_t enforceRetention();
  /// True when \p E matches every predicate of \p Q.
  static bool matches(const SnapStoreEntry &E, const SnapQuery &Q);
  /// Smallest applicable posting pair for \p Q across checkpoint + tail.
  QueryPlan planQuery(const SnapQuery &Q) const;

  std::string Dir;
  SnapStoreOptions Opt;
  bool Open = false;

  // The in-memory index. In unpaged mode this is the whole store; in
  // paged mode it is only the tail — entries appended after the
  // checkpoint (their ids all exceed the checkpoint's).
  std::vector<SnapStoreEntry> Entries; ///< Ascending id.
  std::map<uint64_t, size_t> ById;     ///< Id -> slot in Entries.
  uint64_t NextId = 1;

  // Posting lists (sorted ascending entry ids per key). Dead entries
  // stay listed; cursors filter them — eviction is O(1) and compaction
  // rebuilds everything anyway.
  std::map<uint64_t, std::vector<uint64_t>> ByModule; ///< checksum + name hash
  std::map<std::string, std::vector<uint64_t>> ByKind;
  std::map<uint64_t, std::vector<uint64_t>> ByFingerprint;
  std::map<uint64_t, std::vector<uint64_t>> ByMachine; ///< id + name hash
  /// (Timestamp, Id), sorted — the age-cap walk and pure-time queries.
  std::vector<std::pair<uint64_t, uint64_t>> ByTime;

  /// (Fingerprint, PayloadHash) -> live entry id, open-addressed. Ids
  /// start at 1, so value 0 is the erase tombstone (FlatMap has no
  /// erase) — and in paged mode a tombstone also shadows the checkpoint
  /// dedup table, recording "this key's holder died after checkpoint".
  struct DedupKey {
    uint64_t Fp = 0, Ph = 0;
    bool operator==(const DedupKey &O) const {
      return Fp == O.Fp && Ph == O.Ph;
    }
  };
  struct DedupKeyHasher {
    uint64_t operator()(const DedupKey &K) const {
      return hashCombine(hashU64(K.Fp), hashU64(K.Ph));
    }
  };
  FlatMap<DedupKey, uint64_t, DedupKeyHasher> DedupByKey;

  // Paged-mode state: the validated checkpoint reader plus the deltas
  // the journal tail applied on top of it.
  std::unique_ptr<PagedIndexReader> Ck;
  std::set<uint64_t> DeadCk;                ///< Ck entries evicted post-ck.
  std::map<uint64_t, uint64_t> RefDeltaCk;  ///< Post-ck refcount bumps.
  uint64_t CkRefsLive = 0; ///< Live refs held by checkpoint entries.
  /// Bounded decode cache backing entry() for checkpoint ids.
  mutable std::map<uint64_t, std::unique_ptr<SnapStoreEntry>> CkEntryCache;
  mutable std::vector<uint64_t> CkEntryCacheOrder; ///< FIFO eviction.
  /// Anything journaled since open (close() skips the checkpoint
  /// rewrite when the existing one is still current).
  bool Dirty = false;

  std::vector<std::unique_ptr<Shard>> Shards;
  void *Journal = nullptr; ///< FILE*, append mode.

  size_t LiveCount = 0;
  uint64_t LiveBytes = 0;
  uint64_t DedupHitCount = 0;
  uint64_t EvictionCount = 0;

  struct Instruments {
    Counter *Appends = nullptr;
    Counter *DedupHits = nullptr;
    Counter *Evictions = nullptr;
    Counter *Queries = nullptr;
    Counter *PointReads = nullptr;
    Gauge *LiveEntriesG = nullptr;
    Gauge *LiveBytesG = nullptr;
  };
  Instruments SM;
};

} // namespace traceback

#endif // TRACEBACK_COLLECTOR_SNAPSTORE_H
