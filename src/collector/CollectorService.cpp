//===- collector/CollectorService.cpp - Fleet snap ingestion --------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "collector/CollectorService.h"

#include "distributed/Transport.h"
#include "distributed/Wire.h"

using namespace traceback;

CollectorService::CollectorService(SnapStore &Store, const CollectorOptions &O)
    : Store(Store), Opt(O) {
  if (Opt.Shards == 0)
    Opt.Shards = 1;
  Queues.resize(Opt.Shards);
  MetricsRegistry &R = Opt.Metrics ? *Opt.Metrics : MetricsRegistry::global();
  CM.Received = &R.counter("collector.ingest.received");
  CM.Ingested = &R.counter("collector.ingest.ingested");
  CM.Errors = &R.counter("collector.ingest.errors");
  CM.InlineDrains = &R.counter("collector.ingest.inline_drains");
  CM.QueueDepth = &R.gauge("collector.ingest.queue_depth");
}

bool CollectorService::push(std::vector<uint8_t> Image,
                            uint64_t SrcMachineId) {
  ++ReceivedCount;
  CM.Received->add();
  std::deque<Item> &Q = Queues[SrcMachineId % Opt.Shards];
  bool Ok = true;
  if (Opt.QueueCapacity != 0 && Q.size() >= Opt.QueueCapacity) {
    // Full shard: drain everything inline, preserving global order, and
    // keep going — back-pressure degrades latency, never durability.
    CM.InlineDrains->add();
    size_t Before = ErrorCount;
    drain();
    Ok = ErrorCount == Before;
  }
  Item It;
  It.Seq = NextSeq++;
  It.SrcMachineId = SrcMachineId;
  It.Image = std::move(Image);
  Q.push_back(std::move(It));
  CM.QueueDepth->set(static_cast<int64_t>(pending()));
  return Ok;
}

bool CollectorService::consume(const SnapFile &Snap,
                               const std::string &Label) {
  (void)Label;
  return push(Snap.serialize(), /*SrcMachineId=*/0);
}

bool CollectorService::consumeImage(const std::vector<uint8_t> &Image,
                                    const std::string &Label) {
  (void)Label;
  return push(Image, /*SrcMachineId=*/0);
}

void CollectorService::attachTransport(TransportEndpoint &Endpoint) {
  detachTransport();
  EP = &Endpoint;
  PrevHandler = Endpoint.Handler;
  auto Prev = PrevHandler;
  bool Chain = Opt.ChainHandler;
  Endpoint.Handler = [this, Prev, Chain](const WireFrame &F) {
    if (F.Type == FrameType::SnapPush) {
      push(F.Payload, F.SrcMachine);
      if (Chain && Prev)
        Prev(F);
      return;
    }
    if (Prev)
      Prev(F);
  };
}

void CollectorService::detachTransport() {
  if (!EP)
    return;
  EP->Handler = PrevHandler;
  PrevHandler = nullptr;
  EP = nullptr;
}

bool CollectorService::ingestOne(const Item &It) {
  SnapStore::AppendResult R;
  std::string Error;
  if (!Store.append(It.Image, It.SrcMachineId, R, &Error)) {
    ++ErrorCount;
    LastError = Error;
    CM.Errors->add();
    return false;
  }
  ++IngestedCount;
  CM.Ingested->add();
  return true;
}

size_t CollectorService::drain() {
  // Merge the shards back into global arrival order: repeatedly take the
  // queue whose head carries the lowest sequence. Shard layout becomes
  // invisible — the store sees exactly the arrival stream.
  size_t Stored = 0;
  for (;;) {
    std::deque<Item> *Best = nullptr;
    for (std::deque<Item> &Q : Queues)
      if (!Q.empty() && (!Best || Q.front().Seq < Best->front().Seq))
        Best = &Q;
    if (!Best)
      break;
    if (ingestOne(Best->front()))
      ++Stored;
    Best->pop_front();
  }
  CM.QueueDepth->set(0);
  return Stored;
}

size_t CollectorService::pending() const {
  size_t N = 0;
  for (const std::deque<Item> &Q : Queues)
    N += Q.size();
  return N;
}
