//===- collector/SnapStore.cpp - Indexed, queryable snap store ------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "collector/SnapStore.h"

#include "distributed/SnapArchive.h"
#include "triage/Signature.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>

using namespace traceback;

//===----------------------------------------------------------------------===//
// TBIX v1 journal encoding
//===----------------------------------------------------------------------===//
//
// Line-oriented, append-only, replayed at open:
//
//   TBIX v1
//   add id=7 shard=2 off=8 bytes=312 ph=<hex16> fp=<hex16> kind=...
//       machine=... mid=3 proc=... pid=9 ts=4400 reason=1 refs=1
//       mod=<name>:<hex16> ... mark=<marker> ...   (one line per add)
//   ref 7
//   evict 7
//
// Values are percent-escaped (space, '%', ':', '=', control bytes) so one
// token is always one field. A final line without its trailing newline is
// a torn tail from a crashed collector and is dropped; malformed bytes
// before that are corruption and fail open().

static const char *IndexHeader = "TBIX v1";

static std::string escapeValue(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  static const char *Hex = "0123456789abcdef";
  for (unsigned char C : V) {
    if (C <= 0x20 || C == '%' || C == ':' || C == '=' || C == 0x7F) {
      Out.push_back('%');
      Out.push_back(Hex[C >> 4]);
      Out.push_back(Hex[C & 15]);
    } else {
      Out.push_back(static_cast<char>(C));
    }
  }
  return Out;
}

static int hexNibble(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

static bool unescapeValue(const std::string &V, std::string &Out) {
  Out.clear();
  Out.reserve(V.size());
  for (size_t I = 0; I < V.size(); ++I) {
    if (V[I] != '%') {
      Out.push_back(V[I]);
      continue;
    }
    if (I + 2 >= V.size())
      return false;
    int Hi = hexNibble(V[I + 1]), Lo = hexNibble(V[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<char>((Hi << 4) | Lo));
    I += 2;
  }
  return true;
}

static bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

static bool parseHex64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  Out = 0;
  for (char C : S) {
    int N = hexNibble(C);
    if (N < 0)
      return false;
    Out = (Out << 4) | static_cast<uint64_t>(N);
  }
  return true;
}

static std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// FNV-1a 64 over raw bytes — the payload-dedup hash. Same algorithm as
/// triage's signatureHash, which hashes text.
static uint64_t payloadHash(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 1099511628211ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// SnapQuery
//===----------------------------------------------------------------------===//

SnapQuery &SnapQuery::setModule(const std::string &NameOrHex) {
  HasModule = true;
  uint64_t Key = 0;
  if (NameOrHex.size() == 16 && parseHex64(NameOrHex, Key))
    ModuleKey = Key; // A checksum key spelled as 16 hex digits.
  else
    ModuleKey = signatureHash(NameOrHex);
  return *this;
}

SnapQuery &SnapQuery::setMachine(const std::string &NameOrId) {
  HasMachine = true;
  uint64_t Id = 0;
  if (parseU64(NameOrId, Id))
    MachineKey = Id; // A raw transport machine id.
  else
    MachineKey = signatureHash(NameOrId);
  return *this;
}

//===----------------------------------------------------------------------===//
// SnapStore
//===----------------------------------------------------------------------===//

struct SnapStore::Shard {
  SnapArchiveWriter W;
};

SnapStore::SnapStore() = default;
SnapStore::~SnapStore() { close(); }

std::string SnapStore::shardPath(uint32_t Index) const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "/shard-%02u.tbar", Index);
  return Dir + Buf;
}

std::string SnapStore::indexPath() const { return Dir + "/index.tbx"; }

bool SnapStore::open(const std::string &Directory, const SnapStoreOptions &O,
                     std::string &Error) {
  close();
  Dir = Directory;
  Opt = O;
  if (Opt.Shards == 0)
    Opt.Shards = 1;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create store directory: " + Dir;
    return false;
  }

  MetricsRegistry &R = Opt.Metrics ? *Opt.Metrics : MetricsRegistry::global();
  SM.Appends = &R.counter("collector.store.appends");
  SM.DedupHits = &R.counter("collector.store.dedup_hits");
  SM.Evictions = &R.counter("collector.store.evictions");
  SM.Queries = &R.counter("collector.store.queries");
  SM.PointReads = &R.counter("collector.store.point_reads");
  SM.LiveEntriesG = &R.gauge("collector.store.live_entries");
  SM.LiveBytesG = &R.gauge("collector.store.live_bytes");

  if (!replayIndex(Error))
    return false;

  if (!Opt.ReadOnly) {
    for (unsigned I = 0; I < Opt.Shards; ++I) {
      auto S = std::make_unique<Shard>();
      if (!S->W.open(shardPath(I))) {
        Error = "cannot open shard: " + shardPath(I);
        close();
        return false;
      }
      Shards.push_back(std::move(S));
    }
    std::FILE *J = std::fopen(indexPath().c_str(), "ab");
    if (!J) {
      Error = "cannot open index journal: " + indexPath();
      close();
      return false;
    }
    Journal = J;
    // A fresh store starts with the format header line.
    if (std::ftell(J) == 0 &&
        std::fprintf(J, "%s\n", IndexHeader) < 0) {
      Error = "cannot write index header";
      close();
      return false;
    }
  }

  Open = true;
  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return true;
}

void SnapStore::close() {
  if (Journal) {
    std::fclose(static_cast<std::FILE *>(Journal));
    Journal = nullptr;
  }
  Shards.clear(); // Writer destructors close the files.
  Entries.clear();
  ById.clear();
  ByModule.clear();
  ByKind.clear();
  ByFingerprint.clear();
  ByMachine.clear();
  ByTime.clear();
  DedupByKey.clear();
  NextId = 1;
  LiveCount = 0;
  LiveBytes = 0;
  DedupHitCount = 0;
  EvictionCount = 0;
  Open = false;
}

/// Splits \p Line into space-separated tokens.
static void tokenize(const std::string &Line, std::vector<std::string> &Out) {
  Out.clear();
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ')
      ++I;
    if (I > Start)
      Out.push_back(Line.substr(Start, I - Start));
  }
}

bool SnapStore::replayIndex(std::string &Error) {
  std::FILE *F = std::fopen(indexPath().c_str(), "rb");
  if (!F)
    return true; // A store with no index yet is a valid empty store.

  // Stream lines through a fixed read buffer — the journal is replayed
  // without ever holding the whole file, matching the satellite's
  // stream-don't-read-all discipline.
  std::string Line;
  std::vector<std::string> Tok;
  char Buf[4096];
  bool SawHeader = false, SawNewline = false, Bad = false;
  size_t LineNo = 0;

  auto handleLine = [&]() -> bool {
    ++LineNo;
    if (!SawHeader) {
      if (Line != IndexHeader)
        return false;
      SawHeader = true;
      return true;
    }
    tokenize(Line, Tok);
    if (Tok.empty())
      return true;
    if (Tok[0] == "ref" || Tok[0] == "evict") {
      uint64_t Id = 0;
      if (Tok.size() != 2 || !parseU64(Tok[1], Id))
        return false;
      auto It = ById.find(Id);
      if (It == ById.end())
        return false;
      SnapStoreEntry &E = Entries[It->second];
      if (Tok[0] == "ref")
        ++E.RefCount;
      else
        markDead(E);
      return true;
    }
    if (Tok[0] != "add")
      return false;
    SnapStoreEntry E;
    E.RefCount = 1;
    for (size_t I = 1; I < Tok.size(); ++I) {
      size_t Eq = Tok[I].find('=');
      if (Eq == std::string::npos)
        return false;
      std::string Key = Tok[I].substr(0, Eq);
      std::string Raw = Tok[I].substr(Eq + 1), Val;
      if (!unescapeValue(Raw, Val))
        return false;
      uint64_t U = 0;
      if (Key == "id") {
        if (!parseU64(Val, E.Id))
          return false;
      } else if (Key == "shard") {
        if (!parseU64(Val, U))
          return false;
        E.Shard = static_cast<uint32_t>(U);
      } else if (Key == "off") {
        if (!parseU64(Val, E.Offset))
          return false;
      } else if (Key == "bytes") {
        if (!parseU64(Val, E.ImageBytes))
          return false;
      } else if (Key == "ph") {
        if (!parseHex64(Val, E.PayloadHash))
          return false;
      } else if (Key == "fp") {
        if (!parseHex64(Val, E.Fingerprint))
          return false;
      } else if (Key == "kind") {
        E.Kind = Val;
      } else if (Key == "machine") {
        E.MachineName = Val;
      } else if (Key == "mid") {
        if (!parseU64(Val, E.MachineId))
          return false;
      } else if (Key == "proc") {
        E.ProcessName = Val;
      } else if (Key == "pid") {
        if (!parseU64(Val, E.Pid))
          return false;
      } else if (Key == "ts") {
        if (!parseU64(Val, E.Timestamp))
          return false;
      } else if (Key == "reason") {
        if (!parseU64(Val, U))
          return false;
        E.Reason = static_cast<uint16_t>(U);
      } else if (Key == "refs") {
        if (!parseU64(Val, E.RefCount) || E.RefCount == 0)
          return false;
      } else if (Key == "mod") {
        // <name>:<hex16 checksum>:<0|1 instrumented>. Split the *raw*
        // token — escaping turned any ':' inside the name into %3a, so
        // raw colons are always the separators.
        size_t C2 = Raw.rfind(':');
        if (C2 == std::string::npos || C2 == 0)
          return false;
        size_t C1 = Raw.rfind(':', C2 - 1);
        std::string Name;
        if (C1 == std::string::npos ||
            !parseHex64(Raw.substr(C1 + 1, C2 - C1 - 1), U) ||
            !unescapeValue(Raw.substr(0, C1), Name))
          return false;
        const std::string Flag = Raw.substr(C2 + 1);
        if (Flag != "0" && Flag != "1")
          return false;
        E.ModuleNames.push_back(std::move(Name));
        E.ModuleKeys.push_back(U);
        E.ModuleInstrumented.push_back(Flag == "1");
      } else if (Key == "mark") {
        E.Markers.push_back(Val);
      } else {
        // Unknown key: tolerated for forward compatibility.
      }
    }
    if (E.Id == 0 || ById.count(E.Id))
      return false;
    ById[E.Id] = Entries.size();
    Entries.push_back(std::move(E));
    indexEntry(Entries.back());
    if (Entries.back().Id >= NextId)
      NextId = Entries.back().Id + 1;
    return true;
  };

  for (;;) {
    size_t Got = std::fread(Buf, 1, sizeof(Buf), F);
    if (Got == 0)
      break;
    for (size_t I = 0; I < Got && !Bad; ++I) {
      if (Buf[I] == '\n') {
        SawNewline = true;
        if (!handleLine())
          Bad = true;
        Line.clear();
      } else {
        Line.push_back(Buf[I]);
      }
    }
    if (Bad)
      break;
  }
  std::fclose(F);
  if (Bad) {
    Error = "malformed index journal at line " + std::to_string(LineNo + 1) +
            ": " + indexPath();
    return false;
  }
  // A non-empty trailing fragment is a torn final line — dropped, like a
  // torn TBAR tail. But an index whose very first line never completed is
  // just an empty store.
  (void)SawNewline;
  return true;
}

bool SnapStore::journalLine(const std::string &Line) {
  if (!Journal)
    return false;
  std::FILE *J = static_cast<std::FILE *>(Journal);
  return std::fwrite(Line.data(), 1, Line.size(), J) == Line.size() &&
         std::fputc('\n', J) != EOF && std::fflush(J) == 0;
}

void SnapStore::indexEntry(const SnapStoreEntry &E) {
  for (size_t I = 0; I < E.ModuleKeys.size(); ++I) {
    ByModule[E.ModuleKeys[I]].push_back(E.Id);
    uint64_t NameKey = signatureHash(E.ModuleNames[I]);
    if (NameKey != E.ModuleKeys[I])
      ByModule[NameKey].push_back(E.Id);
  }
  ByKind[E.Kind].push_back(E.Id);
  ByFingerprint[E.Fingerprint].push_back(E.Id);
  ByMachine[E.MachineId].push_back(E.Id);
  uint64_t MachKey = signatureHash(E.MachineName);
  if (MachKey != E.MachineId)
    ByMachine[MachKey].push_back(E.Id);
  auto At = std::upper_bound(ByTime.begin(), ByTime.end(),
                             std::make_pair(E.Timestamp, E.Id));
  ByTime.insert(At, {E.Timestamp, E.Id});
  if (!E.Dead) {
    DedupByKey[{E.Fingerprint, E.PayloadHash}] = E.Id;
    ++LiveCount;
    LiveBytes += E.ImageBytes;
  }
}

void SnapStore::markDead(SnapStoreEntry &E) {
  if (E.Dead)
    return;
  E.Dead = true;
  --LiveCount;
  LiveBytes -= E.ImageBytes;
  auto It = DedupByKey.find({E.Fingerprint, E.PayloadHash});
  if (It != DedupByKey.end() && It->second == E.Id)
    DedupByKey.erase(It);
}

size_t SnapStore::enforceRetention() {
  if (Opt.MaxBytes == 0 && Opt.MaxAge == 0)
    return 0;
  uint64_t NewestTs = 0;
  if (Opt.MaxAge != 0) {
    // Newest live timestamp anchors the age horizon; ByTime's back may be
    // dead, so walk from the newest end to the first live entry.
    for (auto It = ByTime.rbegin(); It != ByTime.rend(); ++It) {
      auto Slot = ById.find(It->second);
      if (Slot != ById.end() && !Entries[Slot->second].Dead) {
        NewestTs = It->first;
        break;
      }
    }
  }
  size_t Evicted = 0;
  // Deterministic victim order: oldest timestamp first, lowest id on
  // ties — exactly ByTime's sort order, front to back.
  for (const auto &TsId : ByTime) {
    bool OverBytes = Opt.MaxBytes != 0 && LiveBytes > Opt.MaxBytes;
    bool OverAge = Opt.MaxAge != 0 && NewestTs > Opt.MaxAge &&
                   TsId.first < NewestTs - Opt.MaxAge;
    if (!OverBytes && !OverAge)
      break;
    auto Slot = ById.find(TsId.second);
    if (Slot == ById.end() || Entries[Slot->second].Dead)
      continue;
    SnapStoreEntry &E = Entries[Slot->second];
    markDead(E);
    journalLine("evict " + std::to_string(E.Id));
    ++Evicted;
  }
  if (Evicted) {
    EvictionCount += Evicted;
    SM.Evictions->add(Evicted);
  }
  return Evicted;
}

static std::string addRecord(const SnapStoreEntry &E) {
  std::string L = "add id=" + std::to_string(E.Id) +
                  " shard=" + std::to_string(E.Shard) +
                  " off=" + std::to_string(E.Offset) +
                  " bytes=" + std::to_string(E.ImageBytes) + " ph=" +
                  hex16(E.PayloadHash) + " fp=" + hex16(E.Fingerprint) +
                  " kind=" + escapeValue(E.Kind) +
                  " machine=" + escapeValue(E.MachineName) +
                  " mid=" + std::to_string(E.MachineId) +
                  " proc=" + escapeValue(E.ProcessName) +
                  " pid=" + std::to_string(E.Pid) +
                  " ts=" + std::to_string(E.Timestamp) +
                  " reason=" + std::to_string(E.Reason) +
                  " refs=" + std::to_string(E.RefCount);
  for (size_t I = 0; I < E.ModuleNames.size(); ++I)
    L += " mod=" + escapeValue(E.ModuleNames[I]) + ":" +
         hex16(E.ModuleKeys[I]) +
         (E.ModuleInstrumented[I] ? ":1" : ":0");
  for (const std::string &M : E.Markers)
    L += " mark=" + escapeValue(M);
  return L;
}

bool SnapStore::append(const std::vector<uint8_t> &Image,
                       uint64_t SrcMachineId, AppendResult &Out,
                       std::string *Error) {
  Out = AppendResult();
  if (!Open || Opt.ReadOnly) {
    if (Error)
      *Error = "store is not open for writing";
    return false;
  }

  SnapFile Header;
  if (!SnapFile::deserializeHeader(Image, Header)) {
    if (Error)
      *Error = "unparsable snap image";
    return false;
  }
  FaultSignature Sig = extractSignature(Header);

  uint64_t PH = payloadHash(Image);
  uint64_t FP = Sig.fingerprint();

  SM.Appends->add();

  // Dedup: same fingerprint + same payload bytes → refcount the entry we
  // already stored.
  auto Hit = DedupByKey.find({FP, PH});
  if (Hit != DedupByKey.end()) {
    SnapStoreEntry &E = Entries[ById[Hit->second]];
    ++E.RefCount;
    ++DedupHitCount;
    SM.DedupHits->add();
    if (!journalLine("ref " + std::to_string(E.Id))) {
      if (Error)
        *Error = "index journal write failed";
      return false;
    }
    Out.Id = E.Id;
    Out.Deduped = true;
    return true;
  }

  SnapStoreEntry E;
  E.Id = NextId++;
  E.Shard = static_cast<uint32_t>(PH % Opt.Shards);
  E.ImageBytes = Image.size();
  E.PayloadHash = PH;
  E.Fingerprint = FP;
  E.Kind = Sig.Kind;
  E.MachineName = Header.MachineName;
  E.MachineId = SrcMachineId;
  E.ProcessName = Header.ProcessName;
  E.Pid = Header.Pid;
  E.Timestamp = Header.Timestamp;
  E.Reason = static_cast<uint16_t>(Header.Reason);
  for (const SnapModuleInfo &M : Header.Modules) {
    E.ModuleNames.push_back(M.Name);
    E.ModuleKeys.push_back(M.Checksum.low64());
    E.ModuleInstrumented.push_back(M.Instrumented);
  }
  E.Markers = Sig.Markers;

  Shard &S = *Shards[E.Shard];
  E.Offset = S.W.tell();
  if (!S.W.append(Image) || !S.W.flush()) {
    if (Error)
      *Error = "shard append failed: " + shardPath(E.Shard);
    return false;
  }
  if (!journalLine(addRecord(E))) {
    if (Error)
      *Error = "index journal write failed";
    return false;
  }

  ById[E.Id] = Entries.size();
  Entries.push_back(std::move(E));
  indexEntry(Entries.back());
  Out.Id = Entries.back().Id;

  Out.Evicted = enforceRetention();
  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return true;
}

bool SnapStore::appendSnap(const SnapFile &Snap, uint64_t SrcMachineId,
                           AppendResult &Out, std::string *Error) {
  return append(Snap.serialize(), SrcMachineId, Out, Error);
}

//===----------------------------------------------------------------------===//
// Query
//===----------------------------------------------------------------------===//

bool SnapStore::matches(const SnapStoreEntry &E, const SnapQuery &Q) {
  if (E.Dead)
    return false;
  if (Q.HasModule) {
    bool Any = false;
    for (size_t I = 0; I < E.ModuleKeys.size() && !Any; ++I)
      Any = E.ModuleKeys[I] == Q.ModuleKey ||
            signatureHash(E.ModuleNames[I]) == Q.ModuleKey;
    if (!Any)
      return false;
  }
  if (!Q.Kind.empty() && E.Kind != Q.Kind)
    return false;
  if (Q.HasFingerprint && E.Fingerprint != Q.Fingerprint)
    return false;
  if (Q.HasMachine && E.MachineId != Q.MachineKey &&
      signatureHash(E.MachineName) != Q.MachineKey)
    return false;
  if (E.Timestamp < Q.Since || E.Timestamp > Q.Until)
    return false;
  return true;
}

const std::vector<uint64_t> *SnapStore::planPosting(const SnapQuery &Q) const {
  // A set predicate whose key was never indexed proves the result empty.
  static const std::vector<uint64_t> Empty;
  const std::vector<uint64_t> *Best = nullptr;
  auto consider = [&](const std::vector<uint64_t> *P) {
    if (!Best || P->size() < Best->size())
      Best = P;
  };
  if (Q.HasFingerprint) {
    auto It = ByFingerprint.find(Q.Fingerprint);
    consider(It == ByFingerprint.end() ? &Empty : &It->second);
  }
  if (Q.HasModule) {
    auto It = ByModule.find(Q.ModuleKey);
    consider(It == ByModule.end() ? &Empty : &It->second);
  }
  if (Q.HasMachine) {
    auto It = ByMachine.find(Q.MachineKey);
    consider(It == ByMachine.end() ? &Empty : &It->second);
  }
  if (!Q.Kind.empty()) {
    auto It = ByKind.find(Q.Kind);
    consider(It == ByKind.end() ? &Empty : &It->second);
  }
  return Best;
}

SnapStore::Cursor SnapStore::query(const SnapQuery &Q) const {
  SM.Queries->add();
  return Cursor(*this, Q, planPosting(Q));
}

SnapStore::Cursor SnapStore::scan(const SnapQuery &Q) const {
  SM.Queries->add();
  return Cursor(*this, Q, nullptr);
}

const SnapStoreEntry *SnapStore::Cursor::next() {
  if (Q.Top != 0 && Returned >= Q.Top)
    return nullptr;
  if (Posting) {
    while (Pos < Posting->size()) {
      const SnapStoreEntry *E = S.entry((*Posting)[Pos++]);
      if (E && SnapStore::matches(*E, Q)) {
        ++Returned;
        return E;
      }
    }
    return nullptr;
  }
  while (Pos < S.Entries.size()) {
    const SnapStoreEntry *E = &S.Entries[Pos++];
    if (SnapStore::matches(*E, Q)) {
      ++Returned;
      return E;
    }
  }
  return nullptr;
}

const SnapStoreEntry *SnapStore::entry(uint64_t Id) const {
  auto It = ById.find(Id);
  return It == ById.end() ? nullptr : &Entries[It->second];
}

bool SnapStore::loadImage(const SnapStoreEntry &E,
                          std::vector<uint8_t> &Out) const {
  SM.PointReads->add();
  return SnapArchive::readImageAt(shardPath(E.Shard), E.Offset, E.ImageBytes,
                                  Out);
}

bool SnapStore::loadSnap(const SnapStoreEntry &E, SnapFile &Out) const {
  std::vector<uint8_t> Image;
  return loadImage(E, Image) && SnapFile::deserialize(Image, Out);
}

//===----------------------------------------------------------------------===//
// Compaction
//===----------------------------------------------------------------------===//

bool SnapStore::compact(std::string *Error) {
  if (!Open || Opt.ReadOnly) {
    if (Error)
      *Error = "store is not open for writing";
    return false;
  }

  // Quiesce the writers so the rewrite reads fully-flushed shards.
  for (auto &S : Shards)
    S->W.close();

  // Rewrite each shard with only the live entries, in id order (Entries
  // is ascending by id), into a temp file swapped in atomically. Live
  // state in = identical bytes out, whatever dead entries sat between.
  bool Ok = true;
  std::vector<std::pair<uint64_t, uint64_t>> NewPlacement; // id -> offset
  for (unsigned SI = 0; SI < Opt.Shards && Ok; ++SI) {
    std::string Old = shardPath(SI), Tmp = Old + ".tmp";
    std::remove(Tmp.c_str());
    SnapArchiveWriter W;
    Ok = W.open(Tmp);
    for (const SnapStoreEntry &E : Entries) {
      if (!Ok)
        break;
      if (E.Dead || E.Shard != SI)
        continue;
      std::vector<uint8_t> Image;
      Ok = SnapArchive::readImageAt(Old, E.Offset, E.ImageBytes, Image);
      if (Ok) {
        NewPlacement.push_back({E.Id, W.tell()});
        Ok = W.append(Image);
      }
    }
    Ok = W.close() && Ok;
    if (Ok)
      Ok = std::rename(Tmp.c_str(), Old.c_str()) == 0;
  }
  if (!Ok) {
    if (Error)
      *Error = "shard rewrite failed";
    // Reopen writers on the (possibly partially rewritten but always
    // internally consistent) shards so the store stays usable.
  }

  if (Ok) {
    for (const auto &IdOff : NewPlacement) {
      auto Slot = ById.find(IdOff.first);
      if (Slot != ById.end())
        Entries[Slot->second].Offset = IdOff.second;
    }

    // Drop dead entries from memory and rebuild the derived indexes.
    std::vector<SnapStoreEntry> Live;
    Live.reserve(LiveCount);
    for (SnapStoreEntry &E : Entries)
      if (!E.Dead)
        Live.push_back(std::move(E));
    Entries = std::move(Live);
    ById.clear();
    ByModule.clear();
    ByKind.clear();
    ByFingerprint.clear();
    ByMachine.clear();
    ByTime.clear();
    DedupByKey.clear();
    LiveCount = 0;
    LiveBytes = 0;
    for (size_t I = 0; I < Entries.size(); ++I) {
      ById[Entries[I].Id] = I;
      indexEntry(Entries[I]);
    }

    // Replace the journal with a clean snapshot of the live state.
    if (Journal) {
      std::fclose(static_cast<std::FILE *>(Journal));
      Journal = nullptr;
    }
    std::string Tmp = indexPath() + ".tmp";
    std::FILE *J = std::fopen(Tmp.c_str(), "wb");
    Ok = J != nullptr;
    if (Ok) {
      Ok = std::fprintf(J, "%s\n", IndexHeader) >= 0;
      for (const SnapStoreEntry &E : Entries) {
        if (!Ok)
          break;
        std::string L = addRecord(E);
        Ok = std::fwrite(L.data(), 1, L.size(), J) == L.size() &&
             std::fputc('\n', J) != EOF;
      }
      Ok = std::fclose(J) == 0 && Ok;
    }
    if (Ok)
      Ok = std::rename(Tmp.c_str(), indexPath().c_str()) == 0;
    if (!Ok && Error)
      *Error = "index snapshot rewrite failed";
  }

  // Reattach the appenders (journal in append mode picks up the snapshot).
  for (unsigned SI = 0; SI < Opt.Shards; ++SI)
    if (!Shards[SI]->W.open(shardPath(SI)))
      Ok = false;
  if (!Journal)
    Journal = std::fopen(indexPath().c_str(), "ab");
  if (!Journal)
    Ok = false;

  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return Ok;
}

uint64_t SnapStore::totalRefs() const {
  uint64_t Sum = 0;
  for (const SnapStoreEntry &E : Entries)
    if (!E.Dead)
      Sum += E.RefCount;
  return Sum;
}
