//===- collector/SnapStore.cpp - Indexed, queryable snap store ------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "collector/SnapStore.h"

#include "collector/PagedIndex.h"
#include "distributed/SnapArchive.h"
#include "support/ThreadPool.h"
#include "triage/Signature.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>

using namespace traceback;

//===----------------------------------------------------------------------===//
// TBIX v1 journal encoding
//===----------------------------------------------------------------------===//
//
// Line-oriented, append-only, replayed at open:
//
//   TBIX v1
//   add id=7 shard=2 off=8 bytes=312 ph=<hex16> fp=<hex16> kind=...
//       machine=... mid=3 proc=... pid=9 ts=4400 reason=1 refs=1
//       mod=<name>:<hex16> ... mark=<marker> ...   (one line per add)
//   ref 7
//   evict 7
//
// Values are percent-escaped (space, '%', ':', '=', control bytes) so one
// token is always one field. A final line without its trailing newline is
// a torn tail from a crashed collector and is dropped; malformed bytes
// before that are corruption and fail open().
//
// The journal is the complete history of the store — the TBIX v2
// checkpoint (collector/PagedIndex.h) never truncates it, it only records
// how many journal bytes it folds in. A paged open seeks past that prefix
// and replays just the tail; any doubt about the checkpoint falls back to
// replaying the whole journal from byte zero.

static const char *IndexHeader = "TBIX v1";

static std::string escapeValue(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  static const char *Hex = "0123456789abcdef";
  for (unsigned char C : V) {
    if (C <= 0x20 || C == '%' || C == ':' || C == '=' || C == 0x7F) {
      Out.push_back('%');
      Out.push_back(Hex[C >> 4]);
      Out.push_back(Hex[C & 15]);
    } else {
      Out.push_back(static_cast<char>(C));
    }
  }
  return Out;
}

static int hexNibble(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

static bool unescapeValue(const std::string &V, std::string &Out) {
  Out.clear();
  Out.reserve(V.size());
  for (size_t I = 0; I < V.size(); ++I) {
    if (V[I] != '%') {
      Out.push_back(V[I]);
      continue;
    }
    if (I + 2 >= V.size())
      return false;
    int Hi = hexNibble(V[I + 1]), Lo = hexNibble(V[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<char>((Hi << 4) | Lo));
    I += 2;
  }
  return true;
}

static bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

static bool parseHex64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  Out = 0;
  for (char C : S) {
    int N = hexNibble(C);
    if (N < 0)
      return false;
    Out = (Out << 4) | static_cast<uint64_t>(N);
  }
  return true;
}

static std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// FNV-1a 64 over raw bytes — the payload-dedup hash. Same algorithm as
/// triage's signatureHash, which hashes text.
static uint64_t payloadHash(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 1099511628211ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// SnapQuery
//===----------------------------------------------------------------------===//

SnapQuery &SnapQuery::setModule(const std::string &NameOrHex) {
  HasModule = true;
  uint64_t Key = 0;
  if (NameOrHex.size() == 16 && parseHex64(NameOrHex, Key))
    ModuleKey = Key; // A checksum key spelled as 16 hex digits.
  else
    ModuleKey = signatureHash(NameOrHex);
  return *this;
}

SnapQuery &SnapQuery::setMachine(const std::string &NameOrId) {
  HasMachine = true;
  uint64_t Id = 0;
  if (parseU64(NameOrId, Id))
    MachineKey = Id; // A raw transport machine id.
  else
    MachineKey = signatureHash(NameOrId);
  return *this;
}

//===----------------------------------------------------------------------===//
// SnapStore
//===----------------------------------------------------------------------===//

struct SnapStore::Shard {
  SnapArchiveWriter W;
};

SnapStore::SnapStore() = default;
SnapStore::~SnapStore() { close(); }

std::string SnapStore::shardPath(uint32_t Index) const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "/shard-%02u.tbar", Index);
  return Dir + Buf;
}

std::string SnapStore::indexPath() const { return Dir + "/index.tbx"; }

std::string SnapStore::checkpointPath() const { return Dir + "/index.tbx2"; }

bool SnapStore::open(const std::string &Directory, const SnapStoreOptions &O,
                     std::string &Error) {
  close();
  Dir = Directory;
  Opt = O;
  if (Opt.Shards == 0)
    Opt.Shards = 1;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create store directory: " + Dir;
    return false;
  }

  MetricsRegistry &R = Opt.Metrics ? *Opt.Metrics : MetricsRegistry::global();
  SM.Appends = &R.counter("collector.store.appends");
  SM.DedupHits = &R.counter("collector.store.dedup_hits");
  SM.Evictions = &R.counter("collector.store.evictions");
  SM.Queries = &R.counter("collector.store.queries");
  SM.PointReads = &R.counter("collector.store.point_reads");
  SM.LiveEntriesG = &R.gauge("collector.store.live_entries");
  SM.LiveBytesG = &R.gauge("collector.store.live_bytes");

  // Try the TBIX v2 checkpoint first. Any validation failure returns
  // null and we fall back to replaying the whole journal — the journal
  // is the complete history, so the fallback is always correct.
  if (Opt.Paged) {
    PageCacheInstruments PCI;
    PCI.Hits = &R.counter("collector.store.page.hits");
    PCI.Misses = &R.counter("collector.store.page.misses");
    PCI.Evictions = &R.counter("collector.store.page.evictions");
    PCI.Resident = &R.gauge("store.bytes_resident");
    std::string Why;
    Ck = PagedIndexReader::open(checkpointPath(), indexPath(),
                                Opt.PageCacheBytes, PCI, Why);
    if (Ck) {
      NextId = Ck->nextId();
      LiveCount = static_cast<size_t>(Ck->liveCount());
      LiveBytes = Ck->liveBytes();
      CkRefsLive = Ck->liveRefs();
    }
  }

  if (!replayIndex(Error))
    return false;

  // An open that could not use a checkpoint is dirty by definition: a
  // close() should leave one behind for the next open. A paged open is
  // clean until something is journaled.
  Dirty = Ck == nullptr;

  if (!Opt.ReadOnly) {
    for (unsigned I = 0; I < Opt.Shards; ++I) {
      auto S = std::make_unique<Shard>();
      if (!S->W.open(shardPath(I))) {
        Error = "cannot open shard: " + shardPath(I);
        close();
        return false;
      }
      Shards.push_back(std::move(S));
    }
    std::FILE *J = std::fopen(indexPath().c_str(), "ab");
    if (!J) {
      Error = "cannot open index journal: " + indexPath();
      close();
      return false;
    }
    Journal = J;
    // A fresh store starts with the format header line.
    if (std::ftell(J) == 0 &&
        std::fprintf(J, "%s\n", IndexHeader) < 0) {
      Error = "cannot write index header";
      close();
      return false;
    }
  }

  Open = true;
  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return true;
}

void SnapStore::close() {
  if (Open && !Opt.ReadOnly && Dirty) {
    if (Journal)
      std::fflush(static_cast<std::FILE *>(Journal));
    writeCheckpoint();
  }
  if (Journal) {
    std::fclose(static_cast<std::FILE *>(Journal));
    Journal = nullptr;
  }
  Shards.clear(); // Writer destructors close the files.
  Entries.clear();
  ById.clear();
  ByModule.clear();
  ByKind.clear();
  ByFingerprint.clear();
  ByMachine.clear();
  ByTime.clear();
  DedupByKey.clear();
  Ck.reset();
  DeadCk.clear();
  RefDeltaCk.clear();
  CkRefsLive = 0;
  CkEntryCache.clear();
  CkEntryCacheOrder.clear();
  Dirty = false;
  NextId = 1;
  LiveCount = 0;
  LiveBytes = 0;
  DedupHitCount = 0;
  EvictionCount = 0;
  Open = false;
}

/// Splits \p Line into space-separated tokens.
static void tokenize(const std::string &Line, std::vector<std::string> &Out) {
  Out.clear();
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ')
      ++I;
    if (I > Start)
      Out.push_back(Line.substr(Start, I - Start));
  }
}

bool SnapStore::replayIndex(std::string &Error) {
  std::FILE *F = std::fopen(indexPath().c_str(), "rb");
  if (!F)
    return true; // A store with no index yet is a valid empty store.

  // Stream lines through a fixed read buffer — the journal is replayed
  // without ever holding the whole file, matching the satellite's
  // stream-don't-read-all discipline.
  std::string Line;
  std::vector<std::string> Tok;
  char Buf[4096];
  bool SawHeader = false, SawNewline = false, Bad = false;
  size_t LineNo = 0;

  // A paged open replays only the tail appended after the checkpoint.
  // The covered prefix ends at a line boundary (the checkpoint hashed a
  // fully flushed journal), so seeking lands at the start of a record.
  if (Ck) {
    if (std::fseek(F, static_cast<long>(Ck->journalBytes()), SEEK_SET) != 0) {
      std::fclose(F);
      Error = "cannot seek to index journal tail: " + indexPath();
      return false;
    }
    SawHeader = true;
  }

  auto handleLine = [&]() -> bool {
    ++LineNo;
    if (!SawHeader) {
      if (Line != IndexHeader)
        return false;
      SawHeader = true;
      return true;
    }
    tokenize(Line, Tok);
    if (Tok.empty())
      return true;
    if (Tok[0] == "ref" || Tok[0] == "evict") {
      uint64_t Id = 0;
      if (Tok.size() != 2 || !parseU64(Tok[1], Id))
        return false;
      auto It = ById.find(Id);
      if (It == ById.end()) {
        // Not a tail entry — a checkpoint entry the tail mutated.
        if (Ck)
          return Tok[0] == "ref" ? ckApplyRef(Id) : ckApplyEvict(Id);
        return false;
      }
      SnapStoreEntry &E = Entries[It->second];
      if (Tok[0] == "ref")
        ++E.RefCount;
      else
        markDead(E);
      return true;
    }
    if (Tok[0] != "add")
      return false;
    SnapStoreEntry E;
    E.RefCount = 1;
    for (size_t I = 1; I < Tok.size(); ++I) {
      size_t Eq = Tok[I].find('=');
      if (Eq == std::string::npos)
        return false;
      std::string Key = Tok[I].substr(0, Eq);
      std::string Raw = Tok[I].substr(Eq + 1), Val;
      if (!unescapeValue(Raw, Val))
        return false;
      uint64_t U = 0;
      if (Key == "id") {
        if (!parseU64(Val, E.Id))
          return false;
      } else if (Key == "shard") {
        if (!parseU64(Val, U))
          return false;
        E.Shard = static_cast<uint32_t>(U);
      } else if (Key == "off") {
        if (!parseU64(Val, E.Offset))
          return false;
      } else if (Key == "bytes") {
        if (!parseU64(Val, E.ImageBytes))
          return false;
      } else if (Key == "ph") {
        if (!parseHex64(Val, E.PayloadHash))
          return false;
      } else if (Key == "fp") {
        if (!parseHex64(Val, E.Fingerprint))
          return false;
      } else if (Key == "kind") {
        E.Kind = Val;
      } else if (Key == "machine") {
        E.MachineName = Val;
      } else if (Key == "mid") {
        if (!parseU64(Val, E.MachineId))
          return false;
      } else if (Key == "proc") {
        E.ProcessName = Val;
      } else if (Key == "pid") {
        if (!parseU64(Val, E.Pid))
          return false;
      } else if (Key == "ts") {
        if (!parseU64(Val, E.Timestamp))
          return false;
      } else if (Key == "reason") {
        if (!parseU64(Val, U))
          return false;
        E.Reason = static_cast<uint16_t>(U);
      } else if (Key == "refs") {
        if (!parseU64(Val, E.RefCount) || E.RefCount == 0)
          return false;
      } else if (Key == "mod") {
        // <name>:<hex16 checksum>:<0|1 instrumented>. Split the *raw*
        // token — escaping turned any ':' inside the name into %3a, so
        // raw colons are always the separators.
        size_t C2 = Raw.rfind(':');
        if (C2 == std::string::npos || C2 == 0)
          return false;
        size_t C1 = Raw.rfind(':', C2 - 1);
        std::string Name;
        if (C1 == std::string::npos ||
            !parseHex64(Raw.substr(C1 + 1, C2 - C1 - 1), U) ||
            !unescapeValue(Raw.substr(0, C1), Name))
          return false;
        const std::string Flag = Raw.substr(C2 + 1);
        if (Flag != "0" && Flag != "1")
          return false;
        E.ModuleNames.push_back(std::move(Name));
        E.ModuleKeys.push_back(U);
        E.ModuleInstrumented.push_back(Flag == "1");
      } else if (Key == "mark") {
        E.Markers.push_back(Val);
      } else {
        // Unknown key: tolerated for forward compatibility.
      }
    }
    if (E.Id == 0 || ById.count(E.Id))
      return false;
    if (Ck && (E.Id < Ck->nextId() || Ck->hasEntry(E.Id)))
      return false; // Tail ids must all exceed checkpoint ids.
    ById[E.Id] = Entries.size();
    Entries.push_back(std::move(E));
    indexEntry(Entries.back());
    if (Entries.back().Id >= NextId)
      NextId = Entries.back().Id + 1;
    return true;
  };

  for (;;) {
    size_t Got = std::fread(Buf, 1, sizeof(Buf), F);
    if (Got == 0)
      break;
    for (size_t I = 0; I < Got && !Bad; ++I) {
      if (Buf[I] == '\n') {
        SawNewline = true;
        if (!handleLine())
          Bad = true;
        Line.clear();
      } else {
        Line.push_back(Buf[I]);
      }
    }
    if (Bad)
      break;
  }
  std::fclose(F);
  if (Bad) {
    Error = "malformed index journal at line " + std::to_string(LineNo + 1) +
            ": " + indexPath();
    return false;
  }
  // A non-empty trailing fragment is a torn final line — dropped, like a
  // torn TBAR tail. But an index whose very first line never completed is
  // just an empty store.
  (void)SawNewline;
  return true;
}

bool SnapStore::journalLine(const std::string &Line) {
  if (!Journal)
    return false;
  std::FILE *J = static_cast<std::FILE *>(Journal);
  if (std::fwrite(Line.data(), 1, Line.size(), J) != Line.size() ||
      std::fputc('\n', J) == EOF || std::fflush(J) != 0)
    return false;
  Dirty = true;
  return true;
}

void SnapStore::indexEntry(const SnapStoreEntry &E) {
  for (size_t I = 0; I < E.ModuleKeys.size(); ++I) {
    ByModule[E.ModuleKeys[I]].push_back(E.Id);
    uint64_t NameKey = signatureHash(E.ModuleNames[I]);
    if (NameKey != E.ModuleKeys[I])
      ByModule[NameKey].push_back(E.Id);
  }
  ByKind[E.Kind].push_back(E.Id);
  ByFingerprint[E.Fingerprint].push_back(E.Id);
  ByMachine[E.MachineId].push_back(E.Id);
  uint64_t MachKey = signatureHash(E.MachineName);
  if (MachKey != E.MachineId)
    ByMachine[MachKey].push_back(E.Id);
  auto At = std::upper_bound(ByTime.begin(), ByTime.end(),
                             std::make_pair(E.Timestamp, E.Id));
  ByTime.insert(At, {E.Timestamp, E.Id});
  if (!E.Dead) {
    DedupByKey.insertOrAssign(DedupKey{E.Fingerprint, E.PayloadHash}, E.Id);
    ++LiveCount;
    LiveBytes += E.ImageBytes;
  }
}

void SnapStore::markDead(SnapStoreEntry &E) {
  if (E.Dead)
    return;
  E.Dead = true;
  --LiveCount;
  LiveBytes -= E.ImageBytes;
  dedupTombstone(E.Fingerprint, E.PayloadHash, E.Id);
}

void SnapStore::dedupTombstone(uint64_t Fp, uint64_t Ph, uint64_t DyingId) {
  DedupKey K{Fp, Ph};
  if (uint64_t *V = DedupByKey.find(K)) {
    if (*V == DyingId)
      *V = 0; // Tombstone: FlatMap has no erase; 0 is never a valid id.
    return;
  }
  // No tail mapping: the dying entry may still be reachable through the
  // checkpoint's dedup table. A tombstone in the tail map shadows it.
  if (Ck) {
    uint64_t CkId = 0;
    if (Ck->findDedup(Fp, Ph, CkId) && CkId == DyingId)
      DedupByKey.insertOrAssign(K, 0);
  }
}

void SnapStore::applyCkAdjust(SnapStoreEntry &E) const {
  auto It = RefDeltaCk.find(E.Id);
  if (It != RefDeltaCk.end())
    E.RefCount += It->second;
  if (DeadCk.count(E.Id))
    E.Dead = true;
}

bool SnapStore::readCkEntry(uint64_t Id, SnapStoreEntry &Out) const {
  if (!Ck || !Ck->entryById(Id, Out))
    return false;
  applyCkAdjust(Out);
  return true;
}

bool SnapStore::readCkEntryAt(uint64_t Idx, SnapStoreEntry &Out) const {
  if (!Ck || !Ck->entryByIndex(Idx, Out))
    return false;
  applyCkAdjust(Out);
  return true;
}

void SnapStore::ckMarkDead(const SnapStoreEntry &E) {
  if (E.Dead || DeadCk.count(E.Id))
    return;
  DeadCk.insert(E.Id);
  --LiveCount;
  LiveBytes -= E.ImageBytes;
  CkRefsLive -= E.RefCount; // E is adjusted: deltas already folded in.
  dedupTombstone(E.Fingerprint, E.PayloadHash, E.Id);
  CkEntryCache.erase(E.Id);
}

bool SnapStore::ckApplyRef(uint64_t Id) {
  SnapStoreEntry E;
  if (!readCkEntry(Id, E))
    return false;
  ++RefDeltaCk[Id];
  if (!E.Dead)
    ++CkRefsLive;
  CkEntryCache.erase(Id);
  return true;
}

bool SnapStore::ckApplyEvict(uint64_t Id) {
  SnapStoreEntry E;
  if (!readCkEntry(Id, E))
    return false;
  if (!E.Dead)
    ckMarkDead(E);
  return true;
}

size_t SnapStore::enforceRetention() {
  if (Opt.MaxBytes == 0 && Opt.MaxAge == 0)
    return 0;
  // The checkpoint's time table and the tail's ByTime are each sorted by
  // (timestamp, id); a two-pointer merge walks the union in exactly the
  // order the unpaged store would, so victims come out identical.
  uint64_t CkN = Ck ? Ck->timeCount() : 0;
  auto ckTime = [&](uint64_t I) {
    uint64_t Ts = 0, Id = 0;
    Ck->timeAt(I, Ts, Id);
    return std::make_pair(Ts, Id);
  };
  SnapStoreEntry Tmp;
  uint64_t NewestTs = 0;
  if (Opt.MaxAge != 0) {
    // Newest live timestamp anchors the age horizon; the newest end may
    // be dead, so walk backwards to the first live entry.
    size_t TI = ByTime.size();
    uint64_t CI = CkN;
    while (TI > 0 || CI > 0) {
      bool TakeTail = TI > 0 && (CI == 0 || ByTime[TI - 1] >= ckTime(CI - 1));
      if (TakeTail) {
        --TI;
        auto Slot = ById.find(ByTime[TI].second);
        if (Slot != ById.end() && !Entries[Slot->second].Dead) {
          NewestTs = ByTime[TI].first;
          break;
        }
      } else {
        --CI;
        auto P = ckTime(CI);
        if (readCkEntry(P.second, Tmp) && !Tmp.Dead) {
          NewestTs = P.first;
          break;
        }
      }
    }
  }
  size_t Evicted = 0;
  // Deterministic victim order: oldest timestamp first, lowest id on
  // ties — the merged (timestamp, id) order, front to back.
  size_t TI = 0;
  uint64_t CI = 0;
  while (TI < ByTime.size() || CI < CkN) {
    bool TakeTail = TI < ByTime.size() && (CI >= CkN || ByTime[TI] < ckTime(CI));
    std::pair<uint64_t, uint64_t> TsId = TakeTail ? ByTime[TI] : ckTime(CI);
    bool OverBytes = Opt.MaxBytes != 0 && LiveBytes > Opt.MaxBytes;
    bool OverAge = Opt.MaxAge != 0 && NewestTs > Opt.MaxAge &&
                   TsId.first < NewestTs - Opt.MaxAge;
    if (!OverBytes && !OverAge)
      break;
    if (TakeTail) {
      ++TI;
      auto Slot = ById.find(TsId.second);
      if (Slot == ById.end() || Entries[Slot->second].Dead)
        continue;
      SnapStoreEntry &E = Entries[Slot->second];
      markDead(E);
      journalLine("evict " + std::to_string(E.Id));
      ++Evicted;
    } else {
      ++CI;
      if (DeadCk.count(TsId.second) || !readCkEntry(TsId.second, Tmp) ||
          Tmp.Dead)
        continue;
      ckMarkDead(Tmp);
      journalLine("evict " + std::to_string(Tmp.Id));
      ++Evicted;
    }
  }
  if (Evicted) {
    EvictionCount += Evicted;
    SM.Evictions->add(Evicted);
  }
  return Evicted;
}

static std::string addRecord(const SnapStoreEntry &E) {
  std::string L = "add id=" + std::to_string(E.Id) +
                  " shard=" + std::to_string(E.Shard) +
                  " off=" + std::to_string(E.Offset) +
                  " bytes=" + std::to_string(E.ImageBytes) + " ph=" +
                  hex16(E.PayloadHash) + " fp=" + hex16(E.Fingerprint) +
                  " kind=" + escapeValue(E.Kind) +
                  " machine=" + escapeValue(E.MachineName) +
                  " mid=" + std::to_string(E.MachineId) +
                  " proc=" + escapeValue(E.ProcessName) +
                  " pid=" + std::to_string(E.Pid) +
                  " ts=" + std::to_string(E.Timestamp) +
                  " reason=" + std::to_string(E.Reason) +
                  " refs=" + std::to_string(E.RefCount);
  for (size_t I = 0; I < E.ModuleNames.size(); ++I)
    L += " mod=" + escapeValue(E.ModuleNames[I]) + ":" +
         hex16(E.ModuleKeys[I]) +
         (E.ModuleInstrumented[I] ? ":1" : ":0");
  for (const std::string &M : E.Markers)
    L += " mark=" + escapeValue(M);
  return L;
}

bool SnapStore::append(const std::vector<uint8_t> &Image,
                       uint64_t SrcMachineId, AppendResult &Out,
                       std::string *Error) {
  Out = AppendResult();
  if (!Open || Opt.ReadOnly) {
    if (Error)
      *Error = "store is not open for writing";
    return false;
  }

  SnapFile Header;
  if (!SnapFile::deserializeHeader(Image, Header)) {
    if (Error)
      *Error = "unparsable snap image";
    return false;
  }
  FaultSignature Sig = extractSignature(Header);

  uint64_t PH = payloadHash(Image);
  uint64_t FP = Sig.fingerprint();

  SM.Appends->add();

  // Dedup: same fingerprint + same payload bytes → refcount the entry we
  // already stored. The tail map answers first (a 0 tombstone means the
  // key's holder died — including a holder only the checkpoint's table
  // knows about); otherwise the checkpoint's dedup table is probed.
  DedupKey K{FP, PH};
  uint64_t HitId = 0;
  if (const uint64_t *V = DedupByKey.find(K)) {
    HitId = *V;
  } else if (Ck) {
    uint64_t CkId = 0;
    if (Ck->findDedup(FP, PH, CkId) && !DeadCk.count(CkId))
      HitId = CkId;
  }
  if (HitId != 0) {
    auto Slot = ById.find(HitId);
    if (Slot != ById.end()) {
      ++Entries[Slot->second].RefCount;
    } else {
      // A checkpoint entry: record the bump as a delta on top of it.
      ++RefDeltaCk[HitId];
      ++CkRefsLive;
      CkEntryCache.erase(HitId);
    }
    ++DedupHitCount;
    SM.DedupHits->add();
    if (!journalLine("ref " + std::to_string(HitId))) {
      if (Error)
        *Error = "index journal write failed";
      return false;
    }
    Out.Id = HitId;
    Out.Deduped = true;
    return true;
  }

  SnapStoreEntry E;
  E.Id = NextId++;
  E.Shard = static_cast<uint32_t>(PH % Opt.Shards);
  E.ImageBytes = Image.size();
  E.PayloadHash = PH;
  E.Fingerprint = FP;
  E.Kind = Sig.Kind;
  E.MachineName = Header.MachineName;
  E.MachineId = SrcMachineId;
  E.ProcessName = Header.ProcessName;
  E.Pid = Header.Pid;
  E.Timestamp = Header.Timestamp;
  E.Reason = static_cast<uint16_t>(Header.Reason);
  for (const SnapModuleInfo &M : Header.Modules) {
    E.ModuleNames.push_back(M.Name);
    E.ModuleKeys.push_back(M.Checksum.low64());
    E.ModuleInstrumented.push_back(M.Instrumented);
  }
  E.Markers = Sig.Markers;

  Shard &S = *Shards[E.Shard];
  E.Offset = S.W.tell();
  if (!S.W.append(Image) || !S.W.flush()) {
    if (Error)
      *Error = "shard append failed: " + shardPath(E.Shard);
    return false;
  }
  if (!journalLine(addRecord(E))) {
    if (Error)
      *Error = "index journal write failed";
    return false;
  }

  ById[E.Id] = Entries.size();
  Entries.push_back(std::move(E));
  indexEntry(Entries.back());
  Out.Id = Entries.back().Id;

  Out.Evicted = enforceRetention();
  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return true;
}

bool SnapStore::appendSnap(const SnapFile &Snap, uint64_t SrcMachineId,
                           AppendResult &Out, std::string *Error) {
  return append(Snap.serialize(), SrcMachineId, Out, Error);
}

//===----------------------------------------------------------------------===//
// Query
//===----------------------------------------------------------------------===//

bool SnapStore::matches(const SnapStoreEntry &E, const SnapQuery &Q) {
  if (E.Dead)
    return false;
  if (Q.HasModule) {
    bool Any = false;
    for (size_t I = 0; I < E.ModuleKeys.size() && !Any; ++I)
      Any = E.ModuleKeys[I] == Q.ModuleKey ||
            signatureHash(E.ModuleNames[I]) == Q.ModuleKey;
    if (!Any)
      return false;
  }
  if (!Q.Kind.empty() && E.Kind != Q.Kind)
    return false;
  if (Q.HasFingerprint && E.Fingerprint != Q.Fingerprint)
    return false;
  if (Q.HasMachine && E.MachineId != Q.MachineKey &&
      signatureHash(E.MachineName) != Q.MachineKey)
    return false;
  if (E.Timestamp < Q.Since || E.Timestamp > Q.Until)
    return false;
  return true;
}

SnapStore::QueryPlan SnapStore::planQuery(const SnapQuery &Q) const {
  // A set predicate whose key was never indexed proves the result empty
  // for that half (checkpoint or tail). Candidate count = checkpoint
  // posting + tail posting; the smallest total wins, first dimension on
  // ties — the same deterministic choice order as the tail-only planner.
  static const std::vector<uint64_t> Empty;
  QueryPlan Best;
  uint64_t BestTotal = 0;
  auto offer = [&](bool HasCk, uint64_t CkOff, uint64_t CkCount,
                   const std::vector<uint64_t> *Tail) {
    uint64_t Total = CkCount + Tail->size();
    if (!Best.Planned || Total < BestTotal) {
      Best.Planned = true;
      Best.HasCkPost = HasCk;
      Best.CkPostOff = CkOff;
      Best.CkPostCount = CkCount;
      Best.Tail = Tail;
      BestTotal = Total;
    }
  };
  auto dim = [&](TbixDim D, uint64_t Key, const std::vector<uint64_t> *Tail) {
    bool HasCk = false;
    uint64_t Off = 0, Count = 0;
    if (Ck) {
      PagedIndexReader::PostingRef PR;
      if (Ck->findPosting(D, Key, PR)) {
        HasCk = true;
        Off = PR.Off;
        Count = PR.Count;
      }
    }
    offer(HasCk, Off, Count, Tail);
  };
  if (Q.HasFingerprint) {
    auto It = ByFingerprint.find(Q.Fingerprint);
    dim(TbixDim::Fingerprint, Q.Fingerprint,
        It == ByFingerprint.end() ? &Empty : &It->second);
  }
  if (Q.HasModule) {
    auto It = ByModule.find(Q.ModuleKey);
    dim(TbixDim::Module, Q.ModuleKey,
        It == ByModule.end() ? &Empty : &It->second);
  }
  if (Q.HasMachine) {
    auto It = ByMachine.find(Q.MachineKey);
    dim(TbixDim::Machine, Q.MachineKey,
        It == ByMachine.end() ? &Empty : &It->second);
  }
  if (!Q.Kind.empty()) {
    auto It = ByKind.find(Q.Kind);
    dim(TbixDim::Kind, signatureHash(Q.Kind),
        It == ByKind.end() ? &Empty : &It->second);
  }
  return Best;
}

SnapStore::Cursor SnapStore::query(const SnapQuery &Q) const {
  SM.Queries->add();
  Cursor C(*this, Q);
  QueryPlan P = planQuery(Q);
  if (P.Planned) {
    C.CkStage = P.HasCkPost;
    C.CkPosting = true;
    C.CkPostOff = P.CkPostOff;
    C.CkPostCount = P.CkPostCount;
    C.Posting = P.Tail;
  } else {
    C.CkStage = Ck != nullptr;
    C.Posting = nullptr;
  }
  return C;
}

SnapStore::Cursor SnapStore::scan(const SnapQuery &Q) const {
  SM.Queries->add();
  Cursor C(*this, Q);
  C.CkStage = Ck != nullptr;
  C.Posting = nullptr;
  return C;
}

std::vector<uint64_t> SnapStore::queryIds(const SnapQuery &Q,
                                          ThreadPool *Pool) const {
  SM.Queries->add();
  QueryPlan P = planQuery(Q);

  // Candidate ids, ascending: checkpoint ids all precede tail ids.
  std::vector<uint64_t> Cand;
  if (P.Planned) {
    Cand.reserve(P.CkPostCount + P.Tail->size());
    if (P.HasCkPost) {
      PagedIndexReader::PostingRef PR{P.CkPostOff, P.CkPostCount};
      for (uint64_t I = 0; I < P.CkPostCount; ++I)
        Cand.push_back(Ck->postingIdAt(PR, I));
    }
    Cand.insert(Cand.end(), P.Tail->begin(), P.Tail->end());
  } else {
    uint64_t CkN = Ck ? Ck->entryCount() : 0;
    Cand.reserve(CkN + Entries.size());
    for (uint64_t I = 0; I < CkN; ++I)
      Cand.push_back(Ck->entryIdAt(I));
    for (const SnapStoreEntry &E : Entries)
      Cand.push_back(E.Id);
  }

  // Shard the residual filter; per-chunk results concatenate in chunk
  // order, so the output is the candidate order regardless of how the
  // pool schedules the chunks.
  const size_t ChunkSize = 2048;
  size_t NChunks = (Cand.size() + ChunkSize - 1) / ChunkSize;
  std::vector<std::vector<uint64_t>> Parts(NChunks);
  parallelForIndex(Pool, NChunks, [&](size_t CI) {
    SnapStoreEntry Scratch;
    size_t Begin = CI * ChunkSize;
    size_t End = std::min(Begin + ChunkSize, Cand.size());
    std::vector<uint64_t> &Hits = Parts[CI];
    for (size_t I = Begin; I < End; ++I) {
      uint64_t Id = Cand[I];
      const SnapStoreEntry *E = nullptr;
      auto It = ById.find(Id);
      if (It != ById.end())
        E = &Entries[It->second];
      else if (readCkEntry(Id, Scratch))
        E = &Scratch;
      if (E && matches(*E, Q))
        Hits.push_back(Id);
    }
  });

  std::vector<uint64_t> Ids;
  for (const std::vector<uint64_t> &Part : Parts)
    Ids.insert(Ids.end(), Part.begin(), Part.end());
  if (Q.Top != 0 && Ids.size() > Q.Top)
    Ids.resize(Q.Top);
  return Ids;
}

SnapStore::Cursor SnapStore::query(const SnapQuery &Q, ThreadPool *Pool) const {
  Cursor C(*this, Q);
  C.UseOwned = true;
  C.Owned = queryIds(Q, Pool);
  return C;
}

const SnapStoreEntry *SnapStore::Cursor::next() {
  if (Q.Top != 0 && Returned >= Q.Top)
    return nullptr;
  if (UseOwned) {
    // Ids were pre-filtered by queryIds(); just resolve each to storage.
    while (OwnedPos < Owned.size()) {
      uint64_t Id = Owned[OwnedPos++];
      const SnapStoreEntry *E = nullptr;
      auto It = S.ById.find(Id);
      if (It != S.ById.end())
        E = &S.Entries[It->second];
      else if (S.readCkEntry(Id, Scratch))
        E = &Scratch;
      if (E) {
        ++Returned;
        return E;
      }
    }
    return nullptr;
  }
  while (CkStage) {
    bool Have = false;
    if (CkPosting) {
      if (CkPos >= CkPostCount) {
        CkStage = false;
        break;
      }
      PagedIndexReader::PostingRef PR{CkPostOff, CkPostCount};
      Have = S.readCkEntry(S.Ck->postingIdAt(PR, CkPos++), Scratch);
    } else {
      if (CkPos >= S.Ck->entryCount()) {
        CkStage = false;
        break;
      }
      Have = S.readCkEntryAt(CkPos++, Scratch);
    }
    if (Have && SnapStore::matches(Scratch, Q)) {
      ++Returned;
      return &Scratch;
    }
  }
  if (Posting) {
    while (Pos < Posting->size()) {
      const SnapStoreEntry *E = S.entry((*Posting)[Pos++]);
      if (E && SnapStore::matches(*E, Q)) {
        ++Returned;
        return E;
      }
    }
    return nullptr;
  }
  while (Pos < S.Entries.size()) {
    const SnapStoreEntry *E = &S.Entries[Pos++];
    if (SnapStore::matches(*E, Q)) {
      ++Returned;
      return E;
    }
  }
  return nullptr;
}

SnapStore::TimeCursor SnapStore::timeQuery(const SnapQuery &Q) const {
  SM.Queries->add();
  return TimeCursor(*this, Q);
}

const SnapStoreEntry *SnapStore::TimeCursor::next() {
  if (Q.Top != 0 && Returned >= Q.Top)
    return nullptr;
  uint64_t CkN = S.Ck ? S.Ck->timeCount() : 0;
  while (CkPos < CkN || TailPos < S.ByTime.size()) {
    // Two-pointer merge of the checkpoint time table and the tail's
    // ByTime — both sorted by (timestamp, id), ids disjoint.
    bool TakeCk = false;
    uint64_t CTs = 0, CId = 0;
    if (CkPos < CkN) {
      S.Ck->timeAt(CkPos, CTs, CId);
      TakeCk = TailPos >= S.ByTime.size() ||
               std::make_pair(CTs, CId) < S.ByTime[TailPos];
    }
    const SnapStoreEntry *E = nullptr;
    if (TakeCk) {
      ++CkPos;
      if (S.readCkEntry(CId, Scratch))
        E = &Scratch;
    } else {
      uint64_t Id = S.ByTime[TailPos++].second;
      auto It = S.ById.find(Id);
      if (It != S.ById.end())
        E = &S.Entries[It->second];
    }
    if (E && SnapStore::matches(*E, Q)) {
      ++Returned;
      return E;
    }
  }
  return nullptr;
}

const SnapStoreEntry *SnapStore::entry(uint64_t Id) const {
  auto It = ById.find(Id);
  if (It != ById.end())
    return &Entries[It->second];
  if (!Ck)
    return nullptr;
  auto CIt = CkEntryCache.find(Id);
  if (CIt != CkEntryCache.end())
    return CIt->second.get();
  auto E = std::make_unique<SnapStoreEntry>();
  if (!readCkEntry(Id, *E))
    return nullptr;
  // Bounded FIFO: entry() pointers stay valid for ~64 further lookups.
  if (CkEntryCacheOrder.size() >= 64) {
    CkEntryCache.erase(CkEntryCacheOrder.front());
    CkEntryCacheOrder.erase(CkEntryCacheOrder.begin());
  }
  const SnapStoreEntry *Ret = E.get();
  CkEntryCacheOrder.push_back(Id);
  CkEntryCache[Id] = std::move(E);
  return Ret;
}

bool SnapStore::loadImage(const SnapStoreEntry &E,
                          std::vector<uint8_t> &Out) const {
  SM.PointReads->add();
  return SnapArchive::readImageAt(shardPath(E.Shard), E.Offset, E.ImageBytes,
                                  Out);
}

bool SnapStore::loadSnap(const SnapStoreEntry &E, SnapFile &Out) const {
  std::vector<uint8_t> Image;
  return loadImage(E, Image) && SnapFile::deserialize(Image, Out);
}

//===----------------------------------------------------------------------===//
// Compaction and checkpointing
//===----------------------------------------------------------------------===//

bool SnapStore::materializeFromCheckpoint(std::string *Error) {
  if (!Ck)
    return true;
  std::vector<SnapStoreEntry> All;
  All.reserve(static_cast<size_t>(Ck->entryCount()) + Entries.size());
  for (uint64_t I = 0, N = Ck->entryCount(); I < N; ++I) {
    SnapStoreEntry E;
    if (!readCkEntryAt(I, E)) {
      if (Error)
        *Error = "checkpoint entry read failed";
      return false;
    }
    All.push_back(std::move(E));
  }
  for (SnapStoreEntry &E : Entries)
    All.push_back(std::move(E));
  Entries = std::move(All);
  Ck.reset();
  DeadCk.clear();
  RefDeltaCk.clear();
  CkRefsLive = 0;
  CkEntryCache.clear();
  CkEntryCacheOrder.clear();
  ById.clear();
  ByModule.clear();
  ByKind.clear();
  ByFingerprint.clear();
  ByMachine.clear();
  ByTime.clear();
  DedupByKey.clear();
  LiveCount = 0;
  LiveBytes = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    ById[Entries[I].Id] = I;
    indexEntry(Entries[I]);
  }
  return true;
}

bool SnapStore::writeCheckpoint() {
  if (Opt.ReadOnly)
    return false;
  PagedIndexHeaderInfo H;
  H.NextId = NextId;
  H.LiveCount = LiveCount;
  H.LiveBytes = LiveBytes;
  H.LiveRefs = totalRefs();

  // Journal coverage: the checkpoint names the journal prefix it folds
  // in — its length plus FNV windows over the first and last 4 KiB. A
  // journal that later shrinks or diverges (compact crash, truncation)
  // fails these checks at open and the checkpoint is ignored.
  {
    std::FILE *J = std::fopen(indexPath().c_str(), "rb");
    if (!J)
      return false;
    bool JOk = std::fseek(J, 0, SEEK_END) == 0;
    long Sz = JOk ? std::ftell(J) : -1;
    JOk = JOk && Sz >= 0;
    if (JOk) {
      H.JournalBytes = static_cast<uint64_t>(Sz);
      size_t WLen =
          static_cast<size_t>(std::min<uint64_t>(H.JournalBytes, TbixPageSize));
      if (WLen) {
        std::vector<uint8_t> WBuf(WLen);
        JOk = std::fseek(J, 0, SEEK_SET) == 0 &&
              std::fread(WBuf.data(), 1, WLen, J) == WLen;
        if (JOk)
          H.JournalHeadHash = fnv1a64(WBuf.data(), WLen);
        if (JOk) {
          JOk = std::fseek(J, static_cast<long>(H.JournalBytes - WLen),
                           SEEK_SET) == 0 &&
                std::fread(WBuf.data(), 1, WLen, J) == WLen;
          if (JOk)
            H.JournalTailHash = fnv1a64(WBuf.data(), WLen);
        }
      }
    }
    std::fclose(J);
    if (!JOk)
      return false;
  }

  // Stream entries in ascending id order: checkpoint entries (with the
  // tail's refcount/eviction deltas folded in) first, then the tail.
  uint64_t CkN = Ck ? Ck->entryCount() : 0;
  uint64_t CkI = 0;
  size_t TailI = 0;
  bool ReadFail = false;
  auto NextE = [&](SnapStoreEntry &Out) -> bool {
    if (CkI < CkN) {
      if (!readCkEntryAt(CkI++, Out)) {
        ReadFail = true;
        return false;
      }
      return true;
    }
    if (TailI < Entries.size()) {
      Out = Entries[TailI++];
      return true;
    }
    return false;
  };
  std::string CkErr;
  bool Ok = writePagedIndex(checkpointPath(), H, NextE, CkErr) && !ReadFail;
  if (!Ok)
    std::remove(checkpointPath().c_str());
  return Ok;
}

bool SnapStore::compact(std::string *Error) {
  if (!Open || Opt.ReadOnly) {
    if (Error)
      *Error = "store is not open for writing";
    return false;
  }

  // Compaction is the O(n) maintenance pass: fold the checkpoint into
  // memory first so the rewrite below sees plain in-memory state.
  if (Ck && !materializeFromCheckpoint(Error))
    return false;
  // The journal is about to be replaced; any existing checkpoint goes
  // stale either way.
  Dirty = true;

  // Quiesce the writers so the rewrite reads fully-flushed shards.
  for (auto &S : Shards)
    S->W.close();

  // Rewrite each shard with only the live entries, in id order (Entries
  // is ascending by id), into a temp file swapped in atomically. Live
  // state in = identical bytes out, whatever dead entries sat between.
  bool Ok = true;
  std::vector<std::pair<uint64_t, uint64_t>> NewPlacement; // id -> offset
  for (unsigned SI = 0; SI < Opt.Shards && Ok; ++SI) {
    std::string Old = shardPath(SI), Tmp = Old + ".tmp";
    std::remove(Tmp.c_str());
    SnapArchiveWriter W;
    Ok = W.open(Tmp);
    for (const SnapStoreEntry &E : Entries) {
      if (!Ok)
        break;
      if (E.Dead || E.Shard != SI)
        continue;
      std::vector<uint8_t> Image;
      Ok = SnapArchive::readImageAt(Old, E.Offset, E.ImageBytes, Image);
      if (Ok) {
        NewPlacement.push_back({E.Id, W.tell()});
        Ok = W.append(Image);
      }
    }
    Ok = W.close() && Ok;
    if (Ok)
      Ok = std::rename(Tmp.c_str(), Old.c_str()) == 0;
  }
  if (!Ok) {
    if (Error)
      *Error = "shard rewrite failed";
    // Reopen writers on the (possibly partially rewritten but always
    // internally consistent) shards so the store stays usable.
  }

  if (Ok) {
    for (const auto &IdOff : NewPlacement) {
      auto Slot = ById.find(IdOff.first);
      if (Slot != ById.end())
        Entries[Slot->second].Offset = IdOff.second;
    }

    // Drop dead entries from memory and rebuild the derived indexes.
    std::vector<SnapStoreEntry> Live;
    Live.reserve(LiveCount);
    for (SnapStoreEntry &E : Entries)
      if (!E.Dead)
        Live.push_back(std::move(E));
    Entries = std::move(Live);
    ById.clear();
    ByModule.clear();
    ByKind.clear();
    ByFingerprint.clear();
    ByMachine.clear();
    ByTime.clear();
    DedupByKey.clear();
    LiveCount = 0;
    LiveBytes = 0;
    for (size_t I = 0; I < Entries.size(); ++I) {
      ById[Entries[I].Id] = I;
      indexEntry(Entries[I]);
    }

    // Replace the journal with a clean snapshot of the live state.
    if (Journal) {
      std::fclose(static_cast<std::FILE *>(Journal));
      Journal = nullptr;
    }
    std::string Tmp = indexPath() + ".tmp";
    std::FILE *J = std::fopen(Tmp.c_str(), "wb");
    Ok = J != nullptr;
    if (Ok) {
      Ok = std::fprintf(J, "%s\n", IndexHeader) >= 0;
      for (const SnapStoreEntry &E : Entries) {
        if (!Ok)
          break;
        std::string L = addRecord(E);
        Ok = std::fwrite(L.data(), 1, L.size(), J) == L.size() &&
             std::fputc('\n', J) != EOF;
      }
      Ok = std::fclose(J) == 0 && Ok;
    }
    if (Ok)
      Ok = std::rename(Tmp.c_str(), indexPath().c_str()) == 0;
    if (!Ok && Error)
      *Error = "index snapshot rewrite failed";
  }

  // Reattach the appenders (journal in append mode picks up the snapshot).
  for (unsigned SI = 0; SI < Opt.Shards; ++SI)
    if (!Shards[SI]->W.open(shardPath(SI)))
      Ok = false;
  if (!Journal)
    Journal = std::fopen(indexPath().c_str(), "ab");
  if (!Journal)
    Ok = false;

  // A fresh checkpoint over the compacted journal; failure just leaves
  // the store dirty so close() retries (the checkpoint is an
  // accelerator — a paged open without one falls back to replay).
  if (Ok && writeCheckpoint())
    Dirty = false;

  SM.LiveEntriesG->set(static_cast<int64_t>(LiveCount));
  SM.LiveBytesG->set(static_cast<int64_t>(LiveBytes));
  return Ok;
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

size_t SnapStore::totalEntries() const {
  return (Ck ? static_cast<size_t>(Ck->entryCount()) : 0) + Entries.size();
}

uint64_t SnapStore::totalRefs() const {
  uint64_t Sum = CkRefsLive;
  for (const SnapStoreEntry &E : Entries)
    if (!E.Dead)
      Sum += E.RefCount;
  return Sum;
}

size_t SnapStore::pageCacheResidentBytes() const {
  return Ck ? Ck->residentBytes() : 0;
}
