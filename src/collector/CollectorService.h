//===- collector/CollectorService.h - Fleet snap ingestion ------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-facing half of the collector: a sharded ingestion front
/// that drains TransportEndpoint snap pushes (and any SnapSource) into a
/// SnapStore. Modeled on the service daemon's async ingest: arriving
/// images land in bounded per-shard queues (sharded by source machine so
/// one chatty machine cannot starve the rest), each stamped with a
/// global arrival sequence; drain() merges the shards back into arrival
/// order, so the store's contents are a deterministic function of the
/// arrival stream no matter how the shards interleaved. A full shard
/// queue drains inline — ingest back-pressure must never drop a fault
/// snap, the same rule the daemon's spill path enforces.
///
/// attachTransport() hooks a TransportEndpoint's delivery handler:
/// SnapPush frames are enqueued with their source machine id, every
/// other frame type falls through to the previous handler (which also
/// keeps running for SnapPush when chaining is on, so a Deployment's
/// snaps() view stays intact while the collector indexes).
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_COLLECTOR_COLLECTORSERVICE_H
#define TRACEBACK_COLLECTOR_COLLECTORSERVICE_H

#include "collector/SnapStore.h"
#include "support/Metrics.h"
#include "support/SnapSource.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace traceback {

class TransportEndpoint;

/// Ingestion-front tuning.
struct CollectorOptions {
  /// Ingest queue shards; a source machine hashes to shard (id % Shards).
  unsigned Shards = 4;
  /// Per-shard queue bound. An enqueue into a full shard drains the
  /// whole service inline first (deterministic, never drops).
  size_t QueueCapacity = 256;
  /// Keep the endpoint's previous handler running for SnapPush frames
  /// (a Deployment's snaps() view) in addition to collector ingest.
  bool ChainHandler = true;
  /// Destination of the "collector.ingest." instrument family
  /// (null = the process-global registry).
  MetricsRegistry *Metrics = nullptr;
};

/// Drains snap pushes into a SnapStore. Also a SnapConsumer, so any
/// SnapSource (directory, archive, queue) can feed the same store
/// through the same ordering machinery.
class CollectorService : public SnapConsumer {
public:
  /// \p Store must outlive the service and be open for writing.
  CollectorService(SnapStore &Store, const CollectorOptions &O = {});

  /// Enqueues one serialized snap image from \p SrcMachineId (0 = a
  /// local/direct source). Returns false only when the inline-drain
  /// fallback hit a store error (recorded in lastError()).
  bool push(std::vector<uint8_t> Image, uint64_t SrcMachineId);

  /// SnapConsumer: serialize-and-push for object-form feeds…
  bool consume(const SnapFile &Snap, const std::string &Label) override;
  /// …and verbatim bytes for image-form feeds (the common path).
  bool consumeImage(const std::vector<uint8_t> &Image,
                    const std::string &Label) override;

  /// Hooks \p EP's delivery handler (see file comment). The previous
  /// handler is preserved and restored by detachTransport().
  void attachTransport(TransportEndpoint &EP);
  void detachTransport();

  /// Drains every queued image into the store in global arrival order.
  /// Returns how many snaps were stored (dedup hits included).
  size_t drain();

  size_t pending() const;

  // --- Stats ---------------------------------------------------------------

  uint64_t received() const { return ReceivedCount; }
  uint64_t ingested() const { return IngestedCount; }
  uint64_t errors() const { return ErrorCount; }
  const std::string &lastError() const { return LastError; }
  SnapStore &store() { return Store; }

private:
  struct Item {
    uint64_t Seq = 0; ///< Global arrival order across all shards.
    uint64_t SrcMachineId = 0;
    std::vector<uint8_t> Image;
  };

  bool ingestOne(const Item &It);

  SnapStore &Store;
  CollectorOptions Opt;
  std::vector<std::deque<Item>> Queues;
  uint64_t NextSeq = 1;

  TransportEndpoint *EP = nullptr;
  std::function<void(const struct WireFrame &)> PrevHandler;

  uint64_t ReceivedCount = 0;
  uint64_t IngestedCount = 0;
  uint64_t ErrorCount = 0;
  std::string LastError;

  struct Instruments {
    Counter *Received = nullptr;
    Counter *Ingested = nullptr;
    Counter *Errors = nullptr;
    Counter *InlineDrains = nullptr;
    Gauge *QueueDepth = nullptr;
  };
  Instruments CM;
};

} // namespace traceback

#endif // TRACEBACK_COLLECTOR_COLLECTORSERVICE_H
