//===- reconstruct/SynthWorkload.cpp - Synthetic snap generator -----------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/SynthWorkload.h"

#include "runtime/TraceRecord.h"
#include "support/MD5.h"
#include "support/Random.h"
#include "support/Text.h"

#include <array>

using namespace traceback;

namespace {

/// Bit assignment of one branch level of a generated DAG: both arms and
/// the join carry a path bit.
struct LevelBits {
  int ArmA;
  int ArmB;
  int Join;
};

/// Shape metadata kept alongside each generated DAG so the record
/// generator can mint path bits that are consistent with it.
struct DagShape {
  std::vector<LevelBits> Levels;
};

/// Builds one DAG: a header block followed by \p Levels diamond levels
/// (two bit-carrying arms joining into a bit-carrying join block).
MapDag makeDag(Rng &R, uint32_t RelId, uint16_t FileCount,
               DagShape &Shape) {
  MapDag D;
  D.RelId = RelId;
  unsigned Levels = 2 + static_cast<unsigned>(R.below(2)); // 2..3 => <=9 bits
  uint32_t Off = 0;
  uint32_t Line = 1 + RelId * 64;
  std::string Fn = formatv("f%u", RelId);

  auto makeBlock = [&](int8_t Bit, unsigned NumLines) {
    MapBlock B;
    B.StartOffset = Off;
    B.BitIndex = Bit;
    B.Function = Fn;
    for (unsigned I = 0; I < NumLines; ++I)
      B.Lines.push_back(
          {static_cast<uint16_t>(R.below(FileCount)), Line++, Off + I * 4});
    Off += NumLines * 4 + 4;
    B.EndOffset = Off;
    return B;
  };

  MapBlock Header = makeBlock(-1, 1 + static_cast<unsigned>(R.below(2)));
  Header.Flags = MBF_FuncEntry;
  D.Blocks.push_back(std::move(Header));

  // Chain of implied (no-bit) blocks after \p From; returns the last
  // block of the chain. Real binaries are mostly such blocks: straight-
  // line code between branches carries no path bit, and many blocks
  // (compiler-generated, statement continuations) start no new source
  // line either.
  auto appendImpliedChain = [&](uint16_t From) {
    unsigned Len = 4 + static_cast<unsigned>(R.below(6));
    uint16_t Prev = From;
    for (unsigned I = 0; I < Len; ++I) {
      uint16_t Cur = static_cast<uint16_t>(D.Blocks.size());
      D.Blocks.push_back(makeBlock(-1, I == 0 && R.chance(1, 4) ? 1 : 0));
      D.Blocks[Prev].Succs = {Cur};
      Prev = Cur;
    }
    return Prev;
  };

  int8_t Bit = 0;
  uint16_t Prev = 0;
  for (unsigned L = 0; L < Levels; ++L) {
    LevelBits LB{Bit, static_cast<int8_t>(Bit + 1),
                 static_cast<int8_t>(Bit + 2)};
    uint16_t ArmA = static_cast<uint16_t>(D.Blocks.size());
    D.Blocks.push_back(makeBlock(static_cast<int8_t>(LB.ArmA),
                                 1 + static_cast<unsigned>(R.below(2))));
    uint16_t ArmB = static_cast<uint16_t>(D.Blocks.size());
    D.Blocks.push_back(makeBlock(static_cast<int8_t>(LB.ArmB), 1));
    uint16_t Join = static_cast<uint16_t>(D.Blocks.size());
    D.Blocks.push_back(makeBlock(static_cast<int8_t>(LB.Join), 1));
    D.Blocks[Prev].Succs = {ArmA, ArmB};
    D.Blocks[ArmA].Succs = {Join};
    D.Blocks[ArmB].Succs = {Join};
    Prev = appendImpliedChain(Join);
    Bit = static_cast<int8_t>(Bit + 3);
    Shape.Levels.push_back(LB);
  }
  if (R.chance(1, 2))
    D.Blocks[Prev].Flags |= MBF_EndsInRet;
  return D;
}

/// Path bits of a random valid (possibly partial — the snap can catch a
/// record before its lightweight probes all fired) walk through \p S.
uint32_t pickPathBits(Rng &R, const DagShape &S) {
  uint32_t Bits = 0;
  size_t Levels = S.Levels.size();
  bool Full = R.chance(7, 8);
  size_t Depth = Full ? Levels : R.below(Levels + 1);
  for (size_t L = 0; L < Depth; ++L) {
    const LevelBits &LB = S.Levels[L];
    Bits |= 1u << (R.chance(1, 2) ? LB.ArmA : LB.ArmB);
    Bits |= 1u << LB.Join;
  }
  if (!Full && Depth < Levels && R.chance(1, 2)) {
    const LevelBits &LB = S.Levels[Depth];
    Bits |= 1u << (R.chance(1, 2) ? LB.ArmA : LB.ArmB); // Arm, no join yet.
  }
  return Bits;
}

void appendWords(std::vector<uint32_t> &Out,
                 const std::vector<uint32_t> &In) {
  Out.insert(Out.end(), In.begin(), In.end());
}

} // namespace

SynthWorkload traceback::makeSynthWorkload(uint64_t Seed,
                                           const SynthWorkloadOptions &O) {
  Rng R(Seed ^ 0x7261636542616b63ULL);
  SynthWorkload W;

  // ----- Modules + mapfiles ----------------------------------------------
  struct ModuleShape {
    uint32_t DagIdBase;
    std::vector<DagShape> Dags;
  };
  std::vector<ModuleShape> Shapes(O.Modules);
  uint32_t NextBase = 1; // DAG id 0 is reserved as invalid.
  for (unsigned M = 0; M < O.Modules; ++M) {
    MapFile Map;
    Map.ModuleName = formatv("synthmod%u", M);
    std::string Ident = formatv("synthmod%u#%llu", M,
                                static_cast<unsigned long long>(Seed));
    Map.Checksum = MD5::hash(Ident.data(), Ident.size());
    Map.DagIdBase = NextBase;
    Map.DagIdCount = O.DagsPerModule;
    Map.Files = {formatv("synth%u_a.c", M), formatv("synth%u_b.c", M)};
    Shapes[M].DagIdBase = NextBase;
    Shapes[M].Dags.resize(O.DagsPerModule);
    for (unsigned D = 0; D < O.DagsPerModule; ++D)
      Map.Dags.push_back(makeDag(R, D, 2, Shapes[M].Dags[D]));
    NextBase += O.DagsPerModule;
    W.Maps.push_back(std::move(Map));

    SnapModuleInfo MI;
    MI.Name = W.Maps.back().ModuleName;
    MI.Checksum = W.Maps.back().Checksum;
    MI.DagIdBase = W.Maps.back().DagIdBase;
    MI.DagIdCount = W.Maps.back().DagIdCount;
    MI.Instrumented = true;
    W.Snap.Modules.push_back(MI);
  }

  // ----- The hot set: a few (DAG, path) pairs dominate --------------------
  struct HotPair {
    uint32_t DagId;
    uint32_t Bits;
  };
  std::vector<HotPair> Hot;
  for (unsigned I = 0; I < O.HotPairs; ++I) {
    unsigned M = static_cast<unsigned>(R.below(O.Modules));
    unsigned D = static_cast<unsigned>(R.below(O.DagsPerModule));
    Hot.push_back({Shapes[M].DagIdBase + D,
                   pickPathBits(R, Shapes[M].Dags[D])});
  }

  // ----- Per-thread record buffers ---------------------------------------
  W.Snap.ProcessName = "synthproc";
  W.Snap.MachineName = "synthhost";
  W.Snap.OsName = "simos";
  W.Snap.RuntimeId = Seed | 1;
  for (unsigned T = 0; T < O.Threads; ++T) {
    uint64_t Tid = T + 1;
    std::vector<uint32_t> Data;
    uint64_t Ts = 1000 * (T + 1);
    appendWords(Data, encodeExtRecord({ExtType::ThreadStart, 0, {Tid, Ts}}));
    for (unsigned I = 0; I < O.RecordsPerThread; ++I) {
      if (I % 64 == 63) {
        Ts += 1 + R.below(50);
        appendWords(Data, encodeExtRecord({ExtType::Timestamp, 0, {Ts}}));
      }
      if (R.chance(1, 256))
        appendWords(Data,
                    encodeExtRecord({ExtType::Sync,
                                     static_cast<uint16_t>(R.below(4)),
                                     {R.below(8), R.next() & 0xFFFF,
                                      R.below(4), Ts}}));
      uint32_t DagId, Bits;
      if (O.IncludeCorrupt && R.chance(1, 128)) {
        if (R.chance(1, 2)) {
          // Unknown module: an id beyond every range (but not BadDagId).
          DagId = NextBase + 500 + static_cast<uint32_t>(R.below(100));
          Bits = static_cast<uint32_t>(R.below(1u << PathBitCount));
        } else {
          // Undecodable bits: both arms of the first level set.
          unsigned M = static_cast<unsigned>(R.below(O.Modules));
          unsigned D = static_cast<unsigned>(R.below(O.DagsPerModule));
          const LevelBits &LB = Shapes[M].Dags[D].Levels[0];
          DagId = Shapes[M].DagIdBase + D;
          Bits = (1u << LB.ArmA) | (1u << LB.ArmB);
        }
      } else if (R.chance(O.HotPercent, 100) && !Hot.empty()) {
        const HotPair &H = Hot[R.below(Hot.size())];
        DagId = H.DagId;
        Bits = H.Bits;
      } else {
        unsigned M = static_cast<unsigned>(R.below(O.Modules));
        unsigned D = static_cast<unsigned>(R.below(O.DagsPerModule));
        DagId = Shapes[M].DagIdBase + D;
        Bits = pickPathBits(R, Shapes[M].Dags[D]);
      }
      Data.push_back(makeDagRecord(DagId) | Bits);
      ++W.DagRecords;
    }

    SnapBufferImage B;
    B.Index = T;
    B.SubBufferWords = static_cast<uint32_t>(Data.size() + 1);
    B.SubBufferCount = 1;
    B.CommittedSubBuffer = UINT32_MAX;
    B.OwnerThread = Tid;
    B.RecordsBase = 0x100000ull * (T + 1);
    std::vector<uint32_t> Words = Data;
    Words.push_back(SentinelRecord);
    B.Raw.resize(Words.size() * 4);
    for (size_t I = 0; I < Words.size(); ++I)
      for (int J = 0; J < 4; ++J)
        B.Raw[I * 4 + J] = static_cast<uint8_t>(Words[I] >> (J * 8));
    W.Snap.Buffers.push_back(std::move(B));

    SnapThreadInfo TI;
    TI.ThreadId = Tid;
    TI.Cursor = 0x100000ull * (T + 1) + (Data.size() - 1) * 4;
    W.Snap.Threads.push_back(TI);
  }
  return W;
}
