//===- reconstruct/Trace.h - Reconstructed trace model ----------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output model of trace reconstruction (paper section 4): per-thread,
/// line-by-line execution histories with call-depth, exception and SYNC
/// annotations, ready for the display layer.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_TRACE_H
#define TRACEBACK_RECONSTRUCT_TRACE_H

#include "isa/Module.h"
#include "runtime/TraceRecord.h"
#include "support/StringPool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace traceback {

/// One entry in a reconstructed history.
struct TraceEvent {
  enum class Kind : uint8_t {
    Line,         ///< A source line executed.
    Exception,    ///< A fault / signal was raised here.
    ExceptionEnd, ///< Control resumed after a fault / signal handler.
    Sync,         ///< RPC / cross-technology boundary record.
    ThreadStart,
    ThreadEnd,
    Untraced,     ///< Execution passed through a bad-DAG or unknown module.
  };

  Kind EventKind = Kind::Line;

  // Line events. Names are interned (see support/StringPool.h): events
  // repeat the same few names millions of times, and a reconstructed
  // trace must stay valid after its snap and mapfiles are gone.
  InternedString Module;
  InternedString File;
  InternedString Function;
  uint32_t Line = 0;
  uint32_t Repeat = 1;     ///< Consecutive executions collapsed.
  uint8_t BlockFlags = 0;  ///< MapBlockFlags of the source block.
  uint32_t Depth = 0;      ///< Call nesting depth.
  bool Trimmed = false;    ///< Last line before an exception cut the block.

  // Exception events.
  uint16_t FaultCodeValue = 0;
  uint64_t FaultModuleKey = 0;
  uint32_t FaultOffset = 0;

  // Sync events.
  SyncKind Sync = SyncKind::CallSend;
  uint64_t LogicalThreadId = 0;
  uint64_t Sequence = 0;
  uint64_t PeerRuntimeId = 0;

  /// Most recent clock reading at or before this event (that runtime's
  /// clock; 0 when no timestamp has been seen yet).
  uint64_t Timestamp = 0;
};

/// The history of one physical thread, oldest to newest.
struct ThreadTrace {
  uint64_t RuntimeId = 0;
  uint64_t ThreadId = 0;
  std::string ProcessName;
  std::string MachineName;
  Technology Tech = Technology::Native;
  /// True when the ring overwrote older records (history incomplete at the
  /// old end).
  bool Truncated = false;
  /// Linear word position where a torn write cut off the *new* end of the
  /// history (newer records were dropped); UINT64_MAX when intact.
  uint64_t TruncatedAt = UINT64_MAX;
  std::vector<TraceEvent> Events;
};

/// Everything recovered from one snap (plus diagnostics).
struct ReconstructedTrace {
  std::vector<ThreadTrace> Threads;
  std::vector<std::string> Warnings;
  /// The producing tracer's self-telemetry ("traceback-metrics-v1" JSON),
  /// decoded from the snap's TELEMETRY records; empty when the snap
  /// predates telemetry or the stream was torn. Diagnostic side data —
  /// never part of the rendered trace.
  std::string TelemetryJson;

  /// Finds the trace of a physical thread, or nullptr.
  const ThreadTrace *threadById(uint64_t ThreadId) const {
    for (const ThreadTrace &T : Threads)
      if (T.ThreadId == ThreadId)
        return &T;
    return nullptr;
  }
};

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_TRACE_H
