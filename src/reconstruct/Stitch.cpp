//===- reconstruct/Stitch.cpp - Distributed trace stitching ---------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/Stitch.h"

#include "support/Text.h"

#include <algorithm>
#include <deque>

using namespace traceback;

void DistributedStitcher::addTrace(const ReconstructedTrace &Trace) {
  for (const ThreadTrace &T : Trace.Threads)
    Threads.push_back(&T);
}

void DistributedStitcher::noteMissingPeer(const std::string &MachineName) {
  if (std::find(MissingPeerNames.begin(), MissingPeerNames.end(),
                MachineName) == MissingPeerNames.end())
    MissingPeerNames.push_back(MachineName);
}

namespace {
struct SyncSite {
  const ThreadTrace *Trace;
  size_t EventIndex;
  uint64_t Seq;
  SyncKind Kind;
  uint64_t Timestamp;
};
} // namespace

std::vector<LogicalThread>
DistributedStitcher::stitch(std::vector<std::string> &Warnings) const {
  // Collect sync sites grouped by logical thread id.
  std::map<uint64_t, std::vector<SyncSite>> ByLogical;
  for (const ThreadTrace *T : Threads)
    for (size_t I = 0; I < T->Events.size(); ++I) {
      const TraceEvent &E = T->Events[I];
      if (E.EventKind != TraceEvent::Kind::Sync)
        continue;
      ByLogical[E.LogicalThreadId].push_back(
          {T, I, E.Sequence, E.Sync, E.Timestamp});
    }

  // A partial group snap is reported up front: the absence is a property
  // of the snap set, not of any one logical thread.
  for (const std::string &Peer : MissingPeerNames)
    Warnings.push_back(formatv(
        "partial group snap: peer machine '%s' was unreachable; its traces "
        "are absent",
        Peer.c_str()));

  std::vector<LogicalThread> Result;
  for (auto &[LogicalId, Sites] : ByLogical) {
    std::sort(Sites.begin(), Sites.end(),
              [](const SyncSite &A, const SyncSite &B) {
                return A.Seq < B.Seq;
              });

    LogicalThread LT;
    LT.LogicalId = LogicalId;

    // Detect gaps in the causality chain (overwritten records). With a
    // partial group snap the likely cause is the missing peer, not
    // overwrite — say so instead of leaving the gap unexplained.
    const char *GapSuffix =
        MissingPeerNames.empty() ? "" : " (a group-snap peer is missing)";
    for (size_t I = 1; I < Sites.size(); ++I)
      if (Sites[I].Seq != Sites[I - 1].Seq + 1 &&
          Sites[I].Seq != Sites[I - 1].Seq)
        Warnings.push_back(
            formatv("logical thread %llx: sequence gap %llu -> %llu%s",
                    static_cast<unsigned long long>(LogicalId),
                    static_cast<unsigned long long>(Sites[I - 1].Seq),
                    static_cast<unsigned long long>(Sites[I].Seq),
                    GapSuffix));

    // Leading events of the root physical thread.
    if (!Sites.empty()) {
      const SyncSite &First = Sites.front();
      LT.Segments.push_back({First.Trace, 0, First.EventIndex + 1});
    }
    // Between consecutive sync sites on the same physical thread lie that
    // thread's events for this logical thread; a thread change means
    // control moved across the wire with nothing in between.
    for (size_t I = 0; I + 1 < Sites.size(); ++I) {
      const SyncSite &A = Sites[I];
      const SyncSite &B = Sites[I + 1];
      if (A.Trace == B.Trace)
        LT.Segments.push_back({A.Trace, A.EventIndex + 1, B.EventIndex + 1});
      else
        LT.Segments.push_back({B.Trace, B.EventIndex, B.EventIndex + 1});
    }
    // Trailing events of the thread holding the final sync.
    if (!Sites.empty()) {
      const SyncSite &Last = Sites.back();
      if (Last.EventIndex + 1 < Last.Trace->Events.size())
        LT.Segments.push_back({Last.Trace, Last.EventIndex + 1,
                               Last.Trace->Events.size()});
    }
    Result.push_back(std::move(LT));
  }
  return Result;
}

std::map<uint64_t, int64_t> DistributedStitcher::estimateClockOffsets() const {
  // Pair up outbound/inbound sync records by (logical id, seq boundary)
  // and derive per-runtime-pair offset samples.
  struct Sample {
    uint64_t From, To; ///< Runtime ids.
    int64_t Delta;     ///< To-clock minus From-clock at the same instant.
  };
  std::vector<Sample> Samples;

  std::map<std::pair<uint64_t, uint64_t>, SyncSite> Outbound;
  for (const ThreadTrace *T : Threads)
    for (size_t I = 0; I < T->Events.size(); ++I) {
      const TraceEvent &E = T->Events[I];
      if (E.EventKind != TraceEvent::Kind::Sync)
        continue;
      if (E.Sync == SyncKind::CallSend || E.Sync == SyncKind::ReplySend) {
        Outbound[{E.LogicalThreadId, E.Sequence}] =
            {T, I, E.Sequence, E.Sync, E.Timestamp};
      }
    }
  for (const ThreadTrace *T : Threads)
    for (const TraceEvent &E : T->Events) {
      if (E.EventKind != TraceEvent::Kind::Sync)
        continue;
      if (E.Sync != SyncKind::CallRecv && E.Sync != SyncKind::ReplyRecv)
        continue;
      auto It = Outbound.find({E.LogicalThreadId, E.Sequence - 1});
      if (It == Outbound.end())
        continue;
      const SyncSite &Send = It->second;
      if (Send.Timestamp == 0 || E.Timestamp == 0)
        continue; // Timestamp lost (truncated ring): unusable sample.
      // Ignoring network latency, the receive instant equals the send
      // instant; the observed difference is clock offset plus latency.
      Samples.push_back({Send.Trace->RuntimeId, T->RuntimeId,
                         static_cast<int64_t>(E.Timestamp) -
                             static_cast<int64_t>(Send.Timestamp)});
    }

  // Combine forward and reverse samples per pair: averaging a request
  // sample with a reply sample cancels symmetric latency (NTP).
  std::map<std::pair<uint64_t, uint64_t>, std::pair<int64_t, int64_t>>
      PairAccum; // (sum, count)
  for (const Sample &S : Samples) {
    if (S.From == S.To)
      continue;
    auto Key = S.From < S.To ? std::make_pair(S.From, S.To)
                             : std::make_pair(S.To, S.From);
    int64_t Delta = S.From < S.To ? S.Delta : -S.Delta;
    auto &Acc = PairAccum[Key];
    Acc.first += Delta;
    ++Acc.second;
  }

  // Breadth-first propagation of offsets from the first runtime.
  std::map<uint64_t, std::vector<std::pair<uint64_t, int64_t>>> Graph;
  for (const auto &[Key, Acc] : PairAccum) {
    int64_t Avg = Acc.first / Acc.second;
    Graph[Key.first].push_back({Key.second, Avg});
    Graph[Key.second].push_back({Key.first, -Avg});
  }

  std::map<uint64_t, int64_t> Offsets;
  if (Threads.empty())
    return Offsets;
  uint64_t Ref = Threads.front()->RuntimeId;
  Offsets[Ref] = 0;
  std::deque<uint64_t> Queue{Ref};
  while (!Queue.empty()) {
    uint64_t Cur = Queue.front();
    Queue.pop_front();
    for (const auto &[Next, Delta] : Graph[Cur]) {
      if (Offsets.count(Next))
        continue;
      // Next's clock reads Offsets[Cur] + Delta ahead of the reference.
      Offsets[Next] = Offsets[Cur] + Delta;
      Queue.push_back(Next);
    }
  }
  return Offsets;
}

std::vector<DistributedStitcher::TimelineEntry>
DistributedStitcher::mergeTimeline() const {
  std::map<uint64_t, int64_t> Offsets = estimateClockOffsets();
  std::vector<TimelineEntry> Timeline;
  for (const ThreadTrace *T : Threads) {
    int64_t Off = 0;
    if (auto It = Offsets.find(T->RuntimeId); It != Offsets.end())
      Off = It->second;
    uint64_t LastTime = 0;
    for (size_t I = 0; I < T->Events.size(); ++I) {
      uint64_t Ts = T->Events[I].Timestamp;
      uint64_t Corrected =
          Ts == 0 ? LastTime
                  : static_cast<uint64_t>(static_cast<int64_t>(Ts) - Off);
      if (Corrected < LastTime)
        Corrected = LastTime; // Monotonic within a thread.
      LastTime = Corrected;
      Timeline.push_back({T, I, Corrected});
    }
  }
  std::stable_sort(Timeline.begin(), Timeline.end(),
                   [](const TimelineEntry &A, const TimelineEntry &B) {
                     return A.CorrectedTime < B.CorrectedTime;
                   });
  return Timeline;
}
