//===- reconstruct/Stitch.h - Distributed trace stitching -------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distributed reconstruction (paper section 5): fuses physical-thread
/// traces from many runtimes (separate processes, machines, or the two
/// technologies inside one process) into logical threads by matching the
/// four SYNC records each RPC produces, and estimates per-runtime clock
/// skew from the SYNC timestamp pairs so cross-runtime interleavings can
/// be ordered (section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_STITCH_H
#define TRACEBACK_RECONSTRUCT_STITCH_H

#include "reconstruct/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace traceback {

/// A contiguous slice of one physical thread's events belonging to a
/// logical thread.
struct LogicalSegment {
  const ThreadTrace *Trace = nullptr;
  size_t Begin = 0; ///< First event index (inclusive).
  size_t End = 0;   ///< One past the last event index.
};

/// One causally-ordered chain of physical-thread segments.
struct LogicalThread {
  uint64_t LogicalId = 0;
  std::vector<LogicalSegment> Segments;
};

/// Fuses traces from any number of snaps/runtimes.
class DistributedStitcher {
public:
  /// Registers every thread of \p Trace (the object must outlive the
  /// stitcher's results).
  void addTrace(const ReconstructedTrace &Trace);

  /// Records that the snap set is a PARTIAL group snap: machine
  /// \p MachineName was unreachable when the group snap fanned out (a
  /// MISSING-PEER marker stood in for its contribution), so its traces
  /// are absent by construction. stitch() reports the absence once and
  /// attributes otherwise-unexplained sequence gaps to it. Duplicate
  /// names are collapsed.
  void noteMissingPeer(const std::string &MachineName);

  /// Machines noted as missing, in first-noted order.
  const std::vector<std::string> &missingPeers() const {
    return MissingPeerNames;
  }

  /// Builds the logical threads. Sequence gaps (lost records) produce
  /// warnings but do not abort.
  std::vector<LogicalThread> stitch(std::vector<std::string> &Warnings) const;

  /// Estimates each runtime's clock offset relative to the first-seen
  /// runtime, NTP-style from SYNC pairs:
  /// offset = ((t_recv - t_send) + (t_replySend - t_replyRecv)) / 2.
  /// Runtimes unreachable through any SYNC edge are absent from the map.
  std::map<uint64_t, int64_t> estimateClockOffsets() const;

  /// Merges events of all registered threads into one timeline ordered by
  /// skew-corrected timestamps (ties keep per-thread order). Events with
  /// no timestamp inherit their predecessor's.
  struct TimelineEntry {
    const ThreadTrace *Trace;
    size_t EventIndex;
    uint64_t CorrectedTime;
  };
  std::vector<TimelineEntry> mergeTimeline() const;

private:
  std::vector<const ThreadTrace *> Threads;
  std::vector<std::string> MissingPeerNames;
};

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_STITCH_H
