//===- reconstruct/SynthWorkload.h - Synthetic snap generator ---*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of synthetic mapfile + snap workloads for the
/// reconstruction bench and property tests. Running real guests through
/// the VM cannot produce the volumes batch reconstruction must handle
/// (thousands of machines' group snaps), so this builds the on-disk
/// shapes directly: many modules with many multi-level branch DAGs, and
/// per-thread ring buffers full of DAG records whose path bits are drawn
/// from a skewed hot-pair distribution — the redundancy profile real
/// traces show — plus timestamps, SYNCs and (optionally) corrupt records
/// to exercise the warning paths.
///
/// Everything derives from one seed, so a workload is bit-for-bit
/// reproducible across runs, jobs counts and cache settings.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_SYNTHWORKLOAD_H
#define TRACEBACK_RECONSTRUCT_SYNTHWORKLOAD_H

#include "instrument/MapFile.h"
#include "runtime/Snap.h"

#include <cstdint>
#include <vector>

namespace traceback {

struct SynthWorkloadOptions {
  unsigned Modules = 8;
  unsigned DagsPerModule = 16;
  unsigned Threads = 4;
  unsigned RecordsPerThread = 2000;
  /// Number of distinct hot (DAG, path-bits) pairs records cluster on.
  unsigned HotPairs = 24;
  /// Percentage of DAG records drawn from the hot set.
  unsigned HotPercent = 90;
  /// Sprinkle unknown-module ids and undecodable path bits (~1%).
  bool IncludeCorrupt = true;
};

struct SynthWorkload {
  std::vector<MapFile> Maps;
  SnapFile Snap;
  /// DAG records across all buffers (the bench's unit of throughput).
  uint64_t DagRecords = 0;
};

SynthWorkload makeSynthWorkload(uint64_t Seed,
                                const SynthWorkloadOptions &Opts = {});

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_SYNTHWORKLOAD_H
