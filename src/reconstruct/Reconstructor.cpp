//===- reconstruct/Reconstructor.cpp - Trace reconstruction ---------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/Reconstructor.h"

#include "reconstruct/RecordRecovery.h"
#include "support/Metrics.h"
#include "support/Text.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

using namespace traceback;

namespace {

/// Estimated heap bytes of one registered mapfile: the container
/// payloads that dominate a parsed map. Deliberately an estimate — the
/// gauge answers "roughly how much memory do resident stores hold", not
/// an allocator audit.
uint64_t mapResidentBytes(const MapFile &M) {
  uint64_t B = sizeof(MapFile) + M.ModuleName.size();
  for (const std::string &F : M.Files)
    B += sizeof(std::string) + F.size();
  for (const MapDag &D : M.Dags) {
    B += sizeof(MapDag);
    for (const MapBlock &Blk : D.Blocks)
      B += sizeof(MapBlock) + Blk.Succs.size() * sizeof(uint16_t) +
           Blk.Lines.size() * sizeof(MapLine) + Blk.Function.size();
  }
  return B;
}

} // namespace

void MapFileStore::accountResident(int64_t Delta) {
  ResidentBytes = static_cast<uint64_t>(
      static_cast<int64_t>(ResidentBytes) + Delta);
  MetricsRegistry::global().gauge("store.bytes_resident").add(Delta);
}

bool MapFileStore::add(MapFile Map, std::string *Warning) {
  uint64_t Key = Map.Checksum.low64();
  accountResident(static_cast<int64_t>(mapResidentBytes(Map)));
  if (size_t *Slot = Index.find(Key)) {
    // Last add wins: overwrite the existing slot instead of leaving the
    // index pointing at a stale mapfile.
    if (Warning)
      *Warning = formatv("mapfile for checksum %s registered twice "
                         "(module %s replaces %s); keeping the newest",
                         Map.Checksum.toHex().c_str(),
                         Map.ModuleName.c_str(),
                         Maps[*Slot].ModuleName.c_str());
    accountResident(-static_cast<int64_t>(mapResidentBytes(Maps[*Slot])));
    Maps[*Slot] = std::move(Map);
    return false;
  }
  Index.insertOrAssign(Key, Maps.size());
  Maps.push_back(std::move(Map));
  return true;
}

bool MapFileStore::addFromFile(const std::string &Path,
                               std::string *Warning) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  // Exact-size buffer, one read: the transient footprint of a bulk load
  // is one file, not the directory.
  bool Ok = std::fseek(F, 0, SEEK_END) == 0;
  long Size = Ok ? std::ftell(F) : -1;
  Ok = Ok && Size >= 0 && std::fseek(F, 0, SEEK_SET) == 0;
  std::vector<uint8_t> Bytes;
  if (Ok) {
    Bytes.resize(static_cast<size_t>(Size));
    Ok = Bytes.empty() ||
         std::fread(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  }
  std::fclose(F);
  MapFile Map;
  if (!Ok || !MapFile::deserialize(Bytes, Map))
    return false;
  add(std::move(Map), Warning);
  return true;
}

const MapFile *MapFileStore::byChecksum(const MD5Digest &Digest) const {
  return byKey(Digest.low64());
}

const MapFile *MapFileStore::byKey(uint64_t ChecksumLow64) const {
  const size_t *Slot = Index.find(ChecksumLow64);
  return Slot ? &Maps[*Slot] : nullptr;
}

// ----------------------------------------------------------------------------
// DAG path decoding.
// ----------------------------------------------------------------------------

std::vector<uint16_t> traceback::decodeDagPath(const MapDag &Dag,
                                               uint32_t PathBits) {
  if (Dag.Blocks.empty())
    return {};

  const size_t BlockCount = Dag.Blocks.size();

  // Elision expansion: a v3 mapfile built with probe elision keeps every
  // path bit allocated but emits no probe for bits the placement pass
  // proved implied. Reinsert them before the path search — a block elided
  // as always-executed (ElidedBy -1) contributes its bit unconditionally,
  // and a block elided under a dominating implier contributes its bit
  // whenever the implier's recorded bit is present. Impliers are never
  // themselves elided, so a single pass over the raw bits suffices.
  uint32_t Expanded = PathBits;
  for (const MapBlock &B : Dag.Blocks) {
    if (B.BitIndex < 0 || B.ElidedBy == static_cast<int8_t>(-2))
      continue;
    if (B.ElidedBy == static_cast<int8_t>(-1) ||
        (PathBits & (1u << B.ElidedBy)))
      Expanded |= 1u << B.BitIndex;
  }

  // Depth-first search for the root path whose bit-set equals Target,
  // with an explicit frame stack: DAGs from healthy mapfiles are tiny,
  // but fuzzed/corrupt ones can chain implied blocks arbitrarily deep,
  // and recursion depth must not be attacker-controlled. Returns false on
  // bit-sets inconsistent with the DAG shape; an empty Path signals
  // cyclic (corrupt) map data the caller must not retry.
  auto Search = [&](uint32_t Target, std::vector<uint16_t> &Path) {
    struct Frame {
      uint16_t Cur;
      uint32_t Used;
      uint32_t NextSucc;
    };
    std::vector<Frame> Frames;
    Path.assign(1, 0);
    Frames.push_back({0, 0, 0});

    while (!Frames.empty()) {
      // First visit of a node: success test.
      if (Frames.back().NextSucc == 0 && Frames.back().Used == Target)
        return true;
      const MapBlock &B = Dag.Blocks[Frames.back().Cur];
      const uint32_t Used = Frames.back().Used;
      bool Descended = false;
      while (Frames.back().NextSucc < B.Succs.size()) {
        uint16_t S = B.Succs[Frames.back().NextSucc++];
        if (S >= BlockCount)
          continue; // Corrupt successor index: ignore the edge.
        const MapBlock &SB = Dag.Blocks[S];
        uint32_t ChildUsed;
        if (SB.BitIndex >= 0) {
          uint32_t Bit = 1u << SB.BitIndex;
          if (!(Target & Bit) || (Used & Bit))
            continue;
          ChildUsed = Used | Bit;
        } else if (B.Succs.size() == 1) {
          // Implied block: execution is certain if the predecessor ran.
          ChildUsed = Used;
        } else {
          continue;
        }
        // A simple path through an acyclic graph can't exceed the block
        // count; longer means cyclic (corrupt) map data — fail the
        // decode rather than walking it forever.
        if (Path.size() >= BlockCount) {
          Path.clear();
          return false;
        }
        Path.push_back(S);
        Frames.push_back({S, ChildUsed, 0});
        Descended = true;
        break;
      }
      if (Descended)
        continue;
      Frames.pop_back();
      if (!Frames.empty())
        Path.pop_back(); // The root's slot in Path stays.
    }
    return false;
  };

  std::vector<uint16_t> Path;
  bool Found = Search(Expanded, Path);
  // A torn record's surviving bits can make the expansion inconsistent
  // (an implier bit present, the actual path absent). Retry with the raw
  // recorded bits before giving up — never after a cyclic-map abort.
  if (!Found && Expanded != PathBits && !Path.empty())
    Found = Search(PathBits, Path);
  if (!Found)
    return {}; // Bits inconsistent with the DAG shape: corrupted record.

  // Extend through forced single-successor no-bit chains: those blocks ran
  // if control left the last bit block normally. The visited bitmap
  // guards against malformed cyclic map data (stop at the first revisit,
  // in linear time even for very long chains).
  std::vector<bool> OnPath(BlockCount, false);
  for (uint16_t BI : Path)
    OnPath[BI] = true;
  for (;;) {
    const MapBlock &Last = Dag.Blocks[Path.back()];
    if (Last.Succs.size() != 1 || Last.Succs[0] >= BlockCount)
      break;
    const MapBlock &Next = Dag.Blocks[Last.Succs[0]];
    if (Next.BitIndex >= 0)
      break; // Unset bit: execution stopped or left the DAG here.
    if (OnPath[Last.Succs[0]])
      break;
    OnPath[Last.Succs[0]] = true;
    Path.push_back(Last.Succs[0]);
  }
  return Path;
}

// ----------------------------------------------------------------------------
// Event emission.
// ----------------------------------------------------------------------------

namespace {

/// Builder state for one thread's events. With \p Legacy set it
/// reproduces the original per-record resolution and decoding exactly
/// (the benchmark baseline); otherwise module/mapfile/DAG resolution is
/// memoized per DAG id and decoding goes through the shared cache when
/// one is supplied.
class ThreadBuilder {
public:
  ThreadBuilder(const SnapFile &Snap, const MapFileStore &Maps,
                std::vector<std::string> &Warnings, DagPathCache *Cache,
                bool Legacy)
      : Snap(Snap), Maps(Maps), Warnings(Warnings), Cache(Cache),
        Legacy(Legacy) {}

  std::vector<TraceEvent> build(const ThreadSegment &Segment);

private:
  /// Resolution result for one DAG id, failure diagnostics included.
  struct ResolvedDag {
    const SnapModuleInfo *Mod = nullptr;
    const MapFile *Map = nullptr;
    const MapDag *Dag = nullptr;
    /// Diagnostic re-emitted for every record that hits this DAG id
    /// (empty on success) — memoization must not change the warning
    /// stream the original per-record path produced.
    std::string Warning;
    /// Module label of the Untraced placeholder event on failure.
    std::string UntracedLabel;
    /// Interned names, precomputed once per DAG id so event emission is
    /// pointer stores (memoized mode only; legacy interns per event).
    InternedString ModName;
    std::vector<InternedString> FileNames; ///< By mapfile file index.
    std::vector<InternedString> BlockFuncs; ///< By DAG-local block index.
  };

  ResolvedDag resolveFresh(uint32_t DagId) const;
  const ResolvedDag &resolveMemoized(uint32_t DagId);

  void emitDagRecord(uint32_t Word);
  void emitExt(const ExtRecord &Rec);
  void applyExceptionTrim(const TraceEvent &Exc);
  void collapseRedundancy(std::vector<TraceEvent> &Events,
                          std::vector<uint64_t> &Provenance);

  const SnapModuleInfo *moduleForDagId(uint32_t DagId) const;

  const SnapFile &Snap;
  const MapFileStore &Maps;
  std::vector<std::string> &Warnings;
  DagPathCache *Cache;
  const bool Legacy;

  /// DAG id -> resolution, one entry per distinct id seen in this
  /// segment (snap module tables are per-snap, so the memo cannot
  /// outlive the builder).
  FlatMap64<ResolvedDag> ResolveMemo;

  /// (DAG id << PathBitCount | path bits) -> decoded path. Lock-free
  /// fast path in front of the shared cache: only the first sighting of
  /// a pair in this segment takes the cache's shard mutex (or, with the
  /// cache disabled, runs the DFS). DAG ids are unique across a snap's
  /// modules, so the key cannot collide.
  FlatMap64<SharedDagPath> PathMemo;

  std::vector<TraceEvent> Events;
  /// Per event: (record serial << 32) | block start offset — provenance
  /// for the redundancy-vs-repetition heuristic.
  std::vector<uint64_t> Provenance;

  uint32_t Depth = 0;
  bool PendingCall = false;
  uint64_t LastTs = 0;
  uint64_t RecordSerial = 0;

  /// Info about the most recent DAG record, for exception trimming.
  struct LastDagInfo {
    bool Valid = false;
    uint64_t ModuleKey = 0;
    const MapFile *Map = nullptr;
    const MapDag *Dag = nullptr;
    /// The decoded path. In legacy mode \p Owner holds the record's own
    /// decode; in memoized mode it stays null — the pointee belongs to
    /// PathMemo, which outlives this record.
    const std::vector<uint16_t> *Path = nullptr;
    SharedDagPath Owner;
    /// Index of the record's first event in Events. Trim offsets derive
    /// from it: a path block always appends exactly its line count.
    size_t EventsBase = 0;
    /// For each path position: index of its first Line event in Events.
    /// Built eagerly in legacy mode only (the pre-PR per-record cost);
    /// memoized mode computes trim offsets from EventsBase on demand.
    std::vector<size_t> FirstEvent;
  } LastDag;
};

const SnapModuleInfo *ThreadBuilder::moduleForDagId(uint32_t DagId) const {
  // Prefer live modules; fall back to unloaded ones whose stale records
  // may survive in the ring.
  const SnapModuleInfo *Fallback = nullptr;
  for (const SnapModuleInfo &M : Snap.Modules) {
    if (!M.Instrumented || M.DagIdCount == 0)
      continue;
    if (DagId < M.DagIdBase || DagId >= M.DagIdBase + M.DagIdCount)
      continue;
    if (!M.Unloaded)
      return &M;
    Fallback = &M;
  }
  return Fallback;
}

ThreadBuilder::ResolvedDag ThreadBuilder::resolveFresh(uint32_t DagId) const {
  ResolvedDag R;
  R.Mod = moduleForDagId(DagId);
  if (!R.Mod) {
    R.Warning =
        formatv("dag id %u matches no module in the snap metadata", DagId);
    R.UntracedLabel = "<unknown module>";
    return R;
  }
  R.Map = Maps.byChecksum(R.Mod->Checksum);
  if (!R.Map) {
    R.Warning = formatv("no mapfile for module %s (checksum %s)",
                        R.Mod->Name.c_str(),
                        R.Mod->Checksum.toHex().c_str());
    R.UntracedLabel = "<no mapfile: " + R.Mod->Name + ">";
    return R;
  }
  // The mapfile stores DAGs by instrumentation-time relative id; the snap
  // metadata gives the module's actual (post-rebase) base.
  R.Dag = R.Map->dagByRelId(DagId - R.Mod->DagIdBase);
  if (!R.Dag) {
    R.Warning = formatv("module %s has no dag %u", R.Mod->Name.c_str(),
                        DagId - R.Mod->DagIdBase);
    R.UntracedLabel = "<bad dag id>";
  }
  return R;
}

const ThreadBuilder::ResolvedDag &
ThreadBuilder::resolveMemoized(uint32_t DagId) {
  if (const ResolvedDag *Found = ResolveMemo.find(DagId))
    return *Found;
  ResolvedDag R = resolveFresh(DagId);
  if (R.Dag) {
    // Intern every name the DAG's events can carry, once per id.
    R.ModName = InternedString(R.Mod->Name);
    R.FileNames.reserve(R.Map->Files.size());
    for (const std::string &F : R.Map->Files)
      R.FileNames.push_back(InternedString(F));
    R.BlockFuncs.reserve(R.Dag->Blocks.size());
    for (const MapBlock &B : R.Dag->Blocks)
      R.BlockFuncs.push_back(InternedString(B.Function));
  }
  ResolveMemo.insertOrAssign(DagId, std::move(R));
  return *ResolveMemo.find(DagId);
}

void ThreadBuilder::emitDagRecord(uint32_t Word) {
  ++RecordSerial;
  if (Legacy) {
    LastDag = LastDagInfo(); // Pre-PR behaviour: frees FirstEvent's
                             // buffer on every record.
  } else {
    LastDag.Valid = false;
    LastDag.Path = nullptr;
  }
  uint32_t DagId = dagIdOfRecord(Word);
  uint32_t Bits = pathBitsOfRecord(Word);

  auto EmitUntraced = [&](const std::string &Why) {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Untraced;
    E.Module = Why;
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(RecordSerial << 32);
    PendingCall = false;
  };

  if (DagId == BadDagId) {
    EmitUntraced("<bad-dag module>");
    return;
  }

  ResolvedDag Fresh;
  const ResolvedDag &R = Legacy ? (Fresh = resolveFresh(DagId))
                                : resolveMemoized(DagId);
  if (!R.Warning.empty())
    Warnings.push_back(R.Warning);
  if (!R.Dag) {
    EmitUntraced(R.UntracedLabel);
    return;
  }
  const SnapModuleInfo *Mod = R.Mod;
  const MapFile *Map = R.Map;
  const MapDag *Dag = R.Dag;

  const std::vector<uint16_t> *Path = nullptr;
  SharedDagPath Owned;
  if (Legacy) {
    Owned = std::make_shared<const std::vector<uint16_t>>(
        decodeDagPath(*Dag, Bits));
    Path = Owned.get();
  } else {
    uint64_t Key = (static_cast<uint64_t>(DagId) << PathBitCount) | Bits;
    if (const SharedDagPath *Found = PathMemo.find(Key)) {
      Path = Found->get();
    } else {
      Owned = Cache ? Cache->decode(Mod->Checksum.low64(), *Dag, Bits)
                    : std::make_shared<const std::vector<uint16_t>>(
                          decodeDagPath(*Dag, Bits));
      PathMemo.insertOrAssign(Key, Owned);
      Path = Owned.get();
    }
  }
  if (Path->empty()) {
    Warnings.push_back(
        formatv("module %s dag %u: path bits 0x%x do not decode",
                Mod->Name.c_str(), DagId - Mod->DagIdBase, Bits));
    EmitUntraced("<undecodable path>");
    return;
  }

  LastDag.Valid = true;
  LastDag.ModuleKey = Mod->Checksum.low64();
  LastDag.Map = Map;
  LastDag.Dag = Dag;
  LastDag.Path = Path;
  LastDag.Owner = std::move(Owned);
  LastDag.EventsBase = Events.size();
  if (Legacy)
    LastDag.FirstEvent.reserve(Path->size());

  for (uint16_t BI : *Path) {
    const MapBlock &B = Dag->Blocks[BI];
    if (Legacy)
      LastDag.FirstEvent.push_back(Events.size());
    if ((B.Flags & MBF_FuncEntry) && PendingCall)
      ++Depth;
    PendingCall = false;
    for (const MapLine &L : B.Lines) {
      TraceEvent E;
      E.EventKind = TraceEvent::Kind::Line;
      if (Legacy) {
        // Per-event interning: the pre-PR cost shape (three per-event
        // string operations), without keeping a second event type.
        E.Module = InternedString(Mod->Name);
        E.File = InternedString(Map->fileName(L.FileIndex));
        E.Function = InternedString(B.Function);
      } else {
        E.Module = R.ModName;
        E.File = L.FileIndex < R.FileNames.size()
                     ? R.FileNames[L.FileIndex]
                     : InternedString(Map->fileName(L.FileIndex));
        E.Function = R.BlockFuncs[BI];
      }
      E.Line = L.Line;
      E.BlockFlags = B.Flags;
      E.Depth = Depth;
      E.Timestamp = LastTs;
      Events.push_back(E);
      Provenance.push_back((RecordSerial << 32) | B.StartOffset);
    }
    if (B.Flags & MBF_EndsInRet) {
      if (Depth > 0)
        --Depth;
    }
    if (B.Flags & MBF_EndsInCall)
      PendingCall = true;
  }
}

void ThreadBuilder::applyExceptionTrim(const TraceEvent &Exc) {
  // Trim the lines of the most recent DAG record using the exception
  // address (section 4.2). An address outside the path's blocks means the
  // fault happened in a callee (possibly uninstrumented); the trace then
  // correctly stops at the block that ends in the call.
  if (!LastDag.Valid || Exc.FaultModuleKey != LastDag.ModuleKey)
    return;
  uint32_t Off = Exc.FaultOffset;
  const std::vector<uint16_t> &Path = *LastDag.Path;
  // Memoized mode does not materialize FirstEvent per record; the
  // running sum recomputes it (a block always appends exactly its line
  // count, so indices are a prefix sum over the path).
  size_t Running = LastDag.EventsBase;
  for (size_t PI = 0; PI < Path.size(); ++PI) {
    const MapBlock &B = LastDag.Dag->Blocks[Path[PI]];
    if (Off < B.StartOffset || Off >= B.EndOffset) {
      Running += B.Lines.size();
      continue;
    }
    bool Eager = !LastDag.FirstEvent.empty();
    // Drop events of later path blocks.
    size_t NextFirst = Eager ? (PI + 1 < LastDag.FirstEvent.size()
                                    ? LastDag.FirstEvent[PI + 1]
                                    : Events.size())
                             : (PI + 1 < Path.size()
                                    ? Running + B.Lines.size()
                                    : Events.size());
    size_t CutFrom = NextFirst;
    // Within the faulting block, drop lines that start after the fault.
    size_t BlockFirst = Eager ? LastDag.FirstEvent[PI] : Running;
    for (size_t EI = BlockFirst; EI < CutFrom; ++EI) {
      // Line events only; provenance low bits hold the block start.
      const MapLine *Found = nullptr;
      for (const MapLine &L : B.Lines)
        if (L.Line == Events[EI].Line && L.StartOffset > Off)
          Found = &L;
      if (Found) {
        CutFrom = EI;
        break;
      }
    }
    if (CutFrom < Events.size()) {
      Events.resize(CutFrom);
      Provenance.resize(CutFrom);
    }
    if (!Events.empty() &&
        Events.back().EventKind == TraceEvent::Kind::Line)
      Events.back().Trimmed = true;
    LastDag.Valid = false;
    return;
  }
}

void ThreadBuilder::emitExt(const ExtRecord &Rec) {
  auto Payload = [&](size_t I) {
    return I < Rec.Payload.size() ? Rec.Payload[I] : 0;
  };
  switch (Rec.Type) {
  case ExtType::Timestamp:
    LastTs = Payload(0);
    return;
  case ExtType::Sync: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Sync;
    E.Sync = static_cast<SyncKind>(Rec.Inline);
    E.LogicalThreadId = Payload(0);
    E.Sequence = Payload(1);
    E.PeerRuntimeId = Payload(2);
    LastTs = Payload(3);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::Exception: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Exception;
    E.FaultCodeValue = Rec.Inline;
    E.FaultModuleKey = Payload(0);
    E.FaultOffset = static_cast<uint32_t>(Payload(1));
    LastTs = Payload(2);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    applyExceptionTrim(E);
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::ExceptionEnd: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::ExceptionEnd;
    E.FaultCodeValue = Rec.Inline;
    LastTs = Payload(0);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::ThreadStart:
  case ExtType::ThreadEnd: {
    TraceEvent E;
    E.EventKind = Rec.Type == ExtType::ThreadStart
                      ? TraceEvent::Kind::ThreadStart
                      : TraceEvent::Kind::ThreadEnd;
    LastTs = Payload(1);
    E.Timestamp = LastTs;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::TimestampBatch:
    // N batched samples, oldest first — equivalent to N sequential
    // Timestamp records at the flush point.
    if (!Rec.Payload.empty())
      LastTs = Rec.Payload.back();
    return;
  case ExtType::SnapMark:
  case ExtType::Pad:
    return; // Pads exist only to absorb stray lightweight OR bits.
  case ExtType::Telemetry:
    // Telemetry lives in the snap's dedicated stream, never in a thread
    // ring buffer; a TELEMETRY record inside one is corruption — skip it.
    return;
  }
}

void ThreadBuilder::collapseRedundancy(std::vector<TraceEvent> &Evs,
                                       std::vector<uint64_t> &Prov) {
  // Adjacent identical lines are either redundant expansions of one
  // expression split across blocks (merge silently) or genuine repeated
  // executions, e.g. a loop body on one line (merge with a repeat count) —
  // the heuristic of section 4.2: a repeat is recognized by control moving
  // backward or a new trace record starting.
  if (!Legacy) {
    // In-place compaction: events are trivially copyable, and most keep
    // their slot, so no second arena and no per-event copy.
    size_t W = 0;
    for (size_t I = 0; I < Evs.size(); ++I) {
      TraceEvent &E = Evs[I];
      if (E.EventKind == TraceEvent::Kind::Line && W > 0) {
        TraceEvent &P = Evs[W - 1];
        if (P.EventKind == TraceEvent::Kind::Line &&
            P.Module == E.Module && P.File == E.File && P.Line == E.Line &&
            P.Depth == E.Depth) {
          uint64_t PrevProv = Prov[W - 1];
          uint64_t CurProv = Prov[I];
          bool NewRecord = (CurProv >> 32) != (PrevProv >> 32);
          bool Backward = (CurProv & 0xFFFFFFFF) <= (PrevProv & 0xFFFFFFFF);
          if (NewRecord || Backward)
            ++P.Repeat;
          P.BlockFlags |= E.BlockFlags;
          P.Trimmed = E.Trimmed;
          Prov[W - 1] = CurProv;
          continue;
        }
      }
      if (W != I) {
        Evs[W] = E;
        Prov[W] = Prov[I];
      }
      ++W;
    }
    Evs.resize(W);
    Prov.resize(W);
    return;
  }

  std::vector<TraceEvent> Out;
  std::vector<uint64_t> OutProv;
  Out.reserve(Evs.size());
  OutProv.reserve(Prov.size());
  for (size_t I = 0; I < Evs.size(); ++I) {
    TraceEvent &E = Evs[I];
    if (E.EventKind == TraceEvent::Kind::Line && !Out.empty()) {
      TraceEvent &P = Out.back();
      if (P.EventKind == TraceEvent::Kind::Line && P.Module == E.Module &&
          P.File == E.File && P.Line == E.Line && P.Depth == E.Depth) {
        uint64_t PrevProv = OutProv.back();
        uint64_t CurProv = Prov[I];
        bool NewRecord = (CurProv >> 32) != (PrevProv >> 32);
        bool Backward = (CurProv & 0xFFFFFFFF) <= (PrevProv & 0xFFFFFFFF);
        if (NewRecord || Backward)
          ++P.Repeat; // Loop-style repetition.
        // Either way the adjacent duplicate is merged; keep the newest
        // flags so call/ret annotations survive.
        P.BlockFlags |= E.BlockFlags;
        P.Trimmed = E.Trimmed;
        OutProv.back() = CurProv;
        continue;
      }
    }
    Out.push_back(std::move(E));
    OutProv.push_back(Prov[I]);
  }
  Evs = std::move(Out);
  Prov = std::move(OutProv);
}

std::vector<TraceEvent> ThreadBuilder::build(const ThreadSegment &Segment) {
  Events.clear();
  Provenance.clear();
  Depth = 0;
  PendingCall = false;
  LastTs = 0;
  RecordSerial = 0;
  LastDag = LastDagInfo();

  if (!Legacy) {
    // Arena-style reservation: a DAG record expands to a handful of line
    // events, so records*6 absorbs nearly every growth-doubling (an
    // over-estimate only costs transient address space; the collapsed
    // output vector is what the caller keeps).
    Events.reserve(Segment.Records.size() * 6);
    Provenance.reserve(Segment.Records.size() * 6);
  }

  for (const ParsedRecord &R : Segment.Records) {
    if (R.RecordKind == ParsedRecord::Kind::Dag)
      emitDagRecord(R.DagWord);
    else
      emitExt(R.Ext);
  }
  collapseRedundancy(Events, Provenance);
  return std::move(Events);
}

} // namespace

// ----------------------------------------------------------------------------
// Reconstructor.
// ----------------------------------------------------------------------------

Reconstructor::Reconstructor(const MapFileStore &Maps,
                             const ReconstructOptions &Opts,
                             MetricsRegistry *Metrics)
    : Maps(Maps), Opts(Opts) {
  MetricsRegistry &Reg = Metrics ? *Metrics : MetricsRegistry::global();
  M.Snaps = &Reg.counter("reconstruct.snaps");
  M.Records = &Reg.counter("reconstruct.records");
  M.SnapUs = &Reg.histogram("reconstruct.snap_us");
  M.PhaseRecoverUs = &Reg.histogram("reconstruct.phase_recover_us");
  M.PhaseBuildUs = &Reg.histogram("reconstruct.phase_build_us");
  M.PhaseMergeUs = &Reg.histogram("reconstruct.phase_merge_us");
  Cache.attachRegistry(Reg);
}

namespace {
/// Microseconds since \p Since, for the per-phase wall-time histograms.
/// Timing never feeds back into decoding, so metrics cannot perturb the
/// reconstructed bytes.
uint64_t usSince(std::chrono::steady_clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Since)
          .count());
}
} // namespace

ReconstructedTrace Reconstructor::reconstruct(const SnapFile &Snap,
                                              ThreadPool *Pool) const {
  auto SnapStart = std::chrono::steady_clock::now();
  ReconstructedTrace Result;
  const bool Legacy = Opts.legacyUncached();
  DagPathCache *CachePtr =
      (!Legacy && Opts.Cache.Enabled) ? &Cache : nullptr;
  if (Legacy)
    Pool = nullptr; // The baseline is strictly single-threaded.

  M.Snaps->add();
  if (Opts.Render.DecodeTelemetry && !Snap.Telemetry.empty()) {
    std::string Json;
    if (decodeTelemetryRecords(Snap.Telemetry, Json))
      Result.TelemetryJson = std::move(Json);
    else
      Result.Warnings.push_back("snap telemetry stream is torn; ignored");
  }

  // Phase 1: recover each buffer's per-thread record segments. Buffers
  // are independent; results land in slots indexed by buffer.
  auto PhaseStart = std::chrono::steady_clock::now();
  struct BufferWork {
    std::vector<ThreadSegment> Segments;
    std::vector<std::string> Warnings;
  };
  std::vector<BufferWork> Recovered(Snap.Buffers.size());
  parallelForIndex(Pool, Snap.Buffers.size(), [&](size_t I) {
    Recovered[I].Segments = recoverBufferRecords(
        Snap.Buffers[I], Snap.Threads, Recovered[I].Warnings);
  });
  M.PhaseRecoverUs->observe(usSince(PhaseStart));

  // Phase 2: build each non-empty segment's events. Segments are
  // flattened in (buffer, segment) order so the later merge is a linear
  // walk in that same order.
  PhaseStart = std::chrono::steady_clock::now();
  struct SegmentTask {
    const ThreadSegment *Seg = nullptr;
    ThreadTrace Trace;
    std::vector<std::string> Warnings;
    bool Keep = false;
  };
  std::vector<SegmentTask> Tasks;
  for (BufferWork &B : Recovered)
    for (ThreadSegment &Seg : B.Segments)
      if (!Seg.Records.empty()) {
        SegmentTask T;
        T.Seg = &Seg;
        Tasks.push_back(std::move(T));
      }
  parallelForIndex(Pool, Tasks.size(), [&](size_t I) {
    SegmentTask &T = Tasks[I];
    const ThreadSegment &Seg = *T.Seg;
    ThreadBuilder Builder(Snap, Maps, T.Warnings, CachePtr, Legacy);
    ThreadTrace TT;
    TT.RuntimeId = Snap.RuntimeId;
    TT.ThreadId = Seg.ThreadId;
    TT.ProcessName = Snap.ProcessName;
    TT.MachineName = Snap.MachineName;
    TT.Tech = Snap.Tech;
    TT.Truncated = Seg.Truncated;
    if (Seg.TruncatedAt != SIZE_MAX)
      TT.TruncatedAt = Seg.TruncatedAt;
    TT.Events = Builder.build(Seg);
    // Keep torn-but-empty traces: the TruncatedAt marker itself is the
    // diagnosis ("this thread's history was cut here").
    T.Keep = !TT.Events.empty() || TT.TruncatedAt != UINT64_MAX;
    T.Trace = std::move(TT);
  });
  M.PhaseBuildUs->observe(usSince(PhaseStart));
  uint64_t RecordCount = 0;
  for (const SegmentTask &T : Tasks)
    RecordCount += T.Seg->Records.size();
  M.Records->add(RecordCount);

  // Deterministic merge: warnings and threads in (buffer, segment)
  // order, exactly as the serial single-pass reconstructor emitted them.
  PhaseStart = std::chrono::steady_clock::now();
  size_t NextTask = 0;
  for (BufferWork &B : Recovered) {
    for (std::string &W : B.Warnings)
      Result.Warnings.push_back(std::move(W));
    for (ThreadSegment &Seg : B.Segments) {
      if (Seg.Records.empty())
        continue;
      SegmentTask &T = Tasks[NextTask++];
      assert(T.Seg == &Seg && "merge order out of sync");
      for (std::string &W : T.Warnings)
        Result.Warnings.push_back(std::move(W));
      if (T.Keep)
        Result.Threads.push_back(std::move(T.Trace));
    }
  }
  M.PhaseMergeUs->observe(usSince(PhaseStart));
  M.SnapUs->observe(usSince(SnapStart));
  return Result;
}
