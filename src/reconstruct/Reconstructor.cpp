//===- reconstruct/Reconstructor.cpp - Trace reconstruction ---------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/Reconstructor.h"

#include "reconstruct/RecordRecovery.h"
#include "support/Text.h"

#include <algorithm>
#include <cassert>

using namespace traceback;

void MapFileStore::add(MapFile Map) {
  Index[Map.Checksum.low64()] = Maps.size();
  Maps.push_back(std::move(Map));
}

const MapFile *MapFileStore::byChecksum(const MD5Digest &Digest) const {
  return byKey(Digest.low64());
}

const MapFile *MapFileStore::byKey(uint64_t ChecksumLow64) const {
  auto It = Index.find(ChecksumLow64);
  return It == Index.end() ? nullptr : &Maps[It->second];
}

// ----------------------------------------------------------------------------
// DAG path decoding.
// ----------------------------------------------------------------------------

std::vector<uint16_t> traceback::decodeDagPath(const MapDag &Dag,
                                               uint32_t PathBits) {
  if (Dag.Blocks.empty())
    return {};

  // Depth-first search for the root path whose bit-set equals PathBits.
  // DAGs are tiny (<= 1 header + PathBitCount bit blocks + implied
  // blocks), so exhaustive search is cheap.
  std::vector<uint16_t> Path;
  std::vector<uint16_t> Stack;

  struct Searcher {
    const MapDag &Dag;
    uint32_t Target;
    std::vector<uint16_t> Best;

    bool dfs(uint16_t Cur, uint32_t Used, std::vector<uint16_t> &Acc) {
      if (Used == Target) {
        Best = Acc;
        return true;
      }
      const MapBlock &B = Dag.Blocks[Cur];
      for (uint16_t S : B.Succs) {
        const MapBlock &SB = Dag.Blocks[S];
        if (SB.BitIndex >= 0) {
          uint32_t Bit = 1u << SB.BitIndex;
          if ((Target & Bit) && !(Used & Bit)) {
            Acc.push_back(S);
            if (dfs(S, Used | Bit, Acc))
              return true;
            Acc.pop_back();
          }
        } else if (B.Succs.size() == 1) {
          // Implied block: execution is certain if the predecessor ran.
          Acc.push_back(S);
          if (dfs(S, Used, Acc))
            return true;
          Acc.pop_back();
        }
      }
      return false;
    }
  };

  Searcher S{Dag, PathBits, {}};
  std::vector<uint16_t> Acc{0};
  if (!S.dfs(0, 0, Acc))
    return {}; // Bits inconsistent with the DAG shape: corrupted record.

  Path = S.Best;
  // Extend through forced single-successor no-bit chains: those blocks ran
  // if control left the last bit block normally.
  for (;;) {
    const MapBlock &Last = Dag.Blocks[Path.back()];
    if (Last.Succs.size() != 1)
      break;
    const MapBlock &Next = Dag.Blocks[Last.Succs[0]];
    if (Next.BitIndex >= 0)
      break; // Unset bit: execution stopped or left the DAG here.
    // Guard against malformed cyclic map data.
    if (std::find(Path.begin(), Path.end(), Last.Succs[0]) != Path.end())
      break;
    Path.push_back(Last.Succs[0]);
  }
  return Path;
}

// ----------------------------------------------------------------------------
// Event emission.
// ----------------------------------------------------------------------------

namespace {

/// Builder state for one thread's events.
class ThreadBuilder {
public:
  ThreadBuilder(const SnapFile &Snap, const MapFileStore &Maps,
                std::vector<std::string> &Warnings)
      : Snap(Snap), Maps(Maps), Warnings(Warnings) {}

  std::vector<TraceEvent> build(const ThreadSegment &Segment);

private:
  void emitDagRecord(uint32_t Word);
  void emitExt(const ExtRecord &Rec);
  void applyExceptionTrim(const TraceEvent &Exc);
  void collapseRedundancy(std::vector<TraceEvent> &Events,
                          std::vector<uint64_t> &Provenance);

  const SnapModuleInfo *moduleForDagId(uint32_t DagId) const;

  const SnapFile &Snap;
  const MapFileStore &Maps;
  std::vector<std::string> &Warnings;

  std::vector<TraceEvent> Events;
  /// Per event: (record serial << 32) | block start offset — provenance
  /// for the redundancy-vs-repetition heuristic.
  std::vector<uint64_t> Provenance;

  uint32_t Depth = 0;
  bool PendingCall = false;
  uint64_t LastTs = 0;
  uint64_t RecordSerial = 0;

  /// Info about the most recent DAG record, for exception trimming.
  struct LastDagInfo {
    bool Valid = false;
    uint64_t ModuleKey = 0;
    const MapFile *Map = nullptr;
    const MapDag *Dag = nullptr;
    std::vector<uint16_t> Path;
    /// For each path position: index of its first Line event in Events.
    std::vector<size_t> FirstEvent;
  } LastDag;
};

const SnapModuleInfo *ThreadBuilder::moduleForDagId(uint32_t DagId) const {
  // Prefer live modules; fall back to unloaded ones whose stale records
  // may survive in the ring.
  const SnapModuleInfo *Fallback = nullptr;
  for (const SnapModuleInfo &M : Snap.Modules) {
    if (!M.Instrumented || M.DagIdCount == 0)
      continue;
    if (DagId < M.DagIdBase || DagId >= M.DagIdBase + M.DagIdCount)
      continue;
    if (!M.Unloaded)
      return &M;
    Fallback = &M;
  }
  return Fallback;
}

void ThreadBuilder::emitDagRecord(uint32_t Word) {
  ++RecordSerial;
  LastDag = LastDagInfo();
  uint32_t DagId = dagIdOfRecord(Word);
  uint32_t Bits = pathBitsOfRecord(Word);

  auto EmitUntraced = [&](const std::string &Why) {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Untraced;
    E.Module = Why;
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(RecordSerial << 32);
    PendingCall = false;
  };

  if (DagId == BadDagId) {
    EmitUntraced("<bad-dag module>");
    return;
  }
  const SnapModuleInfo *Mod = moduleForDagId(DagId);
  if (!Mod) {
    Warnings.push_back(
        formatv("dag id %u matches no module in the snap metadata", DagId));
    EmitUntraced("<unknown module>");
    return;
  }
  const MapFile *Map = Maps.byChecksum(Mod->Checksum);
  if (!Map) {
    Warnings.push_back(formatv("no mapfile for module %s (checksum %s)",
                               Mod->Name.c_str(),
                               Mod->Checksum.toHex().c_str()));
    EmitUntraced("<no mapfile: " + Mod->Name + ">");
    return;
  }
  // The mapfile stores DAGs by instrumentation-time relative id; the snap
  // metadata gives the module's actual (post-rebase) base.
  const MapDag *Dag = Map->dagByRelId(DagId - Mod->DagIdBase);
  if (!Dag) {
    Warnings.push_back(formatv("module %s has no dag %u", Mod->Name.c_str(),
                               DagId - Mod->DagIdBase));
    EmitUntraced("<bad dag id>");
    return;
  }

  std::vector<uint16_t> Path = decodeDagPath(*Dag, Bits);
  if (Path.empty()) {
    Warnings.push_back(
        formatv("module %s dag %u: path bits 0x%x do not decode",
                Mod->Name.c_str(), DagId - Mod->DagIdBase, Bits));
    EmitUntraced("<undecodable path>");
    return;
  }

  LastDag.Valid = true;
  LastDag.ModuleKey = Mod->Checksum.low64();
  LastDag.Map = Map;
  LastDag.Dag = Dag;
  LastDag.Path = Path;

  for (uint16_t BI : Path) {
    const MapBlock &B = Dag->Blocks[BI];
    LastDag.FirstEvent.push_back(Events.size());
    if ((B.Flags & MBF_FuncEntry) && PendingCall)
      ++Depth;
    PendingCall = false;
    for (const MapLine &L : B.Lines) {
      TraceEvent E;
      E.EventKind = TraceEvent::Kind::Line;
      E.Module = Mod->Name;
      E.File = Map->fileName(L.FileIndex);
      E.Function = B.Function;
      E.Line = L.Line;
      E.BlockFlags = B.Flags;
      E.Depth = Depth;
      E.Timestamp = LastTs;
      Events.push_back(std::move(E));
      Provenance.push_back((RecordSerial << 32) | B.StartOffset);
    }
    if (B.Flags & MBF_EndsInRet) {
      if (Depth > 0)
        --Depth;
    }
    if (B.Flags & MBF_EndsInCall)
      PendingCall = true;
  }
}

void ThreadBuilder::applyExceptionTrim(const TraceEvent &Exc) {
  // Trim the lines of the most recent DAG record using the exception
  // address (section 4.2). An address outside the path's blocks means the
  // fault happened in a callee (possibly uninstrumented); the trace then
  // correctly stops at the block that ends in the call.
  if (!LastDag.Valid || Exc.FaultModuleKey != LastDag.ModuleKey)
    return;
  uint32_t Off = Exc.FaultOffset;
  for (size_t PI = 0; PI < LastDag.Path.size(); ++PI) {
    const MapBlock &B = LastDag.Dag->Blocks[LastDag.Path[PI]];
    if (Off < B.StartOffset || Off >= B.EndOffset)
      continue;
    // Drop events of later path blocks.
    size_t CutFrom = PI + 1 < LastDag.FirstEvent.size()
                         ? LastDag.FirstEvent[PI + 1]
                         : Events.size();
    // Within the faulting block, drop lines that start after the fault.
    size_t BlockFirst = LastDag.FirstEvent[PI];
    for (size_t EI = BlockFirst; EI < CutFrom; ++EI) {
      // Line events only; provenance low bits hold the block start.
      const MapLine *Found = nullptr;
      for (const MapLine &L : B.Lines)
        if (L.Line == Events[EI].Line && L.StartOffset > Off)
          Found = &L;
      if (Found) {
        CutFrom = EI;
        break;
      }
    }
    if (CutFrom < Events.size()) {
      Events.resize(CutFrom);
      Provenance.resize(CutFrom);
    }
    if (!Events.empty() &&
        Events.back().EventKind == TraceEvent::Kind::Line)
      Events.back().Trimmed = true;
    LastDag.Valid = false;
    return;
  }
}

void ThreadBuilder::emitExt(const ExtRecord &Rec) {
  auto Payload = [&](size_t I) {
    return I < Rec.Payload.size() ? Rec.Payload[I] : 0;
  };
  switch (Rec.Type) {
  case ExtType::Timestamp:
    LastTs = Payload(0);
    return;
  case ExtType::Sync: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Sync;
    E.Sync = static_cast<SyncKind>(Rec.Inline);
    E.LogicalThreadId = Payload(0);
    E.Sequence = Payload(1);
    E.PeerRuntimeId = Payload(2);
    LastTs = Payload(3);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::Exception: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Exception;
    E.FaultCodeValue = Rec.Inline;
    E.FaultModuleKey = Payload(0);
    E.FaultOffset = static_cast<uint32_t>(Payload(1));
    LastTs = Payload(2);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    applyExceptionTrim(E);
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::ExceptionEnd: {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::ExceptionEnd;
    E.FaultCodeValue = Rec.Inline;
    LastTs = Payload(0);
    E.Timestamp = LastTs;
    E.Depth = Depth;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::ThreadStart:
  case ExtType::ThreadEnd: {
    TraceEvent E;
    E.EventKind = Rec.Type == ExtType::ThreadStart
                      ? TraceEvent::Kind::ThreadStart
                      : TraceEvent::Kind::ThreadEnd;
    LastTs = Payload(1);
    E.Timestamp = LastTs;
    Events.push_back(std::move(E));
    Provenance.push_back(0);
    return;
  }
  case ExtType::SnapMark:
  case ExtType::Pad:
    return; // Pads exist only to absorb stray lightweight OR bits.
  }
}

void ThreadBuilder::collapseRedundancy(std::vector<TraceEvent> &Evs,
                                       std::vector<uint64_t> &Prov) {
  // Adjacent identical lines are either redundant expansions of one
  // expression split across blocks (merge silently) or genuine repeated
  // executions, e.g. a loop body on one line (merge with a repeat count) —
  // the heuristic of section 4.2: a repeat is recognized by control moving
  // backward or a new trace record starting.
  std::vector<TraceEvent> Out;
  std::vector<uint64_t> OutProv;
  for (size_t I = 0; I < Evs.size(); ++I) {
    TraceEvent &E = Evs[I];
    if (E.EventKind == TraceEvent::Kind::Line && !Out.empty()) {
      TraceEvent &P = Out.back();
      if (P.EventKind == TraceEvent::Kind::Line && P.Module == E.Module &&
          P.File == E.File && P.Line == E.Line && P.Depth == E.Depth) {
        uint64_t PrevProv = OutProv.back();
        uint64_t CurProv = Prov[I];
        bool NewRecord = (CurProv >> 32) != (PrevProv >> 32);
        bool Backward = (CurProv & 0xFFFFFFFF) <= (PrevProv & 0xFFFFFFFF);
        if (NewRecord || Backward)
          ++P.Repeat; // Loop-style repetition.
        // Either way the adjacent duplicate is merged; keep the newest
        // flags so call/ret annotations survive.
        P.BlockFlags |= E.BlockFlags;
        P.Trimmed = E.Trimmed;
        OutProv.back() = CurProv;
        continue;
      }
    }
    Out.push_back(std::move(E));
    OutProv.push_back(Prov[I]);
  }
  Evs = std::move(Out);
  Prov = std::move(OutProv);
}

std::vector<TraceEvent> ThreadBuilder::build(const ThreadSegment &Segment) {
  Events.clear();
  Provenance.clear();
  Depth = 0;
  PendingCall = false;
  LastTs = 0;
  LastDag = LastDagInfo();

  for (const ParsedRecord &R : Segment.Records) {
    if (R.RecordKind == ParsedRecord::Kind::Dag)
      emitDagRecord(R.DagWord);
    else
      emitExt(R.Ext);
  }
  collapseRedundancy(Events, Provenance);
  return std::move(Events);
}

} // namespace

// ----------------------------------------------------------------------------
// Reconstructor.
// ----------------------------------------------------------------------------

ReconstructedTrace Reconstructor::reconstruct(const SnapFile &Snap) const {
  ReconstructedTrace Result;

  for (const SnapBufferImage &Buffer : Snap.Buffers) {
    std::vector<ThreadSegment> Segments =
        recoverBufferRecords(Buffer, Snap.Threads, Result.Warnings);
    for (const ThreadSegment &Seg : Segments) {
      if (Seg.Records.empty())
        continue;
      ThreadBuilder Builder(Snap, Maps, Result.Warnings);
      ThreadTrace TT;
      TT.RuntimeId = Snap.RuntimeId;
      TT.ThreadId = Seg.ThreadId;
      TT.ProcessName = Snap.ProcessName;
      TT.MachineName = Snap.MachineName;
      TT.Tech = Snap.Tech;
      TT.Truncated = Seg.Truncated;
      if (Seg.TruncatedAt != SIZE_MAX)
        TT.TruncatedAt = Seg.TruncatedAt;
      TT.Events = Builder.build(Seg);
      // Keep torn-but-empty traces: the TruncatedAt marker itself is the
      // diagnosis ("this thread's history was cut here").
      if (!TT.Events.empty() || TT.TruncatedAt != UINT64_MAX)
        Result.Threads.push_back(std::move(TT));
    }
  }
  return Result;
}
