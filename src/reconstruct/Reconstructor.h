//===- reconstruct/Reconstructor.h - Trace reconstruction ------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage two of reconstruction (paper sections 4.1–4.2): resolve each DAG
/// record to its module via the snap's DAG-range metadata, decode the path
/// bits into a block sequence using the mapfile, expand blocks into source
/// lines, trim at exception addresses, collapse redundant adjacent lines,
/// and rebuild the call hierarchy from the block annotations.
///
/// At deployment scale the reconstructor is the hot path (group snaps
/// arrive from thousands of machines), so this stage is built as a batch
/// pipeline: a memoized DAG-path decode cache shared across records,
/// buffers and snaps; flat-hash indices for mapfile and module-range
/// resolution; and optional fan-out of independent buffers and thread
/// segments over a fixed-size thread pool with a deterministic merge
/// order — output is byte-identical whatever the worker count.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H
#define TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H

#include "instrument/MapFile.h"
#include "reconstruct/DecodeCache.h"
#include "reconstruct/Trace.h"
#include "runtime/Snap.h"
#include "support/FlatMap.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace traceback {

/// Holds the mapfiles reconstruction may need, keyed by module checksum
/// (the matching rule of paper section 2.3).
class MapFileStore {
public:
  /// Registers a mapfile. A duplicate checksum replaces the previous
  /// mapfile (last add wins — re-instrumenting a module produces the
  /// same checksum, so the newest registration is authoritative) and
  /// reports the replacement through \p Warning when provided. Returns
  /// true when the checksum was new.
  bool add(MapFile Map, std::string *Warning = nullptr);

  /// Loads one .tbmap directly into the store: the file is read into an
  /// exact-size buffer, parsed, and the buffer discarded before the next
  /// file is touched. Bulk gather loops stream through this one file at a
  /// time instead of materializing a whole directory of byte buffers.
  /// Returns false (store unchanged) on a read or parse failure.
  bool addFromFile(const std::string &Path, std::string *Warning = nullptr);

  const MapFile *byChecksum(const MD5Digest &Digest) const;
  const MapFile *byKey(uint64_t ChecksumLow64) const;

  size_t size() const { return Maps.size(); }
  const std::vector<MapFile> &all() const { return Maps; }

  /// Estimated heap bytes held by the registered mapfiles. Also published
  /// to the process-global `store.bytes_resident` gauge (shared with
  /// SignatureStore) so tracer-health snapshots show how much memory the
  /// always-resident lookup stores cost.
  uint64_t residentBytes() const { return ResidentBytes; }

private:
  void accountResident(int64_t Delta);

  std::vector<MapFile> Maps;
  FlatMap64<size_t> Index; ///< Checksum low word -> slot in Maps.
  uint64_t ResidentBytes = 0;
};

/// Decodes the path a DAG record describes. Returns the DAG-local block
/// indices in execution order (starting with the header, block 0), or an
/// empty vector if \p PathBits is inconsistent with the DAG shape
/// (corruption). In a DAG, a path is uniquely determined by its set of
/// bit-carrying blocks; blocks whose execution is implied (single
/// successor chains) are filled in. The walk is an explicit-stack
/// iterative search hardened against fuzzed mapfiles: out-of-range
/// successors are ignored and paths longer than the block count (only
/// possible with cyclic, i.e. corrupt, map data) fail the decode instead
/// of overflowing the stack.
std::vector<uint16_t> decodeDagPath(const MapDag &Dag, uint32_t PathBits);

/// Tuning knobs for reconstruction, grouped by concern so new knobs land
/// in the right sub-struct instead of widening one flat bag.
// The pragma covers the whole struct: the deprecated flat alias below is
// referenced by the implicitly-defined special members (via its default
// member initializer), which GCC attributes to the struct declaration.
// External assignments to the alias still warn at their own use sites.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
struct ReconstructOptions {
  struct CacheOptions {
    /// Memoize DAG-path decoding in a cache shared across records,
    /// buffers and snaps. Purely an optimization: output is identical
    /// either way.
    bool Enabled = true;
    /// Reproduces the original single-pass reconstructor: per-record
    /// linear module scan, per-record mapfile lookup, fresh DFS for every
    /// record, no arena reservations. Kept as the benchmark baseline
    /// (bench_reconstruct measures the pipeline against it).
    bool LegacyUncached = false;
  };
  struct ParallelOptions {
    /// Worker count batch drivers should use (<= 0 = hardware threads).
    /// reconstruct() itself takes an explicit pool; this is the knob the
    /// tool/bench layer sizes that pool from.
    int Jobs = 1;
  };
  struct RenderOptions {
    /// Render the call hierarchy as an indented tree (tool layer).
    bool Tree = false;
    /// Decode the snap's embedded TELEMETRY stream into
    /// ReconstructedTrace::TelemetryJson.
    bool DecodeTelemetry = true;
  };

  CacheOptions Cache;
  ParallelOptions Parallel;
  RenderOptions Render;

  /// Pre-regroup spelling of Cache.LegacyUncached; OR-ed into the
  /// effective value so existing callers keep working for one release.
  [[deprecated("use Cache.LegacyUncached instead")]] bool LegacyUncached =
      false;

  /// The value reconstruction actually honors (either spelling wins).
  bool legacyUncached() const { return Cache.LegacyUncached || LegacyUncached; }
};
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Turns snaps into per-thread line traces.
class Reconstructor {
public:
  /// \p Metrics receives the "reconstruct." instrument family (snap count,
  /// record throughput, per-phase wall time, cache hit/miss); null = the
  /// process-global registry.
  explicit Reconstructor(const MapFileStore &Maps,
                         MetricsRegistry *Metrics = nullptr)
      : Reconstructor(Maps, ReconstructOptions(), Metrics) {}
  Reconstructor(const MapFileStore &Maps, const ReconstructOptions &Opts,
                MetricsRegistry *Metrics = nullptr);

  /// Reconstructs one snap. With a non-null \p Pool, buffer recovery and
  /// thread-segment building fan out across its workers; results are
  /// merged in (buffer, segment) order, so the trace and its warnings are
  /// byte-identical to a serial run. Do not pass a pool whose workers
  /// call back into reconstruct() (one fan-out level per pool).
  ReconstructedTrace reconstruct(const SnapFile &Snap,
                                 ThreadPool *Pool = nullptr) const;

  /// Decode-cache statistics (shared across every snap this instance
  /// reconstructed).
  const DagPathCache &pathCache() const { return Cache; }

private:
  const MapFileStore &Maps;
  ReconstructOptions Opts;
  /// The memoized decode cache. Mutable: caching is invisible in the
  /// results, and sharing it across const reconstruct() calls is the
  /// point (batch mode reuses one Reconstructor for a whole directory).
  mutable DagPathCache Cache;

  /// "reconstruct." instruments, resolved once at construction.
  struct Instruments {
    Counter *Snaps = nullptr;
    Counter *Records = nullptr;
    Histogram *SnapUs = nullptr;
    Histogram *PhaseRecoverUs = nullptr;
    Histogram *PhaseBuildUs = nullptr;
    Histogram *PhaseMergeUs = nullptr;
  };
  Instruments M;
};

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H
