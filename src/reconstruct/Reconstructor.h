//===- reconstruct/Reconstructor.h - Trace reconstruction ------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage two of reconstruction (paper sections 4.1–4.2): resolve each DAG
/// record to its module via the snap's DAG-range metadata, decode the path
/// bits into a block sequence using the mapfile, expand blocks into source
/// lines, trim at exception addresses, collapse redundant adjacent lines,
/// and rebuild the call hierarchy from the block annotations.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H
#define TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H

#include "instrument/MapFile.h"
#include "reconstruct/Trace.h"
#include "runtime/Snap.h"

#include <map>
#include <string>
#include <vector>

namespace traceback {

/// Holds the mapfiles reconstruction may need, keyed by module checksum
/// (the matching rule of paper section 2.3).
class MapFileStore {
public:
  void add(MapFile Map);

  const MapFile *byChecksum(const MD5Digest &Digest) const;
  const MapFile *byKey(uint64_t ChecksumLow64) const;

  size_t size() const { return Maps.size(); }
  const std::vector<MapFile> &all() const { return Maps; }

private:
  std::vector<MapFile> Maps;
  std::map<uint64_t, size_t> Index;
};

/// Decodes the path a DAG record describes. Returns the DAG-local block
/// indices in execution order (starting with the header, block 0), or an
/// empty vector if \p PathBits is inconsistent with the DAG shape
/// (corruption). In a DAG, a path is uniquely determined by its set of
/// bit-carrying blocks; blocks whose execution is implied (single
/// successor chains) are filled in.
std::vector<uint16_t> decodeDagPath(const MapDag &Dag, uint32_t PathBits);

/// Turns one snap into per-thread line traces.
class Reconstructor {
public:
  explicit Reconstructor(const MapFileStore &Maps) : Maps(Maps) {}

  ReconstructedTrace reconstruct(const SnapFile &Snap) const;

private:
  const MapFileStore &Maps;
};

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_RECONSTRUCTOR_H
