//===- reconstruct/Views.cpp - Trace display rendering --------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/Views.h"

#include "instrument/MapFile.h"
#include "support/Text.h"
#include "vm/Fault.h"

using namespace traceback;

namespace {
std::string describeFault(uint16_t Code) {
  if (Code & 0x8000)
    return formatv("signal %u", Code & 0xFFF);
  return faultCodeName(static_cast<FaultCode>(Code));
}

std::string syncKindName(SyncKind K) {
  switch (K) {
  case SyncKind::CallSend:
    return "call ->";
  case SyncKind::CallRecv:
    return "-> enter";
  case SyncKind::ReplySend:
    return "exit ->";
  case SyncKind::ReplyRecv:
    return "-> return";
  }
  return "?";
}

std::string eventOneLiner(const TraceEvent &E) {
  switch (E.EventKind) {
  case TraceEvent::Kind::Line: {
    std::string S = formatv("%-14s %s:%u  %s", E.Module.c_str(),
                            E.File.c_str(), E.Line, E.Function.c_str());
    if (E.Repeat > 1)
      S += formatv("  (x%u)", E.Repeat);
    if (E.Trimmed)
      S += "  <- partial";
    return S;
  }
  case TraceEvent::Kind::Exception:
    return formatv("*** exception: %s", describeFault(E.FaultCodeValue).c_str());
  case TraceEvent::Kind::ExceptionEnd:
    return formatv("*** resumed after %s",
                   describeFault(E.FaultCodeValue).c_str());
  case TraceEvent::Kind::Sync:
    return formatv("[sync %s logical=%llx seq=%llu]",
                   syncKindName(E.Sync).c_str(),
                   static_cast<unsigned long long>(E.LogicalThreadId),
                   static_cast<unsigned long long>(E.Sequence));
  case TraceEvent::Kind::ThreadStart:
    return "[thread start]";
  case TraceEvent::Kind::ThreadEnd:
    return "[thread end]";
  case TraceEvent::Kind::Untraced:
    return formatv("[untraced: %s]", E.Module.c_str());
  }
  return "?";
}
} // namespace

std::string traceback::renderFlatTrace(const ThreadTrace &Trace) {
  std::string Out = formatv("thread %llu on %s/%s%s\n",
                            static_cast<unsigned long long>(Trace.ThreadId),
                            Trace.MachineName.c_str(),
                            Trace.ProcessName.c_str(),
                            Trace.Truncated ? " (older history overwritten)"
                                            : "");
  for (const TraceEvent &E : Trace.Events)
    Out += "  " + eventOneLiner(E) + "\n";
  if (Trace.TruncatedAt != UINT64_MAX)
    Out += formatv("  <torn write: newer history lost at word %llu>\n",
                   static_cast<unsigned long long>(Trace.TruncatedAt));
  return Out;
}

std::string traceback::renderCallTree(const ThreadTrace &Trace) {
  std::string Out = formatv("thread %llu call tree\n",
                            static_cast<unsigned long long>(Trace.ThreadId));
  for (const TraceEvent &E : Trace.Events) {
    std::string Indent(static_cast<size_t>(E.Depth) * 2, ' ');
    std::string Marker;
    if (E.EventKind == TraceEvent::Kind::Line) {
      if (E.BlockFlags & MBF_FuncEntry)
        Marker = "+ ";
      else if (E.BlockFlags & MBF_EndsInRet)
        Marker = "^ ";
    }
    Out += "  " + Indent + Marker + eventOneLiner(E) + "\n";
  }
  return Out;
}

std::string traceback::renderMultiThread(
    const std::vector<const ThreadTrace *> &Traces) {
  std::string Out;
  // Reuse the stitcher's skew-corrected timeline merge.
  ReconstructedTrace Holder;
  for (const ThreadTrace *T : Traces)
    Holder.Threads.push_back(*T); // Copy so the stitcher has stable refs.
  DistributedStitcher S;
  S.addTrace(Holder);
  auto Timeline = S.mergeTimeline();
  for (const auto &Entry : Timeline) {
    const TraceEvent &E = Entry.Trace->Events[Entry.EventIndex];
    Out += formatv("t%-3llu |%*s%s\n",
                   static_cast<unsigned long long>(Entry.Trace->ThreadId), 0,
                   "", eventOneLiner(E).c_str());
  }
  return Out;
}

std::string traceback::renderLogicalThread(const LogicalThread &LT) {
  std::string Out =
      formatv("logical thread %llx\n",
              static_cast<unsigned long long>(LT.LogicalId));
  for (const LogicalSegment &Seg : LT.Segments) {
    Out += formatv("-- on %s/%s thread %llu --\n",
                   Seg.Trace->MachineName.c_str(),
                   Seg.Trace->ProcessName.c_str(),
                   static_cast<unsigned long long>(Seg.Trace->ThreadId));
    for (size_t I = Seg.Begin; I < Seg.End && I < Seg.Trace->Events.size();
         ++I)
      Out += "  " + eventOneLiner(Seg.Trace->Events[I]) + "\n";
  }
  return Out;
}

std::string traceback::renderFaultView(const SnapFile &Snap,
                                       const ReconstructedTrace &Trace) {
  std::string Out = formatv("snap: %s (detail %u) from %s/%s\n",
                            snapReasonName(Snap.Reason).c_str(),
                            Snap.ReasonDetail, Snap.MachineName.c_str(),
                            Snap.ProcessName.c_str());

  if (Snap.Reason == SnapReason::Hang || Snap.Reason == SnapReason::External) {
    // Deadlock-style snap: one line per thread, the most recent source
    // line each thread executed (section 4.3.3).
    for (const ThreadTrace &T : Trace.Threads) {
      const TraceEvent *LastLine = nullptr;
      for (const TraceEvent &E : T.Events)
        if (E.EventKind == TraceEvent::Kind::Line)
          LastLine = &E;
      Out += formatv("  thread %llu: %s\n",
                     static_cast<unsigned long long>(T.ThreadId),
                     LastLine ? eventOneLiner(*LastLine).c_str()
                              : "<no trace>");
    }
    return Out;
  }

  // Exception-style snap: the faulting thread's call tree, fault
  // highlighted.
  const ThreadTrace *Faulting = Trace.threadById(Snap.FaultThread);
  if (!Faulting && !Trace.Threads.empty())
    Faulting = &Trace.Threads.front();
  if (!Faulting)
    return Out + "  <no thread traces recovered>\n";
  std::string Tree = renderCallTree(*Faulting);
  Out += Tree;
  Out += formatv("=> fault: %s\n",
                 describeFault(Snap.FaultCodeValue).c_str());
  return Out;
}

std::string traceback::renderMemoryDump(const SnapFile &Snap) {
  std::string Out;
  if (Snap.Memory.empty())
    return "<no memory captured; enable capture_memory in the policy>\n";
  for (const SnapMemoryRegion &R : Snap.Memory) {
    Out += formatv("region %s @ 0x%llx (%zu bytes)\n", R.Label.c_str(),
                   static_cast<unsigned long long>(R.Base), R.Bytes.size());
    for (size_t I = 0; I < R.Bytes.size(); I += 16) {
      Out += formatv("  %08llx:",
                     static_cast<unsigned long long>(R.Base + I));
      for (size_t J = I; J < I + 16 && J < R.Bytes.size(); ++J)
        Out += formatv(" %02x", R.Bytes[J]);
      Out += "\n";
    }
  }
  return Out;
}
