//===- reconstruct/DecodeCache.h - Memoized DAG-path decoding ---*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes `decodeDagPath` results across trace records. Real traces
/// are dominated by a small set of hot (DAG, path-bits) pairs — the same
/// redundancy observation that motivates the paper's adjacent-line
/// collapse (section 4.2) — so after first sight a record's block path
/// is a single hash lookup instead of an exhaustive DAG walk.
///
/// Keys are content-addressed: (module checksum low word, DAG relative
/// id, path bits). A checksum identifies the mapfile bytes (section
/// 2.3), so entries stay valid across snaps, buffers and batch runs, and
/// the cache can be shared by concurrent reconstruction workers. Sharded
/// locking keeps contention negligible; values are shared_ptrs so a hit
/// never copies the path.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_DECODECACHE_H
#define TRACEBACK_RECONSTRUCT_DECODECACHE_H

#include "instrument/MapFile.h"
#include "support/FlatMap.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace traceback {

/// A decoded DAG path, shared between the cache and its users. Empty
/// paths (undecodable bits, i.e. corrupt records) are cached too — a
/// corrupt hot record is as repetitive as a healthy one.
using SharedDagPath = std::shared_ptr<const std::vector<uint16_t>>;

class DagPathCache {
public:
  /// Returns the decoded path of (\p ModuleKey, \p Dag.RelId, \p
  /// PathBits), decoding and inserting on first sight. Thread-safe.
  SharedDagPath decode(uint64_t ModuleKey, const MapDag &Dag,
                       uint32_t PathBits);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Mirrors hit/miss counts into \p Reg as "reconstruct.cache_hits" /
  /// "reconstruct.cache_misses" (in addition to the local atomics, which
  /// stay authoritative for pathCache() consumers).
  void attachRegistry(MetricsRegistry &Reg) {
    HitCounter = &Reg.counter("reconstruct.cache_hits");
    MissCounter = &Reg.counter("reconstruct.cache_misses");
  }

private:
  struct Key {
    uint64_t ModuleKey = 0;
    uint32_t RelId = 0;
    uint32_t PathBits = 0;
    bool operator==(const Key &O) const {
      return ModuleKey == O.ModuleKey && RelId == O.RelId &&
             PathBits == O.PathBits;
    }
  };
  struct KeyHasher {
    uint64_t operator()(const Key &K) const {
      return hashCombine(hashU64(K.ModuleKey),
                         hashU64((uint64_t(K.RelId) << 32) | K.PathBits));
    }
  };

  static constexpr size_t ShardCount = 16;
  struct Shard {
    std::mutex M;
    FlatMap<Key, SharedDagPath, KeyHasher> Map;
  };
  Shard Shards[ShardCount];
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  Counter *HitCounter = nullptr;
  Counter *MissCounter = nullptr;
};

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_DECODECACHE_H
