//===- reconstruct/RecordRecovery.cpp - Raw record recovery ---------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/RecordRecovery.h"

#include "support/Text.h"

using namespace traceback;

std::vector<uint32_t>
traceback::linearizeRing(const std::vector<uint32_t> &Words,
                         size_t FrontierIdx) {
  std::vector<uint32_t> Out;
  Out.reserve(Words.size());
  auto Take = [&](size_t I) {
    uint32_t W = Words[I];
    if (W != SentinelRecord)
      Out.push_back(W);
  };
  for (size_t I = FrontierIdx + 1; I < Words.size(); ++I)
    Take(I);
  for (size_t I = 0; I <= FrontierIdx && I < Words.size(); ++I)
    Take(I);
  return Out;
}

namespace {
/// Parses a linearized word stream into records and repairs torn records
/// at the ring seam. Invalid (all-zero) words are legitimate only before
/// any data — never-written ring space (which can extend past the ring
/// seam when a buffer's first occupant started writing mid-ring,
/// section 3.1.1). A zero *after* data marks a torn sub-buffer write:
/// everything at and beyond it is untrustworthy, so parsing stops there
/// and \p TornAt records the linear position of the cut (SIZE_MAX if
/// none).
std::vector<ParsedRecord> parseWords(const std::vector<uint32_t> &Words,
                                     bool &SawSeamGarbage, size_t &TornAt) {
  std::vector<ParsedRecord> Out;
  SawSeamGarbage = false;
  TornAt = SIZE_MAX;
  bool SeenData = false;
  size_t Pos = 0;
  while (Pos < Words.size()) {
    uint32_t W = Words[Pos];
    if (W == InvalidRecord) {
      if (SeenData) {
        TornAt = Pos;
        break;
      }
      ++Pos;
      continue;
    }
    SeenData = true;
    if (isDagRecord(W)) {
      ParsedRecord R;
      R.RecordKind = ParsedRecord::Kind::Dag;
      R.DagWord = W;
      Out.push_back(std::move(R));
      ++Pos;
      continue;
    }
    if (isExtContinuation(W)) {
      // A continuation with no header: its header was overwritten at the
      // ring seam. Drop it.
      SawSeamGarbage = true;
      ++Pos;
      continue;
    }
    // Extended header.
    ParsedRecord R;
    R.RecordKind = ParsedRecord::Kind::Ext;
    size_t Next = Pos;
    if (decodeExtRecord(Words.data(), Words.size(), Next, R.Ext)) {
      Out.push_back(std::move(R));
      Pos = Next;
    } else {
      // Torn record (truncated or interleaved with garbage).
      SawSeamGarbage = true;
      ++Pos;
    }
  }
  return Out;
}
} // namespace

std::vector<ThreadSegment>
traceback::recoverBufferRecords(const SnapBufferImage &Buffer,
                                const std::vector<SnapThreadInfo> &Threads,
                                std::vector<std::string> &Warnings) {
  std::vector<ThreadSegment> Segments;
  if (Buffer.Raw.size() < 8)
    return Segments;

  if (Buffer.Desperation) {
    // Unsynchronized multi-thread writes: the data is not recoverable
    // (section 3.1), by design.
    bool AnyData = false;
    for (size_t I = 0; I + 3 < Buffer.Raw.size(); I += 4) {
      uint32_t W = Buffer.Raw[I] | (Buffer.Raw[I + 1] << 8) |
                   (Buffer.Raw[I + 2] << 16) |
                   (static_cast<uint32_t>(Buffer.Raw[I + 3]) << 24);
      if (W != InvalidRecord && W != SentinelRecord) {
        AnyData = true;
        break;
      }
    }
    if (AnyData)
      Warnings.push_back(
          "desperation buffer contains records; traces written there are "
          "not recoverable");
    return Segments;
  }

  std::vector<uint32_t> Words(Buffer.Raw.size() / 4);
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] = static_cast<uint32_t>(Buffer.Raw[I * 4]) |
               (static_cast<uint32_t>(Buffer.Raw[I * 4 + 1]) << 8) |
               (static_cast<uint32_t>(Buffer.Raw[I * 4 + 2]) << 16) |
               (static_cast<uint32_t>(Buffer.Raw[I * 4 + 3]) << 24);

  // ----- Locate the frontier ---------------------------------------------
  size_t Frontier = SIZE_MAX;
  // A clean snap stored the owning thread's cursor.
  for (const SnapThreadInfo &T : Threads) {
    if (T.ThreadId != Buffer.OwnerThread || T.Cursor == 0)
      continue;
    if (T.Cursor >= Buffer.RecordsBase &&
        T.Cursor < Buffer.RecordsBase + Words.size() * 4) {
      Frontier = static_cast<size_t>((T.Cursor - Buffer.RecordsBase) / 4);
      break;
    }
  }
  if (Frontier == SIZE_MAX) {
    // Abrupt termination: fall back to the sub-buffer commit index and a
    // last-non-zero scan of the active sub-buffer (section 3.2).
    uint32_t SubWords = Buffer.SubBufferWords;
    uint32_t SubCount = Buffer.SubBufferCount;
    if (SubWords == 0 || SubCount == 0)
      return Segments;
    uint32_t Active = Buffer.CommittedSubBuffer == UINT32_MAX
                          ? 0
                          : (Buffer.CommittedSubBuffer + 1) % SubCount;
    size_t Begin = static_cast<size_t>(Active) * SubWords;
    size_t End = std::min<size_t>(Begin + SubWords, Words.size());
    for (size_t I = End; I-- > Begin;) {
      if (Words[I] != InvalidRecord && Words[I] != SentinelRecord) {
        Frontier = I;
        break;
      }
    }
    if (Frontier == SIZE_MAX) {
      if (Buffer.CommittedSubBuffer == UINT32_MAX)
        return Segments; // Nothing was ever written.
      // The active sub-buffer is empty: the frontier is the end of the
      // committed one.
      size_t CommittedEnd =
          (static_cast<size_t>(Buffer.CommittedSubBuffer) + 1) * SubWords;
      Frontier = CommittedEnd >= 2 ? CommittedEnd - 2 : 0;
    }
  }

  std::vector<uint32_t> Linear = linearizeRing(Words, Frontier);
  bool SeamGarbage = false;
  size_t TornAt = SIZE_MAX;
  std::vector<ParsedRecord> Parsed = parseWords(Linear, SeamGarbage, TornAt);
  if (TornAt != SIZE_MAX)
    Warnings.push_back(formatv(
        "buffer %u: invalid word mid-stream at linear position %zu; "
        "dropping newer records (torn write)",
        Buffer.Index, TornAt));
  if (Parsed.empty())
    return Segments;

  // ----- Split by thread ---------------------------------------------------
  ThreadSegment Cur;
  auto Close = [&]() {
    if (!Cur.Records.empty() || Cur.ThreadId != 0)
      Segments.push_back(std::move(Cur));
    Cur = ThreadSegment();
  };
  bool First = true;
  for (ParsedRecord &R : Parsed) {
    bool IsStart = R.RecordKind == ParsedRecord::Kind::Ext &&
                   R.Ext.Type == ExtType::ThreadStart;
    bool IsEnd = R.RecordKind == ParsedRecord::Kind::Ext &&
                 R.Ext.Type == ExtType::ThreadEnd;
    if (IsStart) {
      Close();
      Cur.ThreadId = R.Ext.Payload.empty() ? 0 : R.Ext.Payload[0];
      Cur.Records.push_back(std::move(R));
      First = false;
      continue;
    }
    if (First) {
      // Oldest surviving records do not begin at a thread start marker:
      // the ring overwrote the beginning of this thread's history.
      Cur.Truncated = true;
      First = false;
    }
    if (IsEnd) {
      if (Cur.ThreadId == 0 && !R.Ext.Payload.empty())
        Cur.ThreadId = R.Ext.Payload[0];
      Cur.Records.push_back(std::move(R));
      Close();
      continue;
    }
    Cur.Records.push_back(std::move(R));
  }
  Close();

  // Records with no markers at all belong to the buffer's current owner.
  for (ThreadSegment &S : Segments)
    if (S.ThreadId == 0)
      S.ThreadId = Buffer.OwnerThread;

  // The cut lands in whatever segment was open when parsing stopped.
  if (TornAt != SIZE_MAX && !Segments.empty())
    Segments.back().TruncatedAt = TornAt;

  if (SeamGarbage)
    Warnings.push_back(formatv(
        "buffer %u: repaired a torn record at the ring seam", Buffer.Index));
  return Segments;
}
