//===- reconstruct/Views.h - Trace display rendering ------------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text renderings of reconstructed traces — the stand-in for the paper's
/// GUI (section 4.3): the flat line history, the call-hierarchy view with
/// indentation, the multi-thread interleaved view, and the fault-directed
/// view selection that picks a layout by snap reason (section 4.3.3).
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_VIEWS_H
#define TRACEBACK_RECONSTRUCT_VIEWS_H

#include "reconstruct/Stitch.h"
#include "reconstruct/Trace.h"
#include "runtime/Snap.h"

#include <string>
#include <vector>

namespace traceback {

/// Flat line-by-line history of one thread (module, file:line, function).
std::string renderFlatTrace(const ThreadTrace &Trace);

/// Call-hierarchy view: lines indented by call depth, with call/return,
/// exception and sync annotations.
std::string renderCallTree(const ThreadTrace &Trace);

/// Interleaved multi-thread view ordered by skew-corrected timestamps;
/// one column per thread.
std::string renderMultiThread(const std::vector<const ThreadTrace *> &Traces);

/// Renders one fused logical thread across machines/runtimes (the
/// Figure 6-style cross-machine history).
std::string renderLogicalThread(const LogicalThread &LT);

/// Fault-directed view selection: exceptions get the faulting thread's
/// call tree with the fault highlighted; hangs get one line per thread.
std::string renderFaultView(const SnapFile &Snap,
                            const ReconstructedTrace &Trace);

/// Hex dump of the snap's captured memory regions (section 3.6's
/// variable/object display; enabled by the capture_memory policy).
std::string renderMemoryDump(const SnapFile &Snap);

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_VIEWS_H
