//===- reconstruct/RecordRecovery.h - Raw record recovery ------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage one of reconstruction (paper section 4.1): locate each buffer's
/// write frontier (the thread's cursor for clean snaps, or the sub-buffer
/// commit state plus a last-non-zero scan after abrupt termination),
/// linearize the ring into oldest-to-newest order with sentinels stripped,
/// repair the seam where the ring overwrote the oldest record, parse the
/// words into records, and split them into per-thread segments using the
/// thread start/end markers.
///
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_RECONSTRUCT_RECORDRECOVERY_H
#define TRACEBACK_RECONSTRUCT_RECORDRECOVERY_H

#include "runtime/Snap.h"
#include "runtime/TraceRecord.h"

#include <cstdint>
#include <string>
#include <vector>

namespace traceback {

/// One parsed trace record.
struct ParsedRecord {
  enum class Kind : uint8_t { Dag, Ext } RecordKind = Kind::Dag;
  uint32_t DagWord = 0; ///< For Dag records.
  ExtRecord Ext;        ///< For Ext records.
};

/// A run of records attributed to one thread.
struct ThreadSegment {
  /// 0 when the owning thread could not be determined (markers were
  /// overwritten and the buffer has no live owner).
  uint64_t ThreadId = 0;
  /// True when the segment's beginning was lost to ring overwrite.
  bool Truncated = false;
  /// Linear word position where a torn write cut off the segment's *end*
  /// (records beyond it were dropped); SIZE_MAX when intact.
  size_t TruncatedAt = SIZE_MAX;
  std::vector<ParsedRecord> Records;
};

/// Recovers the per-thread record segments of one buffer image.
/// \p Threads supplies cursor info from the snap. Appends human-readable
/// diagnostics to \p Warnings.
std::vector<ThreadSegment>
recoverBufferRecords(const SnapBufferImage &Buffer,
                     const std::vector<SnapThreadInfo> &Threads,
                     std::vector<std::string> &Warnings);

/// Exposed for tests: linearizes raw words (ring order, sentinel-stripped)
/// given the frontier word index. Words [Frontier+1, end) ++ [0, Frontier]
/// in ring order, with leading garbage dropped.
std::vector<uint32_t> linearizeRing(const std::vector<uint32_t> &Words,
                                    size_t FrontierIdx);

} // namespace traceback

#endif // TRACEBACK_RECONSTRUCT_RECORDRECOVERY_H
