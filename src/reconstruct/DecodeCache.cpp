//===- reconstruct/DecodeCache.cpp - Memoized DAG-path decoding -----------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/DecodeCache.h"

#include "reconstruct/Reconstructor.h"

using namespace traceback;

SharedDagPath DagPathCache::decode(uint64_t ModuleKey, const MapDag &Dag,
                                   uint32_t PathBits) {
  Key K{ModuleKey, Dag.RelId, PathBits};
  Shard &S = Shards[KeyHasher{}(K) % ShardCount];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    if (SharedDagPath *Found = S.Map.find(K)) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      if (HitCounter)
        HitCounter->add();
      return *Found;
    }
  }
  // Decode outside the lock: decoding is pure, so two threads racing on
  // the same key produce identical paths and either insert wins.
  SharedDagPath Path =
      std::make_shared<std::vector<uint16_t>>(decodeDagPath(Dag, PathBits));
  Misses.fetch_add(1, std::memory_order_relaxed);
  if (MissCounter)
    MissCounter->add();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Map.insertOrAssign(K, Path);
  return Path;
}
