//===- tests/test_isa.cpp - ISA layer tests -------------------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Assembler.h"
#include "isa/Builder.h"
#include "isa/Disassembler.h"
#include "isa/Encoding.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace traceback;

namespace {
Instruction randomInstruction(Rng &Rand) {
  for (;;) {
    Opcode Op = static_cast<Opcode>(Rand.below(NumOpcodes));
    Instruction I;
    I.Op = Op;
    // Only populate the fields the signature encodes; the rest must stay
    // zero to compare equal after a decode round trip.
    switch (opcodeSig(Op)) {
    case OpSig::R:
    case OpSig::RI64:
    case OpSig::RSlot:
      I.Rd = static_cast<uint8_t>(Rand.below(NumRegs));
      break;
    case OpSig::RR:
    case OpSig::RI32:
    case OpSig::RMem:
    case OpSig::MemR:
      I.Rd = static_cast<uint8_t>(Rand.below(NumRegs));
      I.Rs = static_cast<uint8_t>(Rand.below(NumRegs));
      break;
    case OpSig::RRR:
      I.Rd = static_cast<uint8_t>(Rand.below(NumRegs));
      I.Rs = static_cast<uint8_t>(Rand.below(NumRegs));
      I.Rt = static_cast<uint8_t>(Rand.below(NumRegs));
      break;
    case OpSig::MemI32:
      I.Rd = static_cast<uint8_t>(Rand.below(NumRegs));
      break;
    case OpSig::RRel8:
    case OpSig::RRel32:
      I.Rs = static_cast<uint8_t>(Rand.below(NumRegs));
      break;
    default:
      break;
    }
    switch (opcodeSig(Op)) {
    case OpSig::RI64:
      I.Imm = static_cast<int64_t>(Rand.next());
      break;
    case OpSig::RI32:
      I.Imm = static_cast<int32_t>(Rand.next());
      break;
    case OpSig::MemI32:
      I.Imm = static_cast<int64_t>(static_cast<uint32_t>(Rand.next()));
      I.Off = static_cast<int16_t>(Rand.next());
      break;
    case OpSig::RMem:
    case OpSig::MemR:
      I.Off = static_cast<int16_t>(Rand.next());
      break;
    case OpSig::Rel8:
    case OpSig::RRel8:
      I.Imm = static_cast<int8_t>(Rand.next());
      break;
    case OpSig::Rel32:
    case OpSig::RRel32:
      I.Imm = static_cast<int32_t>(Rand.next());
      break;
    case OpSig::I16:
    case OpSig::RSlot:
      I.Imm = static_cast<uint16_t>(Rand.next());
      break;
    default:
      break;
    }
    return I;
  }
}
} // namespace

TEST(EncodingTest, RandomRoundTrip) {
  Rng Rand(11);
  for (int Case = 0; Case < 5000; ++Case) {
    Instruction I = randomInstruction(Rand);
    std::vector<uint8_t> Bytes;
    unsigned Size = encodeInstruction(I, Bytes);
    EXPECT_EQ(Size, I.size());
    Instruction Back;
    unsigned Decoded = decodeInstruction(Bytes.data(), Bytes.size(), Back);
    ASSERT_EQ(Decoded, Size) << I.toString();
    EXPECT_EQ(Back, I) << I.toString() << " vs " << Back.toString();
  }
}

TEST(EncodingTest, RejectsJunk) {
  Instruction I;
  uint8_t Junk[] = {0xFE, 1, 2, 3};
  EXPECT_EQ(decodeInstruction(Junk, sizeof(Junk), I), 0u);
  // Truncated instruction.
  std::vector<uint8_t> Bytes;
  encodeInstruction(Instruction::movI(3, 123456789), Bytes);
  EXPECT_EQ(decodeInstruction(Bytes.data(), 4, I), 0u);
  // Register field out of range.
  std::vector<uint8_t> Bad;
  encodeInstruction(Instruction::mov(1, 2), Bad);
  Bad[1] = 99;
  EXPECT_EQ(decodeInstruction(Bad.data(), Bad.size(), I), 0u);
}

TEST(EncodingTest, DecodeAllStream) {
  std::vector<uint8_t> Code;
  std::vector<Instruction> Insns = {
      Instruction::movI(1, 7), Instruction::aluI(Opcode::AddI, 1, 1, 1),
      Instruction::push(1), Instruction::pop(2), Instruction::ret()};
  for (const Instruction &I : Insns)
    encodeInstruction(I, Code);
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(Code, Out));
  ASSERT_EQ(Out.size(), Insns.size());
  uint32_t Off = 0;
  for (size_t I = 0; I < Insns.size(); ++I) {
    EXPECT_EQ(Out[I].Insn, Insns[I]);
    EXPECT_EQ(Out[I].Offset, Off);
    Off += Insns[I].size();
  }
}

TEST(BuilderTest, ShortBranchSelected) {
  ModuleBuilder B("m");
  Label L = B.makeLabel();
  B.emitBr(L);
  B.emit(Instruction::nop());
  B.bind(L);
  B.emit(Instruction::ret());
  Module M;
  std::string Error;
  ASSERT_TRUE(B.finalize(M, Error)) << Error;
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(M.Code, Out));
  EXPECT_EQ(Out[0].Insn.Op, Opcode::BrS) << "short form expected";
  EXPECT_EQ(Out[0].Insn.Imm, 1); // Skips the 1-byte nop.
}

TEST(BuilderTest, LongBranchWhenFar) {
  ModuleBuilder B("m");
  Label L = B.makeLabel();
  B.emitBr(L);
  for (int I = 0; I < 50; ++I)
    B.emit(Instruction::movI(1, I)); // 10 bytes each: too far for rel8.
  B.bind(L);
  B.emit(Instruction::ret());
  Module M;
  std::string Error;
  ASSERT_TRUE(B.finalize(M, Error)) << Error;
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(M.Code, Out));
  EXPECT_EQ(Out[0].Insn.Op, Opcode::BrL);
  EXPECT_EQ(Out[0].Insn.Imm, 500);
}

TEST(BuilderTest, RelaxationCascade) {
  // A chain of branches each barely in short range; growing one pushes the
  // next out of range — the fixpoint must converge and stay correct.
  ModuleBuilder B("m");
  std::vector<Label> Labels;
  const int N = 30;
  for (int I = 0; I < N; ++I)
    Labels.push_back(B.makeLabel());
  // Branch i targets label i; labels are spaced so that early branches sit
  // right at the rel8 boundary.
  for (int I = 0; I < N; ++I)
    B.emitBr(Labels[I]);
  for (int I = 0; I < N; ++I) {
    for (int Pad = 0; Pad < 11; ++Pad)
      B.emit(Instruction::nop());
    B.bind(Labels[I]);
    B.emit(Instruction::nop());
  }
  Module M;
  std::string Error;
  ASSERT_TRUE(B.finalize(M, Error)) << Error;

  // Verify every branch displacement lands on a decoded boundary.
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(M.Code, Out));
  std::set<uint32_t> Boundaries;
  for (const DecodedInsn &D : Out)
    Boundaries.insert(D.Offset);
  for (const DecodedInsn &D : Out) {
    if (!isRelBranch(D.Insn.Op))
      continue;
    uint32_t Target = static_cast<uint32_t>(
        D.Offset + opcodeSize(D.Insn.Op) + D.Insn.Imm);
    EXPECT_TRUE(Boundaries.count(Target)) << "mid-instruction target";
  }
}

TEST(BuilderTest, UnboundLabelFails) {
  ModuleBuilder B("m");
  Label L = B.makeLabel();
  B.emitBr(L);
  Module M;
  std::string Error;
  EXPECT_FALSE(B.finalize(M, Error));
  EXPECT_NE(Error.find("never bound"), std::string::npos);
}

TEST(ModuleTest, SerializationRoundTrip) {
  ModuleBuilder B("serialize-me", Technology::Managed);
  uint16_t File = B.fileIndex("a.ml");
  B.setLine(File, 10);
  B.beginFunction("main", true);
  Label L = B.makeLabel();
  B.emitCall(L);
  B.emit(Instruction::halt());
  B.bind(L);
  B.setLine(File, 20);
  B.emitLea(2, "table", 8);
  B.emit(Instruction::ret());
  B.defineDataSymbol("table", true);
  B.addData({1, 2, 3, 4, 5, 6, 7, 8});
  B.addDataSymbolSlot("main");
  B.emitCallImport("external_fn");
  Module M;
  std::string Error;
  ASSERT_TRUE(B.finalize(M, Error)) << Error;
  M.EhTable.push_back({0, 10, 5});
  M.Instrumented = true;
  M.DagIdBase = 1234;
  M.DagIdCount = 5;
  M.DagRecordFixups = {4, 9};
  M.LightMaskFixups = {14};
  M.TlsSlotFixups = {2};
  M.Checksum = MD5::hash("x", 1);

  std::vector<uint8_t> Bytes = M.serialize();
  Module Back;
  ASSERT_TRUE(Module::deserialize(Bytes, Back));
  EXPECT_EQ(Back.Name, M.Name);
  EXPECT_EQ(Back.Tech, M.Tech);
  EXPECT_EQ(Back.Code, M.Code);
  EXPECT_EQ(Back.Data, M.Data);
  EXPECT_EQ(Back.Symbols.size(), M.Symbols.size());
  EXPECT_EQ(Back.Imports, M.Imports);
  EXPECT_EQ(Back.Relocs.size(), M.Relocs.size());
  EXPECT_EQ(Back.CodeRelocs.size(), M.CodeRelocs.size());
  EXPECT_EQ(Back.Lines.size(), M.Lines.size());
  EXPECT_EQ(Back.EhTable.size(), 1u);
  EXPECT_EQ(Back.DagIdBase, 1234u);
  EXPECT_EQ(Back.DagRecordFixups, M.DagRecordFixups);
  EXPECT_EQ(Back.Checksum, M.Checksum);
}

TEST(ModuleTest, QueriesWork) {
  Module M;
  M.Files = {"f0.c", "f1.c"};
  M.Lines = {{0, 0, 1}, {10, 0, 2}, {20, 1, 7}};
  M.Symbols.push_back({"foo", 0, true, true});
  M.Symbols.push_back({"bar", 16, true, false});
  M.EhTable.push_back({0, 30, 25});
  M.EhTable.push_back({5, 12, 28}); // Inner range.

  EXPECT_EQ(M.lineForOffset(0)->Line, 1u);
  EXPECT_EQ(M.lineForOffset(9)->Line, 1u);
  EXPECT_EQ(M.lineForOffset(10)->Line, 2u);
  EXPECT_EQ(M.lineForOffset(25)->Line, 7u);
  EXPECT_EQ(M.fileName(1), "f1.c");
  EXPECT_EQ(M.fileName(9), "?");
  EXPECT_EQ(M.functionAtOffset(3), "foo");
  EXPECT_EQ(M.functionAtOffset(17), "bar");
  EXPECT_EQ(M.handlerForOffset(7)->Handler, 28u) << "innermost wins";
  EXPECT_EQ(M.handlerForOffset(15)->Handler, 25u);
  EXPECT_FALSE(M.handlerForOffset(31).has_value());
}

TEST(AssemblerTest, BasicProgram) {
  Assembler Asm;
  Module M;
  std::string Error;
  std::string Src = R"(.module demo
.file "demo.s"
.func main export
.line 1
  movi r0, 5
  movi r1, 3
  add r0, r0, r1
loop:
.line 2
  addi r0, r0, -1
  brnz r0, loop
.line 3
  halt
.endfunc
)";
  ASSERT_TRUE(Asm.assemble(Src, M, Error)) << Error;
  EXPECT_EQ(M.Name, "demo");
  ASSERT_NE(M.findSymbol("main"), nullptr);
  EXPECT_TRUE(M.findSymbol("main")->Exported);
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(M.Code, Out));
  EXPECT_EQ(Out.size(), 6u);
  EXPECT_EQ(M.Lines.size(), 3u);
}

TEST(AssemblerTest, DataDirectivesAndLea) {
  Assembler Asm;
  Module M;
  std::string Error;
  std::string Src = R"(.module d
.func main export
  lea r1, table
  lea r2, msg+1
  ld r3, [r1]
  ret
.endfunc
.datasym table export
.word 42, 43
.datasym msg
.string "hi"
.ptr main
)";
  ASSERT_TRUE(Asm.assemble(Src, M, Error)) << Error;
  EXPECT_EQ(M.CodeRelocs.size(), 2u);
  EXPECT_EQ(M.CodeRelocs[1].Addend, 1);
  ASSERT_NE(M.findSymbol("table"), nullptr);
  EXPECT_FALSE(M.findSymbol("table")->IsFunction);
  EXPECT_EQ(M.Relocs.size(), 1u);
  EXPECT_EQ(M.Relocs[0].SymbolName, "main");
  // Data: 2 words + "hi\0" + aligned pointer slot.
  EXPECT_GE(M.Data.size(), 16u + 3u + 8u);
}

TEST(AssemblerTest, Diagnostics) {
  Assembler Asm;
  Module M;
  std::string Error;
  EXPECT_FALSE(Asm.assemble("bogus r1, r2\n", M, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_FALSE(Asm.assemble(".func\n", M, Error));
  EXPECT_FALSE(Asm.assemble("movi r99, 1\n", M, Error));
  EXPECT_FALSE(Asm.assemble("br nowhere\n", M, Error)); // Unbound label.
}

TEST(AssemblerTest, NamedConstants) {
  Assembler Asm({{"MAGIC", 77}});
  Module M;
  std::string Error;
  ASSERT_TRUE(Asm.assemble(".func f\n movi r0, $MAGIC\n ret\n", M, Error))
      << Error;
  std::vector<DecodedInsn> Out;
  ASSERT_TRUE(decodeAll(M.Code, Out));
  EXPECT_EQ(Out[0].Insn.Imm, 77);
  EXPECT_FALSE(Asm.assemble(".func f\n movi r0, $NOPE\n ret\n", M, Error));
}

TEST(DisassemblerTest, ListingContainsSymbolsAndLines) {
  Assembler Asm;
  Module M;
  std::string Error;
  ASSERT_TRUE(Asm.assemble(
      ".module x\n.file \"x.s\"\n.func main export\n.line 3\n movi r0, 1\n "
      "halt\n.endfunc\n",
      M, Error))
      << Error;
  std::string Listing = disassembleModule(M);
  EXPECT_NE(Listing.find("main:"), std::string::npos);
  EXPECT_NE(Listing.find("x.s:3"), std::string::npos);
  EXPECT_NE(Listing.find("movi r0, 1"), std::string::npos);
}
