//===- tests/test_end2end.cpp - Full pipeline tests -----------------------===//
//
// Part of the TraceBack reproduction project.
//
// Instrument -> run -> fault/snap -> reconstruct -> compare against the
// VM's ground-truth line oracle.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
/// Runs source instrumented with an oracle, returns the deployment plus
/// reconstruction of the LAST snap.
struct E2E {
  SingleProcess S{/*WithOracle=*/true};
  ReconstructedTrace Trace;

  World::RunResult run(const std::string &Source,
                       Technology Tech = Technology::Native) {
    Module M = compileOrDie(Source, "app", Tech);
    World::RunResult R = S.runModule(M, /*Instrument=*/true);
    if (!S.D.snaps().empty())
      Trace = S.D.reconstruct(S.D.snaps().back());
    return R;
  }
};
} // namespace

TEST(End2EndTest, CrashTraceMatchesOracle) {
  E2E T;
  T.run(R"(
fn step(x) {
  if (x % 3 == 0) { return x / 3; }
  return x + 7;
}
fn main() export {
  var v = 100;
  for (var i = 0; i < 12; i = i + 1) {
    v = step(v);
  }
  var p = 0;
  print(load(p));
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty()) << "crash must snap";
  const SnapFile &Snap = T.S.D.snaps().back();
  EXPECT_EQ(Snap.FaultCodeValue, static_cast<uint16_t>(FaultCode::Segv));

  ASSERT_FALSE(T.Trace.Threads.empty());
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(T.S.Oracle, 1);
  ASSERT_FALSE(Got.empty());
  EXPECT_TRUE(isSuffixOf(Got, Want))
      << "reconstruction: " << ::testing::PrintToString(Got)
      << "\noracle tail: "
      << ::testing::PrintToString(std::vector<std::string>(
             Want.end() - std::min(Want.size(), Got.size() + 3), Want.end()));
  // With a default-size buffer and this short a program, nothing is lost.
  EXPECT_EQ(Got.size(), Want.size()) << "expected full history";
  // The last line is the faulting print(load(p)) line.
  EXPECT_NE(Got.back().find(":12"), std::string::npos) << Got.back();
}

TEST(End2EndTest, CleanSnapViaApi) {
  E2E T;
  T.run(R"(
fn main() export {
  var acc = 0;
  for (var i = 0; i < 5; i = i + 1) {
    acc = acc + i * i;
  }
  snap(1);
  print(acc);
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty());
  EXPECT_EQ(T.S.D.snaps().back().Reason, SnapReason::Api);
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  // Oracle includes lines after the snap (print) — reconstruction stops at
  // the snap point, so Got is a PREFIX of the oracle here.
  std::vector<std::string> Want = oracleSequence(T.S.Oracle, 1);
  ASSERT_LE(Got.size(), Want.size());
  EXPECT_TRUE(std::equal(Got.begin(), Got.end(), Want.begin()))
      << ::testing::PrintToString(Got);
}

TEST(End2EndTest, KillMinusNineRecoversViaSubBuffers) {
  // Hard kill loses the TLS cursors; reconstruction must fall back to the
  // sub-buffer commit state (paper section 3.2).
  SingleProcess S{/*WithOracle=*/true};
  Module M = compileOrDie(R"(
fn spin() {
  var x = 1;
  while (1) {
    x = x * 3 + 1;
    x = x % 1000003;
    yield();
  }
  return x;
}
fn main() export {
  spin();
}
)");
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, M, true, Error), nullptr) << Error;
  S.P->start("main");
  // Run a while, then kill -9.
  for (int I = 0; I < 3000; ++I)
    S.D.world().stepSlice();
  ASSERT_FALSE(S.P->Exited);
  S.D.world().sendSignal(*S.P, SigKill);
  EXPECT_TRUE(S.P->HardKilled);

  // The service process collects the buffers from the dead image.
  ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
  ASSERT_NE(Daemon, nullptr);
  auto PostMortem = Daemon->collectPostMortem(*S.P);
  ASSERT_EQ(PostMortem.size(), 1u);
  ReconstructedTrace Trace = S.D.reconstruct(*PostMortem[0]);
  ASSERT_FALSE(Trace.Threads.empty()) << "sub-buffering must save data";
  const ThreadTrace *Main = Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(S.Oracle, 1);
  ASSERT_GT(Got.size(), 3u);
  // The kill landed between probes, so the trace's last block may lead or
  // trail the oracle by a few lines; beyond that bounded end-slop the
  // recovered history must be an exact suffix of reality. (Note: the spin
  // loop's line sequence is periodic, so substring search would be
  // ambiguous — suffix alignment is the meaningful check.)
  bool Aligned = false;
  for (size_t DropGot = 0; DropGot <= 4 && !Aligned; ++DropGot) {
    for (size_t DropWant = 0; DropWant <= 4 && !Aligned; ++DropWant) {
      if (Got.size() <= DropGot || Want.size() <= DropWant)
        continue;
      std::vector<std::string> G(Got.begin(), Got.end() - DropGot);
      std::vector<std::string> W(Want.begin(), Want.end() - DropWant);
      Aligned = isSuffixOf(G, W);
    }
  }
  EXPECT_TRUE(Aligned) << "recovered history must be a recent suffix";
}

TEST(End2EndTest, ExceptionTrimStopsAtThrowLine) {
  E2E T;
  T.run(R"(
fn boom(a) {
  var y = a + 1;
  throw 3;
  return y;
}
fn main() export {
  var x = 5;
  boom(x);
  print(x);
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty());
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  ASSERT_FALSE(Got.empty());
  EXPECT_NE(Got.back().find(":4"), std::string::npos)
      << "trace must end at the throw line, got " << Got.back();
  // And the return-line (5) must NOT appear after it.
  for (const std::string &L : Got)
    EXPECT_EQ(L.find(":5"), std::string::npos) << "line after throw leaked";
}

TEST(End2EndTest, CaughtExceptionContinues) {
  E2E T;
  T.run(R"(
fn main() export {
  var n = 0;
  try {
    n = 1;
    throw 9;
  } catch {
    n = 2;
  }
  n = 3;
  snap(5);
}
)");
  // Two snaps: the exception and the API snap; use the API one.
  ASSERT_GE(T.S.D.snaps().size(), 1u);
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  // Find exception + handler-resume markers.
  bool SawException = false, SawCatchLine = false, SawAfter = false;
  for (const TraceEvent &E : Main->Events) {
    if (E.EventKind == TraceEvent::Kind::Exception)
      SawException = true;
    if (E.EventKind == TraceEvent::Kind::Line && E.Line == 8)
      SawCatchLine = true;
    if (E.EventKind == TraceEvent::Kind::Line && E.Line == 10)
      SawAfter = true;
  }
  EXPECT_TRUE(SawException);
  EXPECT_TRUE(SawCatchLine) << renderFlatTrace(*Main);
  EXPECT_TRUE(SawAfter);
}

TEST(End2EndTest, CallTreeDepths) {
  E2E T;
  T.run(R"(
fn inner() {
  throw 1;
  return 0;
}
fn outer() {
  return inner();
}
fn main() export {
  outer();
}
)");
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  uint32_t MaxDepth = 0;
  for (const TraceEvent &E : Main->Events)
    if (E.EventKind == TraceEvent::Kind::Line)
      MaxDepth = std::max(MaxDepth, E.Depth);
  EXPECT_GE(MaxDepth, 2u) << "main -> outer -> inner\n"
                          << renderCallTree(*Main);
}

TEST(End2EndTest, LoopRepetitionCollapsed) {
  E2E T;
  T.run(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 50; i = i + 1) { s = s + i; }
  snap(1);
}
)");
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  // The one-line loop body must appear collapsed with a repeat count, not
  // as 50 separate events.
  bool FoundRepeat = false;
  for (const TraceEvent &E : Main->Events)
    if (E.EventKind == TraceEvent::Kind::Line && E.Repeat >= 40)
      FoundRepeat = true;
  EXPECT_TRUE(FoundRepeat) << renderFlatTrace(*Main);
  EXPECT_LT(Main->Events.size(), 60u) << "collapse failed";
}

TEST(End2EndTest, UninstrumentedCalleeStopsAtCallSite) {
  // Fault inside an uninstrumented module: the trace must still show the
  // instrumented caller up to the call (paper sections 1 and 2.4).
  SingleProcess S{/*WithOracle=*/true};
  Module Lib = buildLibTbc();
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, Lib, /*Instrument=*/false, Error), nullptr);
  Module App = compileOrDie(R"(
import memcpy;
fn main() export {
  var dst = alloc(64);
  var bad = 0;
  memcpy(dst, bad, 8);
}
)");
  ASSERT_NE(S.D.deploy(*S.P, App, /*Instrument=*/true, Error), nullptr)
      << Error;
  S.P->start("main");
  S.D.world().run();
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().back();
  EXPECT_EQ(Snap.FaultModuleKey, 0u) << "fault in uninstrumented code";
  ReconstructedTrace Trace = S.D.reconstruct(Snap);
  const ThreadTrace *Main = Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  ASSERT_FALSE(Got.empty());
  EXPECT_NE(Got.back().find(":6"), std::string::npos)
      << "trace must end at the memcpy call line, got " << Got.back();
}

TEST(End2EndTest, MultiThreadedTracesSeparate) {
  E2E T;
  T.run(R"(
fn worker(id) {
  var s = 0;
  for (var i = 0; i < 20; i = i + 1) { s = s + id; }
  return s;
}
fn main() export {
  var t1 = spawn(addr_of(worker), 1);
  var t2 = spawn(addr_of(worker), 2);
  join(t1);
  join(t2);
  snap(1);
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty());
  // Threads 1 (main), 2 and 3 must each have a trace.
  EXPECT_NE(T.Trace.threadById(1), nullptr);
  EXPECT_NE(T.Trace.threadById(2), nullptr);
  EXPECT_NE(T.Trace.threadById(3), nullptr);
  for (uint64_t Tid = 2; Tid <= 3; ++Tid) {
    std::vector<std::string> Got = lineSequence(*T.Trace.threadById(Tid));
    std::vector<std::string> Want = oracleSequence(T.S.Oracle, Tid);
    EXPECT_TRUE(isSuffixOf(Got, Want))
        << "thread " << Tid << ": " << ::testing::PrintToString(Got);
  }
}

TEST(End2EndTest, ManagedModeMatchesOracleToo) {
  E2E T;
  T.run(R"(
fn main() export {
  var acc = 1;
  for (var i = 0; i < 8; i = i + 1) {
    acc = acc * 2;
    if (acc > 100) { acc = acc - 51; }
  }
  var p = 0;
  print(load(p));
}
)",
        Technology::Managed);
  ASSERT_FALSE(T.S.D.snaps().empty());
  EXPECT_EQ(T.S.D.snaps().back().Tech, Technology::Managed);
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(T.S.Oracle, 1);
  EXPECT_TRUE(isSuffixOf(Got, Want)) << ::testing::PrintToString(Got);
}

TEST(End2EndTest, SignalInterposition) {
  E2E T;
  T.run(R"(
fn on_sig(s) {
  print(s);
  return 0;
}
fn main() export {
  sighandler(10, addr_of(on_sig));
  var x = 7;
  raise(10);
  x = x + 1;
  snap(2);
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty());
  const ThreadTrace *Main = T.Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  bool SawSignal = false, SawEnd = false;
  for (const TraceEvent &E : Main->Events) {
    if (E.EventKind == TraceEvent::Kind::Exception &&
        (E.FaultCodeValue & 0x8000))
      SawSignal = true;
    if (E.EventKind == TraceEvent::Kind::ExceptionEnd &&
        (E.FaultCodeValue & 0x8000))
      SawEnd = true;
  }
  EXPECT_TRUE(SawSignal) << "signal record missing";
  EXPECT_TRUE(SawEnd) << "exception-end record missing";
  EXPECT_EQ(T.S.P->Output, "10\n");
}

TEST(End2EndTest, FaultViewRendering) {
  E2E T;
  T.run(R"(
fn main() export {
  var p = 0;
  print(load(p));
}
)");
  ASSERT_FALSE(T.S.D.snaps().empty());
  std::string View = renderFaultView(T.S.D.snaps().back(), T.Trace);
  EXPECT_NE(View.find("exception"), std::string::npos);
  EXPECT_NE(View.find("access violation"), std::string::npos);
  EXPECT_NE(View.find("test.ml"), std::string::npos);
}
