//===- tests/test_triage.cpp - Crash-signature clustering tests -----------===//
//
// Part of the TraceBack reproduction project.
//
// The triage subsystem's contract, from unit to sweep scale:
//
//  * normalization — identity state (thread/runtime ids, timestamps,
//    repeat counts, depths, peer names, torn-write positions) never
//    reaches the signature; fault class, module set and the normalized
//    top-of-trace path always do;
//  * clustering — exact tier by fingerprint, near tier by bounded path
//    edit distance behind a hard kind+modules gate;
//  * persistence — the TBSIG v1 store round-trips and the daemon's
//    append-only tagging merges at load;
//  * the headline: a 200-seed sweep over FaultInjector-labeled runs
//    asserting clustering precision >= 0.95 and recall >= 0.90 against
//    the injected ground truth, deterministic to the byte.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/FileIO.h"
#include "distributed/ServiceDaemon.h"
#include "reconstruct/Reconstructor.h"
#include "support/MD5.h"
#include "support/Text.h"
#include "support/ThreadPool.h"
#include "triage/Clusterer.h"
#include "triage/SignatureStore.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

std::string tempPath(const char *Name) {
  return std::string("/tmp/tbtest_triage_") + Name;
}

MD5Digest digestOf(const std::string &Text) {
  MD5 Hash;
  Hash.update(Text.data(), Text.size());
  return Hash.final();
}

SnapModuleInfo moduleInfo(const std::string &Name) {
  SnapModuleInfo M;
  M.Name = Name;
  M.Checksum = digestOf(Name);
  M.Instrumented = true;
  return M;
}

TraceEvent lineEvent(const char *Mod, unsigned Line, const char *Fn,
                     uint32_t Repeat = 1, uint32_t Depth = 0,
                     uint64_t Timestamp = 0) {
  TraceEvent E;
  E.EventKind = TraceEvent::Kind::Line;
  E.Module = std::string(Mod);
  E.File = std::string(Mod) + ".ml";
  E.Function = std::string(Fn);
  E.Line = Line;
  E.Repeat = Repeat;
  E.Depth = Depth;
  E.Timestamp = Timestamp;
  return E;
}

/// An Unhandled-fault snap over module "app" with a small main-thread
/// trace; the knobs are the identity fields a signature must ignore.
struct HandMade {
  SnapFile Snap;
  ReconstructedTrace Trace;

  explicit HandMade(uint64_t ThreadId = 1, uint64_t RuntimeId = 100,
                    uint64_t TimestampBase = 0, uint32_t Repeat = 1,
                    uint32_t Depth = 0, const char *MachineName = "host0",
                    uint64_t Pid = 10) {
    Snap.Reason = SnapReason::Unhandled;
    Snap.ProcessName = "app";
    Snap.MachineName = MachineName;
    Snap.Pid = Pid;
    Snap.Modules.push_back(moduleInfo("app"));
    Snap.FaultThread = ThreadId;
    Snap.FaultModuleKey = Snap.Modules[0].Checksum.low64();
    Snap.FaultCodeValue = 1; // access violation

    ThreadTrace T;
    T.ThreadId = ThreadId;
    T.RuntimeId = RuntimeId;
    for (unsigned I = 0; I < 5; ++I)
      T.Events.push_back(lineEvent("app", 10 + I, "main", Repeat, Depth,
                                   TimestampBase + I * 100));
    TraceEvent Exc;
    Exc.EventKind = TraceEvent::Kind::Exception;
    Exc.FaultCodeValue = 1;
    Exc.Timestamp = TimestampBase + 900;
    T.Events.push_back(Exc);
    Trace.Threads.push_back(std::move(T));
  }
};

/// The MISSING-PEER marker exactly as ServiceDaemon::emitMissingPeerMarker
/// builds it: MachineName = absent peer, ProcessName = group, ReasonDetail
/// = peer machine id.
SnapFile missingPeerMarker(const std::string &PeerName,
                           uint64_t PeerMachine) {
  SnapFile S;
  S.Reason = SnapReason::MissingPeer;
  S.ReasonDetail = static_cast<uint16_t>(PeerMachine);
  S.ProcessName = "default";
  S.MachineName = PeerName;
  return S;
}

std::vector<std::string> pathOf(std::initializer_list<const char *> Frames) {
  return std::vector<std::string>(Frames.begin(), Frames.end());
}

} // namespace

//===----------------------------------------------------------------------===//
// Normalization
//===----------------------------------------------------------------------===//

TEST(TriageSignatureTest, IdentityFieldsAreAbstracted) {
  // Same fault, different thread id / runtime id / timestamps / repeat
  // counts / depths / machine / pid: the incidental state that differs
  // between two occurrences of one bug on two machines.
  HandMade A(/*ThreadId=*/1, /*RuntimeId=*/100, /*TimestampBase=*/0,
             /*Repeat=*/1, /*Depth=*/0, "host0", /*Pid=*/10);
  HandMade B(/*ThreadId=*/9, /*RuntimeId=*/777, /*TimestampBase=*/555555,
             /*Repeat=*/40, /*Depth=*/3, "machine-b", /*Pid=*/4242);
  FaultSignature SA = extractSignature(A.Snap, A.Trace);
  FaultSignature SB = extractSignature(B.Snap, B.Trace);
  EXPECT_EQ(SA, SB);
  EXPECT_EQ(SA.fingerprint(), SB.fingerprint());
  EXPECT_EQ(SA.canonicalText(), SB.canonicalText());
  EXPECT_EQ(SA.Kind, "fault:access violation@app");
  ASSERT_FALSE(SA.Path.empty());
  // The normalized frames carry module!file:line function — nothing else.
  EXPECT_EQ(SA.Path.front(), "app!app.ml:10 main");
  EXPECT_EQ(SA.Path.back(), "!exc access violation");
  EXPECT_EQ(SA.Modules, std::vector<std::string>{"app"});
}

TEST(TriageSignatureTest, FaultKindKeepsClassDropsPosition) {
  HandMade A;
  A.Snap.FaultCodeValue = 2; // divide by zero
  A.Trace.Threads[0].Events.back().FaultCodeValue = 2;
  FaultSignature SA = extractSignature(A.Snap, A.Trace);
  EXPECT_EQ(SA.Kind, "fault:integer divide by zero@app");

  // Signals keep the signal number (it is the fault class), not the
  // address-shaped payload.
  HandMade B;
  B.Snap.Reason = SnapReason::Signal;
  B.Snap.FaultCodeValue = 0x8000 | 11;
  FaultSignature SB = extractSignature(B.Snap, B.Trace);
  EXPECT_EQ(SB.Kind, "fault:signal-11@app");

  HandMade C;
  C.Snap.Reason = SnapReason::Hang;
  EXPECT_EQ(extractSignature(C.Snap, C.Trace).Kind, "hang");
}

TEST(TriageSignatureTest, MissingPeerSignatureIsPeerIndependent) {
  // Whichever peer the partition cut off, the signature is the same:
  // peer name and machine id are identity, "a peer is missing" is the
  // fault.
  SnapFile Beta = missingPeerMarker("beta", 2);
  SnapFile Gamma = missingPeerMarker("gamma", 3);
  FaultSignature SB = extractSignature(Beta);
  FaultSignature SG = extractSignature(Gamma);
  EXPECT_EQ(SB.fingerprint(), SG.fingerprint());
  EXPECT_EQ(SB.Kind, "missing-peer");
  EXPECT_EQ(SB.Markers, std::vector<std::string>{"missing-peer"});
  EXPECT_TRUE(SB.Path.empty()) << "marker snaps carry no buffers";
}

TEST(TriageSignatureTest, TopFramesKeepsNewestWindow) {
  HandMade A;
  ThreadTrace &T = A.Trace.Threads[0];
  T.Events.clear();
  for (unsigned I = 0; I < 50; ++I)
    T.Events.push_back(lineEvent("app", 100 + I, "main"));
  SignatureOptions Opts;
  Opts.TopFrames = 8;
  FaultSignature S = extractSignature(A.Snap, A.Trace, Opts);
  ASSERT_EQ(S.Path.size(), 8u);
  EXPECT_EQ(S.Path.front(), "app!app.ml:142 main");
  EXPECT_EQ(S.Path.back(), "app!app.ml:149 main");
}

TEST(TriageSignatureTest, PathComesFromFaultingThreadThenLongest) {
  HandMade A;
  ThreadTrace Other;
  Other.ThreadId = 2;
  for (unsigned I = 0; I < 20; ++I)
    Other.Events.push_back(lineEvent("app", 200 + I, "worker"));
  A.Trace.Threads.push_back(Other);

  // FaultThread recovered: its (shorter) history wins over the longer
  // worker thread.
  FaultSignature S = extractSignature(A.Snap, A.Trace);
  EXPECT_EQ(S.Path.back(), "!exc access violation");

  // FaultThread unknown (post-mortem collection often loses it): the
  // longest recovered thread is the deterministic fallback.
  A.Snap.FaultThread = 999;
  FaultSignature F = extractSignature(A.Snap, A.Trace);
  EXPECT_EQ(F.Path.back(), "app!app.ml:219 worker");
}

TEST(TriageSignatureTest, DegradationMarkersAbstractPosition) {
  HandMade A, B;
  A.Trace.Threads[0].Truncated = true;
  A.Trace.Threads[0].TruncatedAt = 123;
  B.Trace.Threads[0].Truncated = true;
  B.Trace.Threads[0].TruncatedAt = 99999; // Different tear position.
  FaultSignature SA = extractSignature(A.Snap, A.Trace);
  FaultSignature SB = extractSignature(B.Snap, B.Trace);
  EXPECT_EQ(SA.fingerprint(), SB.fingerprint())
      << "the tear's word position is identity, not fault";
  EXPECT_EQ(SA.Markers, pathOf({"ring-wrap", "torn-tail"}));
}

//===----------------------------------------------------------------------===//
// Path edit distance
//===----------------------------------------------------------------------===//

TEST(PathEditDistanceTest, BasicsAndBound) {
  auto P = pathOf({"a", "b", "c", "d"});
  EXPECT_EQ(pathEditDistance(P, P, 8), 0u);
  EXPECT_EQ(pathEditDistance(P, pathOf({"a", "X", "c", "d"}), 8), 1u);
  EXPECT_EQ(pathEditDistance(P, pathOf({"a", "b", "c"}), 8), 1u);
  EXPECT_EQ(pathEditDistance(P, pathOf({"z", "a", "b", "c", "d"}), 8), 1u);
  EXPECT_EQ(pathEditDistance({}, P, 8), 4u);
  // Over the bound: the exact value is irrelevant, only "greater".
  EXPECT_GT(pathEditDistance(P, pathOf({"w", "x", "y", "z"}), 2), 2u);
  // Length difference alone can prove the bound exceeded.
  std::vector<std::string> Long(20, "a");
  EXPECT_GT(pathEditDistance(P, Long, 8), 8u);
}

TEST(PathEditDistanceTest, RotationOfPeriodicPathStaysBounded) {
  // A kill sweep slices a steady-state loop at arbitrary points: the
  // resulting top-of-trace windows are rotations of the loop body. A
  // rotation by k costs at most 2k edits (k deletions + k insertions),
  // which is what sizes the near tier for truncated variants.
  std::vector<std::string> A, B;
  const char *Body[4] = {"l1", "l2", "l3", "l4"};
  for (int I = 0; I < 16; ++I)
    A.push_back(Body[I % 4]);
  for (int I = 2; I < 18; ++I) // Rotated by 2.
    B.push_back(Body[I % 4]);
  EXPECT_LE(pathEditDistance(A, B, 8), 4u);
}

//===----------------------------------------------------------------------===//
// Clustering
//===----------------------------------------------------------------------===//

TEST(ClustererTest, ExactAndNearTiers) {
  HandMade A;
  FaultSignature Base = extractSignature(A.Snap, A.Trace);

  // A torn variant: same fault, last two frames lost, torn-tail marker.
  HandMade T;
  T.Trace.Threads[0].Events.resize(4);
  T.Trace.Threads[0].TruncatedAt = 7;
  FaultSignature Torn = extractSignature(T.Snap, T.Trace);
  ASSERT_NE(Base.fingerprint(), Torn.fingerprint());

  // A different fault in the same module set: kind gate must hold even
  // though the paths are identical.
  HandMade D;
  D.Snap.FaultCodeValue = 2;
  D.Trace.Threads[0].Events.back().FaultCodeValue = 2;
  FaultSignature Div = extractSignature(D.Snap, D.Trace);

  MetricsRegistry Reg;
  SignatureClusterer C({}, &Reg);
  EXPECT_EQ(C.add(Base, "snap0"), 0u);
  EXPECT_EQ(C.add(Base, "snap1"), 0u) << "identical signature: exact tier";
  EXPECT_EQ(C.add(Torn, "snap2"), 0u) << "torn variant: near tier";
  EXPECT_EQ(C.add(Torn, "snap3"), 0u)
      << "second torn copy: exact tier via the near member's fingerprint";
  EXPECT_EQ(C.add(Div, "snap4"), 1u) << "different kind: never merged";
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C.clusters()[0].Count, 4u);
  EXPECT_EQ(C.clusters()[0].ExactCount, 3u);
  EXPECT_EQ(C.clusters()[0].NearCount, 1u);
  EXPECT_EQ(C.clusters()[0].Labels.size(), 4u);
  EXPECT_EQ(Reg.counter("triage.signatures").value(), 5u);
  EXPECT_EQ(Reg.counter("triage.clusters").value(), 2u);
  EXPECT_EQ(Reg.counter("triage.exact_hits").value(), 2u);
  EXPECT_EQ(Reg.counter("triage.near_hits").value(), 1u);
}

TEST(ClustererTest, EmptyPathsNeverNearMatch) {
  // Header-level signatures (daemon ingest) have empty paths; kind+modules
  // alone must not near-merge distinct fingerprints (different markers,
  // say) — there is no path evidence that they are the same fault.
  SnapFile A;
  A.Reason = SnapReason::Hang;
  A.Modules.push_back(moduleInfo("app"));
  SnapFile B = A;
  B.ProcessName = "other";
  FaultSignature SA = extractSignature(A);
  FaultSignature SB = extractSignature(B);
  // Identical canonical content: still lands exact, not near.
  MetricsRegistry Reg;
  SignatureClusterer C({}, &Reg);
  C.add(SA);
  C.add(SB);
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(Reg.counter("triage.near_hits").value(), 0u);

  // Now a genuinely different empty-path signature of the same kind:
  // must open its own cluster, not near-join.
  FaultSignature SC = SA;
  SC.Markers.push_back("missing-peer");
  C.add(SC);
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(Reg.counter("triage.near_hits").value(), 0u);
}

TEST(ClustererTest, NearTierPrefersClosestThenEarliest) {
  FaultSignature A;
  A.Kind = "fault:k@m";
  A.Modules = {"m"};
  A.Path = pathOf({"a", "b", "c", "d", "e", "f"});
  FaultSignature B = A;
  B.Path = pathOf({"a", "b", "c", "x", "y", "z"}); // Distance 3 from A.
  ClusterOptions Tight;
  Tight.NearMaxDistance = 2;
  SignatureClusterer C(Tight, nullptr);
  C.add(A);
  C.add(B);
  ASSERT_EQ(C.size(), 2u) << "distance 3 exceeds the bound of 2";
  // Closest wins: distance 1 from A, 3 from B.
  FaultSignature P1 = A;
  P1.Path = pathOf({"a", "b", "c", "d", "e", "x"});
  EXPECT_EQ(C.add(P1), 0u);
  // Equidistant (2 from both representatives): the earliest cluster
  // wins, so the outcome never depends on arrival interleaving.
  FaultSignature P2 = A;
  P2.Path = pathOf({"a", "b", "c", "d", "y", "x"});
  EXPECT_EQ(C.add(P2), 0u);
}

TEST(ClustererTest, RankedOrderIsCountThenFirstSeen) {
  FaultSignature A, B, C;
  A.Kind = "fault:a@m";
  B.Kind = "fault:b@m";
  C.Kind = "fault:c@m";
  SignatureClusterer Cl;
  Cl.add(A);
  Cl.add(B);
  Cl.add(B);
  Cl.add(C);
  std::vector<size_t> Order = Cl.ranked();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Cl.clusters()[Order[0]].Rep.Kind, "fault:b@m");
  // A and C tie at 1: first seen (A) ranks first — deterministically.
  EXPECT_EQ(Cl.clusters()[Order[1]].Rep.Kind, "fault:a@m");
  EXPECT_EQ(Cl.clusters()[Order[2]].Rep.Kind, "fault:c@m");
}

TEST(ClustererTest, RegressionsAgainstBaseline) {
  HandMade A;
  FaultSignature Known = extractSignature(A.Snap, A.Trace);
  HandMade N;
  N.Snap.FaultCodeValue = 2;
  N.Trace.Threads[0].Events.back().FaultCodeValue = 2;
  FaultSignature Novel = extractSignature(N.Snap, N.Trace);

  SignatureStore Baseline;
  Baseline.add(Known, "runA");

  // Run B sees the known fault (exactly), a torn variant of it (near a
  // baseline entry), and a novel fault.
  HandMade T;
  T.Trace.Threads[0].Events.resize(4);
  T.Trace.Threads[0].TruncatedAt = 3;
  FaultSignature Torn = extractSignature(T.Snap, T.Trace);

  SignatureClusterer C;
  C.add(Known);
  C.add(Novel);
  SignatureClusterer C2;
  C2.add(Torn);
  C2.add(Novel);

  std::vector<size_t> R1 = C.regressionsAgainst(Baseline);
  ASSERT_EQ(R1.size(), 1u);
  EXPECT_EQ(C.clusters()[R1[0]].Rep.Kind, Novel.Kind);

  std::vector<size_t> R2 = C2.regressionsAgainst(Baseline);
  ASSERT_EQ(R2.size(), 1u)
      << "a torn variant of a baseline fault is not a regression";
  EXPECT_EQ(C2.clusters()[R2[0]].Rep.Kind, Novel.Kind);

  // The report carries the regression section.
  std::string Report = renderTriageReport(C, &Baseline);
  EXPECT_NE(Report.find("REGRESSIONS vs baseline"), std::string::npos);
  EXPECT_NE(Report.find("NEW"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Signature store
//===----------------------------------------------------------------------===//

TEST(SignatureStoreTest, SerializeParseRoundTrip) {
  HandMade A;
  FaultSignature S1 = extractSignature(A.Snap, A.Trace);
  SnapFile Marker = missingPeerMarker("beta", 2);
  FaultSignature S2 = extractSignature(Marker);

  SignatureStore Store;
  Store.add(S1, "snap0");
  Store.add(S1, "snap1");
  Store.add(S2, "marker");
  ASSERT_EQ(Store.size(), 2u);
  EXPECT_EQ(Store.totalCount(), 3u);

  std::string Text = Store.serialize();
  SignatureStore Back;
  std::string Error;
  ASSERT_TRUE(SignatureStore::parse(Text, Back, Error)) << Error;
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back.totalCount(), 3u);
  EXPECT_EQ(Back.serialize(), Text) << "round trip must be byte-stable";
  const SignatureStoreEntry *E = Back.byFingerprint(S1.fingerprint());
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Count, 2u);
  EXPECT_EQ(E->Labels, pathOf({"snap0", "snap1"}));
  EXPECT_EQ(E->Sig, S1);
  EXPECT_TRUE(Back.contains(S2.fingerprint()));

  // Malformed inputs fail loudly.
  SignatureStore Bad;
  EXPECT_FALSE(SignatureStore::parse("nonsense", Bad, Error));
  EXPECT_FALSE(SignatureStore::parse("TBSIG v1\nsig 00\nkind x\n", Bad,
                                     Error))
      << "unterminated entry";
  EXPECT_FALSE(
      SignatureStore::parse("TBSIG v1\nkind x\nend\n", Bad, Error))
      << "fields outside an entry";
}

TEST(SignatureStoreTest, AppendOnlyTaggingMergesAtLoad) {
  std::string Path = tempPath("append.tbsig");
  std::remove(Path.c_str());

  HandMade A;
  FaultSignature S1 = extractSignature(A.Snap, A.Trace);
  SnapFile Marker = missingPeerMarker("gamma", 3);
  FaultSignature S2 = extractSignature(Marker);

  // The daemon path: one append per delivered snap, no read-modify-write.
  ASSERT_TRUE(SignatureStore::append(Path, S1, "app"));
  ASSERT_TRUE(SignatureStore::append(Path, S1, "app"));
  ASSERT_TRUE(SignatureStore::append(Path, S2, "default"));

  SignatureStore Back;
  std::string Error;
  ASSERT_TRUE(SignatureStore::load(Path, Back, Error)) << Error;
  ASSERT_EQ(Back.size(), 2u) << "duplicate fingerprints merge at load";
  const SignatureStoreEntry *E = Back.byFingerprint(S1.fingerprint());
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Count, 2u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Real-workload integration
//===----------------------------------------------------------------------===//

namespace {

const char *CrashWorkload = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 60) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  var p = 0;
  print(load(p));
}
)";

/// Runs \p Source to its crash/end and returns the deployment's last
/// snap with its map store kept alive in \p S.
const SnapFile &runToSnap(SingleProcess &S, const char *Source,
                          const char *Name = "app") {
  S.runModule(compileOrDie(Source, Name), /*Instrument=*/true);
  EXPECT_FALSE(S.D.snaps().empty());
  return S.D.snaps().back();
}

} // namespace

TEST(TriageIntegrationTest, SignatureStableAcrossJobsAndCache) {
  SingleProcess S;
  const SnapFile &Snap = runToSnap(S, CrashWorkload);
  ASSERT_EQ(Snap.Reason, SnapReason::Unhandled);

  // jobs {1,4} x cache {on,off}: reconstruction configuration must be
  // invisible in the signature, or triage would split clusters by which
  // collector box processed the snap.
  std::vector<FaultSignature> Sigs;
  for (int Jobs : {1, 4})
    for (bool Cache : {true, false}) {
      ReconstructOptions Opts;
      Opts.Cache.Enabled = Cache;
      Opts.Parallel.Jobs = Jobs;
      Reconstructor R(S.D.maps(), Opts);
      ThreadPool Pool(static_cast<unsigned>(Jobs));
      ReconstructedTrace Trace =
          R.reconstruct(Snap, Jobs > 1 ? &Pool : nullptr);
      Sigs.push_back(extractSignature(Snap, Trace));
    }
  for (size_t I = 1; I < Sigs.size(); ++I) {
    EXPECT_EQ(Sigs[0], Sigs[I]) << "config " << I;
    EXPECT_EQ(Sigs[0].fingerprint(), Sigs[I].fingerprint());
  }
  EXPECT_EQ(Sigs[0].Kind, "fault:access violation@app");
  EXPECT_FALSE(Sigs[0].Path.empty());
}

TEST(TriageIntegrationTest, DaemonTagsSnapsAtIngest) {
  std::string Path = tempPath("daemon.tbsig");
  std::remove(Path.c_str());

  SingleProcess S;
  ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
  ASSERT_NE(Daemon, nullptr);
  ServiceDaemon::IngestOptions IO;
  IO.SignaturePath = Path;
  Daemon->configureIngest(IO);
  S.runModule(compileOrDie(CrashWorkload, "app"), /*Instrument=*/true);
  ASSERT_FALSE(S.D.snaps().empty());

  SignatureStore Store;
  std::string Error;
  ASSERT_TRUE(SignatureStore::load(Path, Store, Error)) << Error;
  EXPECT_EQ(Store.totalCount(), S.D.snaps().size())
      << "every delivered snap gets tagged";
  // Header-level tags: the fault kind and module set are there, the path
  // is not (no mapfiles at the daemon).
  bool SawFault = false;
  for (const SignatureStoreEntry &E : Store.entries()) {
    EXPECT_TRUE(E.Sig.Path.empty());
    if (E.Sig.Kind == "fault:access violation@app")
      SawFault = true;
  }
  EXPECT_TRUE(SawFault);
  EXPECT_GE(MetricsRegistry::global().counter("daemon.triage.tagged").value(),
            Store.totalCount());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Golden fixture
//===----------------------------------------------------------------------===//

TEST(TriageGoldenTest, SignatureAndReportMatchFixture) {
  // A deterministic crash, its canonical signature text, and a small
  // report over {crash x2, torn variant, missing-peer marker}: any change
  // to the normalization rules or report format shows up as a reviewable
  // fixture diff, never as silent drift. Regenerate deliberately with
  // TRACEBACK_REGEN_GOLDEN=1.
  const std::string Path =
      std::string(TB_TESTS_DIR) + "/golden/triage_fixture.txt";

  SingleProcess S;
  const SnapFile &Snap = runToSnap(S, CrashWorkload, "fixtureapp");
  ReconstructedTrace Trace = S.D.reconstruct(Snap);
  FaultSignature Sig = extractSignature(Snap, Trace);

  ReconstructedTrace Torn = Trace;
  for (ThreadTrace &T : Torn.Threads) {
    if (T.Events.size() > 3)
      T.Events.resize(T.Events.size() - 3);
    T.TruncatedAt = 0;
  }
  FaultSignature TornSig = extractSignature(Snap, Torn);
  FaultSignature Marker = extractSignature(missingPeerMarker("beta", 2));

  SignatureClusterer C;
  C.add(Sig, "snap0");
  C.add(Sig, "snap1");
  C.add(TornSig, "snap2");
  C.add(Marker, "marker0");

  std::string Rendered = "== canonical signature ==\n";
  Rendered += Sig.canonicalText();
  Rendered += formatv("fingerprint %016llx\n",
                      static_cast<unsigned long long>(Sig.fingerprint()));
  Rendered += "== triage report ==\n";
  Rendered += renderTriageReport(C);

  if (std::getenv("TRACEBACK_REGEN_GOLDEN")) {
    ASSERT_TRUE(writeFileText(Path, Rendered)) << Path;
    GTEST_SKIP() << "regenerated golden triage fixture " << Path;
  }
  std::string Expected;
  ASSERT_TRUE(readFileText(Path, Expected))
      << "missing fixture " << Path
      << " — regenerate with TRACEBACK_REGEN_GOLDEN=1";
  EXPECT_EQ(Rendered, Expected)
      << "signature normalization or report format drifted from the "
         "golden fixture";
}

//===----------------------------------------------------------------------===//
// The headline: 200-seed labeled precision/recall sweep
//===----------------------------------------------------------------------===//

namespace {

/// One labeled scenario of the sweep. Module names are distinct per
/// scenario so the kind+modules gate is part of what the sweep measures.
struct SweepScenario {
  const char *ModuleName;
  const char *Source;
  bool Kill; ///< Injected kill (near-tier food) vs deterministic crash.
};

const char *SegvWorkload = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 60) {
    x = x * 3 + 1;
    i = i + 1;
    yield();
  }
  var p = 0;
  print(load(p));
}
)";

const char *DivZeroWorkload = R"(
fn main() export {
  var x = 7;
  var i = 0;
  while (i < 60) {
    x = x * 5 + 3;
    i = i + 1;
    yield();
  }
  var z = 0;
  print(x / z);
}
)";

// Short loop bodies keep the rotation distance of sliced kill windows
// well inside the near bound. No yield(): the scheduler's fixed
// instruction quantum then preempts at arbitrary loop phases, so
// different kill slices cut the top-of-trace window at different lines
// (rotated variants — the near tier's food). With a yield() every slice
// boundary would align with it and every kill window would be identical.
const char *KillWorkload1 = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 3000) {
    x = x * 3 + 1;
    i = i + 1;
  }
  print(x);
}
)";

const char *KillWorkload2 = R"(
fn main() export {
  var y = 2;
  var j = 0;
  while (j < 3000) {
    y = y * 7 + 5;
    j = j + 1;
  }
  print(y);
}
)";

const SweepScenario Scenarios[4] = {
    {"appa", SegvWorkload, false},
    {"appb", DivZeroWorkload, false},
    {"appw1", KillWorkload1, true},
    {"appw2", KillWorkload2, true},
};

} // namespace

TEST(TriageSweepTest, LabeledPrecisionRecallSweep) {
  // Ground truth: the FaultInjector plan (or deterministic guest fault)
  // that produced each snap labels it; clustering is scored against those
  // labels pairwise. Precision: of the pairs triage put in one cluster,
  // how many are truly the same fault. Recall: of the truly-same-fault
  // pairs, how many triage reunited.
  const int NumSeeds = 200;

  // Per-scenario golden slice counts scope the kill triggers to the
  // loop's steady state (the second half): a kill during prologue leaves
  // a top-of-trace window the near tier has no business matching.
  uint64_t GoldenSlices[4] = {0, 0, 0, 0};
  for (int Sc = 2; Sc < 4; ++Sc) {
    SingleProcess G;
    EXPECT_EQ(G.runModule(compileOrDie(Scenarios[Sc].Source,
                                       Scenarios[Sc].ModuleName),
                          true),
              World::RunResult::AllExited);
    GoldenSlices[Sc] = G.D.world().slices();
    ASSERT_GT(GoldenSlices[Sc], 20u);
  }

  struct Labeled {
    FaultSignature Sig;
    SnapFile Snap; ///< Kept for the second (re-extraction) pass.
    int Scenario;
  };
  std::vector<Labeled> Collected;
  std::vector<MapFile> ScenarioMaps[4];

  Rng Seeds(testSeed() ^ 0x771a6eULL);

  for (int Run = 0; Run < NumSeeds; ++Run) {
    uint64_t Seed = Seeds.next();
    int Sc = Run % 4;
    const SweepScenario &Scenario = Scenarios[Sc];

    SingleProcess S;
    FaultPlan Plan;
    Plan.Seed = Seed;
    if (Scenario.Kill) {
      // The kill lands in the loop's steady state (the later half of the
      // golden run): prologue slices would leave top-of-trace windows
      // the near tier has no business matching.
      Rng R(Seed);
      uint64_t Half = GoldenSlices[Sc] / 2;
      Plan.Events.push_back(
          {FaultKind::KillProcess, Half + R.below(Half), 0});
    }
    FaultInjector FI(Plan);
    if (Scenario.Kill)
      S.D.world().Injector = &FI;
    S.runModule(compileOrDie(Scenario.Source, Scenario.ModuleName), true);

    SnapFile Snap;
    if (Scenario.Kill) {
      ASSERT_TRUE(S.P->HardKilled) << "seed " << Seed;
      auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
      ASSERT_EQ(PM.size(), 1u) << "seed " << Seed;
      Snap = *PM[0];
    } else {
      // The unhandled-fault snap (the run also leaves an Exception snap;
      // one per run keeps the pair counting honest).
      bool Found = false;
      for (const SnapFile &Sn : S.D.snaps())
        if (Sn.Reason == SnapReason::Unhandled) {
          Snap = Sn;
          Found = true;
        }
      ASSERT_TRUE(Found) << "seed " << Seed;
    }
    if (ScenarioMaps[Sc].empty())
      for (const MapFile &M : S.D.maps().all())
        ScenarioMaps[Sc].push_back(M);

    ReconstructedTrace Trace = S.D.reconstruct(Snap);
    Labeled L;
    L.Sig = extractSignature(Snap, Trace);
    if (Scenario.Kill && L.Sig.Path.empty())
      continue; // Killed before any commit: nothing to triage.
    L.Snap = Snap;
    L.Scenario = Sc;
    Collected.push_back(std::move(L));
  }
  ASSERT_GT(Collected.size(), 180u)
      << "second-half kill triggers should almost always leave a trace";

  // Cluster in arrival order.
  MetricsRegistry Reg;
  SignatureClusterer Clusterer({}, &Reg);
  std::vector<size_t> ClusterOf;
  for (const Labeled &L : Collected)
    ClusterOf.push_back(
        Clusterer.add(L.Sig, formatv("s%d", L.Scenario)));
  EXPECT_EQ(Reg.counter("triage.signatures").value(), Collected.size());
  EXPECT_GT(Reg.counter("triage.near_hits").value(), 0u)
      << "kill scenarios must exercise the near tier";

  // Pairwise precision / recall against the injected ground truth.
  uint64_t SameClusterSameLabel = 0, SameClusterPairs = 0,
           SameLabelPairs = 0;
  for (size_t I = 0; I < Collected.size(); ++I)
    for (size_t J = I + 1; J < Collected.size(); ++J) {
      bool SameCluster = ClusterOf[I] == ClusterOf[J];
      bool SameLabel = Collected[I].Scenario == Collected[J].Scenario;
      SameClusterPairs += SameCluster;
      SameLabelPairs += SameLabel;
      SameClusterSameLabel += SameCluster && SameLabel;
    }
  ASSERT_GT(SameClusterPairs, 0u);
  ASSERT_GT(SameLabelPairs, 0u);
  double Precision = static_cast<double>(SameClusterSameLabel) /
                     static_cast<double>(SameClusterPairs);
  double Recall = static_cast<double>(SameClusterSameLabel) /
                  static_cast<double>(SameLabelPairs);
  std::printf("[ triage sweep: %zu snaps, %zu clusters, precision %.4f, "
              "recall %.4f ]\n",
              Collected.size(), Clusterer.size(), Precision, Recall);
  EXPECT_GE(Precision, 0.95)
      << "different injected faults are being merged";
  EXPECT_GE(Recall, 0.90) << "same injected fault is being split";

  // Determinism: re-extract every signature from the kept snap bytes
  // under a different reconstruction configuration (4 jobs, cache off)
  // and re-cluster — the rendered report must be byte-identical. This is
  // the "same seeds => byte-identical triage report" guarantee, and at
  // sweep scale it subsumes the jobs/cache stability property.
  std::string ReportA = renderTriageReport(Clusterer);
  MapFileStore Stores[4];
  for (int Sc = 0; Sc < 4; ++Sc)
    for (const MapFile &M : ScenarioMaps[Sc])
      Stores[Sc].add(M);
  ReconstructOptions Opts;
  Opts.Cache.Enabled = false;
  Opts.Parallel.Jobs = 4;
  ThreadPool Pool(4);
  SignatureClusterer Clusterer2;
  for (const Labeled &L : Collected) {
    Reconstructor R(Stores[L.Scenario], Opts);
    ReconstructedTrace Trace = R.reconstruct(L.Snap, &Pool);
    FaultSignature Sig = extractSignature(L.Snap, Trace);
    EXPECT_EQ(Sig.fingerprint(), L.Sig.fingerprint())
        << "signature changed across reconstruction configs";
    Clusterer2.add(Sig, formatv("s%d", L.Scenario));
  }
  std::string ReportB = renderTriageReport(Clusterer2);
  EXPECT_EQ(ReportA, ReportB)
      << "triage report must be byte-identical across reconstruction "
         "configurations";

  // And the store round-trips the whole sweep byte-stably.
  SignatureStore Store;
  for (const Labeled &L : Collected)
    Store.add(L.Sig, formatv("s%d", L.Scenario));
  std::string Text = Store.serialize();
  SignatureStore Back;
  std::string Error;
  ASSERT_TRUE(SignatureStore::parse(Text, Back, Error)) << Error;
  EXPECT_EQ(Back.serialize(), Text);
}
