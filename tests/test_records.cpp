//===- tests/test_records.cpp - Trace record format tests -----------------===//
//
// Part of the TraceBack reproduction project (paper Figure 1).
//
//===----------------------------------------------------------------------===//

#include "runtime/TraceRecord.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace traceback;

TEST(RecordTest, DagRecordFields) {
  uint32_t W = makeDagRecord(0x12345);
  EXPECT_TRUE(isDagRecord(W));
  EXPECT_EQ(dagIdOfRecord(W), 0x12345u);
  EXPECT_EQ(pathBitsOfRecord(W), 0u);
  W |= 0x2A5; // Lightweight probes OR bits in.
  EXPECT_EQ(dagIdOfRecord(W), 0x12345u);
  EXPECT_EQ(pathBitsOfRecord(W), 0x2A5u);
}

TEST(RecordTest, ReservedWordsAreDistinct) {
  // The sentinel is not a DAG record; invalid is neither.
  EXPECT_FALSE(isDagRecord(SentinelRecord));
  EXPECT_FALSE(isDagRecord(InvalidRecord));
  EXPECT_FALSE(isExtHeader(InvalidRecord));
  EXPECT_FALSE(isExtHeader(SentinelRecord));
  EXPECT_FALSE(isExtContinuation(SentinelRecord));
  // A bad-DAG record (masks cleared) can never alias the sentinel.
  uint32_t Bad = makeDagRecord(BadDagId);
  EXPECT_NE(Bad, SentinelRecord);
  EXPECT_TRUE(isDagRecord(Bad));
  // ... but a bad-DAG record with all path bits set WOULD alias it; the
  // runtime prevents that by zeroing lightweight masks.
  EXPECT_EQ(Bad | 0x3FF, SentinelRecord);
}

TEST(RecordTest, ExtRecordRoundTrip) {
  Rng Rand(3);
  for (int Case = 0; Case < 500; ++Case) {
    ExtRecord R;
    R.Type = static_cast<ExtType>(1 + Rand.below(7));
    R.Inline = static_cast<uint16_t>(Rand.next());
    size_t N = Rand.below(5);
    for (size_t I = 0; I < N; ++I)
      R.Payload.push_back(Rand.next());
    std::vector<uint32_t> Words = encodeExtRecord(R);
    ASSERT_EQ(Words.size(), 1 + 3 * N);
    ASSERT_TRUE(isExtHeader(Words[0]));
    for (size_t I = 1; I < Words.size(); ++I) {
      EXPECT_TRUE(isExtContinuation(Words[I]));
      EXPECT_FALSE(isDagRecord(Words[I]));
      EXPECT_NE(Words[I], SentinelRecord);
      EXPECT_NE(Words[I], InvalidRecord);
    }
    ExtRecord Back;
    size_t Pos = 0;
    ASSERT_TRUE(decodeExtRecord(Words.data(), Words.size(), Pos, Back));
    EXPECT_EQ(Pos, Words.size());
    EXPECT_EQ(Back.Type, R.Type);
    EXPECT_EQ(Back.Inline, R.Inline);
    EXPECT_EQ(Back.Payload, R.Payload);
  }
}

TEST(RecordTest, PayloadCannotForgeControlWords) {
  // Even adversarial payload values can never produce a sentinel or an
  // invalid word — this is what makes seam repair possible.
  ExtRecord R;
  R.Type = ExtType::Sync;
  R.Payload = {0, UINT64_MAX, 0xFFFFFFFFull, 0x8000000000000000ull};
  for (uint32_t W : encodeExtRecord(R)) {
    EXPECT_NE(W, SentinelRecord);
    EXPECT_NE(W, InvalidRecord);
  }
}

TEST(RecordTest, TruncatedExtRecordRejected) {
  ExtRecord R;
  R.Type = ExtType::ThreadStart;
  R.Payload = {42, 43};
  std::vector<uint32_t> Words = encodeExtRecord(R);
  ExtRecord Back;
  size_t Pos = 0;
  EXPECT_FALSE(decodeExtRecord(Words.data(), Words.size() - 1, Pos, Back));
  EXPECT_EQ(Pos, 0u) << "position must not advance on failure";
  // Corrupt a continuation word into a DAG record.
  Words[2] = makeDagRecord(5);
  Pos = 0;
  EXPECT_FALSE(decodeExtRecord(Words.data(), Words.size(), Pos, Back));
}
