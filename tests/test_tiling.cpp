//===- tests/test_tiling.cpp - DAG tiling tests ---------------------------===//
//
// Part of the TraceBack reproduction project (paper section 2.1).
//
//===----------------------------------------------------------------------===//

#include "instrument/DagTiling.h"
#include "instrument/Instrumenter.h"
#include "instrument/MapFile.h"
#include "isa/Assembler.h"
#include "lang/CodeGen.h"
#include "reconstruct/Reconstructor.h"
#include "support/Random.h"
#include "vm/Syscalls.h"

#include <gtest/gtest.h>

using namespace traceback;

namespace {
std::vector<FunctionCFG> cfgsOf(const Module &M) {
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  EXPECT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  return CFGs;
}

Module assemble(const std::string &Src) {
  Assembler Asm(syscallAssemblerConstants());
  Module M;
  std::string Error;
  EXPECT_TRUE(Asm.assemble(Src, M, Error)) << Error;
  return M;
}

/// Generates a random structured MiniLang function body (structured
/// control flow gives realistic reducible CFGs).
std::string randomBody(Rng &Rand, int Depth) {
  std::string S;
  int Stmts = 1 + static_cast<int>(Rand.below(4));
  for (int I = 0; I < Stmts; ++I) {
    switch (Rand.below(Depth > 2 ? 2 : 4)) {
    case 0:
      S += "x = x + " + std::to_string(Rand.below(9)) + ";\n";
      break;
    case 1:
      S += "y = y * 2 + x % 7;\n";
      break;
    case 2:
      S += "if (x % " + std::to_string(2 + Rand.below(5)) + " == 0) {\n" +
           randomBody(Rand, Depth + 1) + "} else {\n" +
           randomBody(Rand, Depth + 1) + "}\n";
      break;
    case 3:
      S += "while (y > " + std::to_string(Rand.below(50)) + ") {\n" +
           randomBody(Rand, Depth + 1) + "y = y / 2;\n}\n";
      break;
    }
  }
  return S;
}
} // namespace

TEST(TilingTest, InvariantsOnStructuredCode) {
  Rng Rand(99);
  for (int Case = 0; Case < 30; ++Case) {
    std::string Source = "fn f(x) {\nvar y = x + 1;\n" +
                         randomBody(Rand, 0) + "return y;\n}\n";
    Module M;
    std::string Error;
    ASSERT_TRUE(minilang::compileMiniLang(Source, "r.ml", "m",
                                          Technology::Native, M, Error))
        << Error << "\n" << Source;
    for (const FunctionCFG &F : cfgsOf(M)) {
      TileOptions Opts;
      FunctionTiling T = tileFunction(F, Opts);
      std::string Violation = checkTilingInvariants(F, T, Opts);
      EXPECT_TRUE(Violation.empty()) << Violation << "\n" << Source;
    }
  }
}

TEST(TilingTest, SmallerBitBudgetMakesMoreDags) {
  Module M;
  std::string Error;
  std::string Source = R"(
fn f(x) {
  var y = 0;
  if (x > 1) { y = 1; } else { y = 2; }
  if (x > 2) { y = y + 1; } else { y = y + 2; }
  if (x > 3) { y = y + 1; } else { y = y + 2; }
  if (x > 4) { y = y + 1; } else { y = y + 2; }
  return y;
}
)";
  ASSERT_TRUE(minilang::compileMiniLang(Source, "r.ml", "m",
                                        Technology::Native, M, Error));
  std::vector<FunctionCFG> CFGs = cfgsOf(M);
  const FunctionCFG *F = nullptr;
  for (const FunctionCFG &C : CFGs)
    if (C.Name == "f")
      F = &C;
  ASSERT_NE(F, nullptr);
  TileOptions Wide, Narrow;
  Wide.PathBits = 10;
  Narrow.PathBits = 2;
  size_t WideDags = tileFunction(*F, Wide).Dags.size();
  size_t NarrowDags = tileFunction(*F, Narrow).Dags.size();
  EXPECT_GT(NarrowDags, WideDags);
  EXPECT_TRUE(
      checkTilingInvariants(*F, tileFunction(*F, Narrow), Narrow).empty());
}

TEST(TilingTest, MandatoryHeaderSites) {
  Module M = assemble(R"(.module m
.func f export
  call g
  movi r1, 1
head:
  addi r1, r1, -1
  brnz r1, head
  ret
.endfunc
.func g
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs = cfgsOf(M);
  for (const FunctionCFG &F : CFGs) {
    FunctionTiling T = tileFunction(F, TileOptions());
    for (const BasicBlock &B : F.Blocks) {
      if (B.IsFunctionEntry || B.IsCallReturnPoint || B.IsBackEdgeTarget)
        EXPECT_TRUE(T.isHeader(B.Index))
            << F.Name << " block " << B.Index;
    }
  }
}

TEST(TilingTest, NoCallHeadersWhenDisabled) {
  Module M = assemble(R"(.module m
.func f export
  call g
  movi r1, 1
  ret
.endfunc
.func g
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs = cfgsOf(M);
  TileOptions NoCallBreaks;
  NoCallBreaks.HeadersAtCallReturns = false;
  for (const FunctionCFG &F : CFGs) {
    if (F.Name != "f")
      continue;
    FunctionTiling T = tileFunction(F, NoCallBreaks);
    EXPECT_EQ(T.Dags.size(), 1u)
        << "without call breaks, f is a single DAG";
  }
}

TEST(TilingTest, EveryBlockHeaderMode) {
  Module M = assemble(R"(.module m
.func f export
  brz r0, a
  movi r1, 1
a:
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs = cfgsOf(M);
  TileOptions Naive;
  Naive.EveryBlockIsHeader = true;
  for (const FunctionCFG &F : CFGs) {
    FunctionTiling T = tileFunction(F, Naive);
    EXPECT_EQ(T.Dags.size(), F.Blocks.size());
    EXPECT_TRUE(checkTilingInvariants(F, T, Naive).empty());
  }
}

// ---------------------------------------------------------------------------
// Path decode: bit-set -> unique path.
// ---------------------------------------------------------------------------

namespace {
/// Builds a MapDag from an adjacency description. Bit indices follow the
/// order blocks are listed (header first, bitless blocks marked -1).
MapDag makeDag(const std::vector<std::pair<int, std::vector<uint16_t>>> &Blocks) {
  MapDag D;
  for (const auto &[Bit, Succs] : Blocks) {
    MapBlock B;
    B.BitIndex = static_cast<int8_t>(Bit);
    B.Succs = Succs;
    D.Blocks.push_back(B);
  }
  return D;
}
} // namespace

TEST(PathDecodeTest, DiamondPaths) {
  // 0 -> {1, 2} -> 3 (classic diamond; 3 has a bit because its preds
  // branch).
  MapDag D = makeDag({{-1, {1, 2}}, {0, {3}}, {1, {3}}, {2, {}}});
  EXPECT_EQ(decodeDagPath(D, 0b001 | 0b100),
            (std::vector<uint16_t>{0, 1, 3}));
  EXPECT_EQ(decodeDagPath(D, 0b010 | 0b100),
            (std::vector<uint16_t>{0, 2, 3}));
  // Partial execution: crashed inside block 1 before reaching 3.
  EXPECT_EQ(decodeDagPath(D, 0b001), (std::vector<uint16_t>{0, 1}));
  // Header only.
  EXPECT_EQ(decodeDagPath(D, 0), (std::vector<uint16_t>{0}));
  // Inconsistent bits (both arms) decode to nothing.
  EXPECT_TRUE(decodeDagPath(D, 0b011).empty());
}

TEST(PathDecodeTest, ReconvergentChain) {
  // 0 -> {1, 2}; 1 -> 2 (2 reachable two ways: needs a bit; path with both
  // arms is the 0,1,2 path).
  MapDag D = makeDag({{-1, {1, 2}}, {0, {2}}, {1, {}}});
  EXPECT_EQ(decodeDagPath(D, 0b11), (std::vector<uint16_t>{0, 1, 2}));
  EXPECT_EQ(decodeDagPath(D, 0b10), (std::vector<uint16_t>{0, 2}));
  EXPECT_EQ(decodeDagPath(D, 0b01), (std::vector<uint16_t>{0, 1}));
}

TEST(PathDecodeTest, ImpliedBlocksFilledIn) {
  // 0 -> 1 (no bit, single succ chain) -> 2 (no bit) — pure fallthrough.
  MapDag D = makeDag({{-1, {1}}, {-1, {2}}, {-1, {}}});
  EXPECT_EQ(decodeDagPath(D, 0), (std::vector<uint16_t>{0, 1, 2}));
}

TEST(PathDecodeTest, RandomDagsDecodeUniquely) {
  // Property: for random DAG shapes built by the real tiler over random
  // structured code, every root path's bit-set decodes back to that path.
  Rng Rand(123);
  for (int Case = 0; Case < 20; ++Case) {
    std::string Source = "fn f(x) {\nvar y = x;\n" + randomBody(Rand, 0) +
                         "return y;\n}\n";
    Module M;
    std::string Error;
    ASSERT_TRUE(minilang::compileMiniLang(Source, "r.ml", "m",
                                          Technology::Native, M, Error));
    Module Instr;
    MapFile Map;
    InstrumentOptions Opts;
    ASSERT_TRUE(
        instrumentModule(M, Opts, Instr, Map, nullptr, Error))
        << Error;
    for (const MapDag &D : Map.Dags) {
      // Enumerate all root paths by DFS.
      struct Enum {
        const MapDag &D;
        int Checked = 0;
        void walk(uint16_t Cur, uint32_t Bits,
                  std::vector<uint16_t> &Path) {
          // Check this prefix decodes to itself (prefixes model partial
          // execution).
          std::vector<uint16_t> Got = decodeDagPath(D, Bits);
          ASSERT_FALSE(Got.empty());
          // The decode may extend through implied blocks; our enumerated
          // path must be a prefix of the decode or equal after implied
          // extension.
          ASSERT_LE(Path.size(), Got.size());
          for (size_t I = 0; I < Path.size(); ++I)
            ASSERT_EQ(Got[I], Path[I]);
          // The extension beyond the prefix must be bit-free.
          for (size_t I = Path.size(); I < Got.size(); ++I)
            ASSERT_EQ(D.Blocks[Got[I]].BitIndex, -1);
          if (++Checked > 300)
            return; // Bound the walk.
          for (uint16_t S : D.Blocks[Cur].Succs) {
            uint32_t NewBits = Bits;
            if (D.Blocks[S].BitIndex >= 0)
              NewBits |= 1u << D.Blocks[S].BitIndex;
            Path.push_back(S);
            walk(S, NewBits, Path);
            Path.pop_back();
          }
        }
      };
      Enum E{D};
      std::vector<uint16_t> Path{0};
      E.walk(0, 0, Path);
    }
  }
}
