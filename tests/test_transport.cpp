//===- tests/test_transport.cpp - Snap transport + network chaos ----------===//
//
// Part of the TraceBack reproduction project.
//
// The fault-tolerant cross-machine snap transport: frame codec hardening
// (truncation, bit flips, oversized lengths), reliable exactly-once
// delivery under drop/duplicate/reorder/delay faults, partition detection
// that degrades group snaps to partial snaps instead of hanging, and a
// 200-seed deterministic chaos sweep. Runs in the `network` ctest label;
// seeds replay via TRACEBACK_TEST_SEED.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "distributed/Transport.h"
#include "distributed/Wire.h"
#include "reconstruct/Stitch.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

WireFrame makeFrame(FrameType Type, uint64_t Seq,
                    std::vector<uint8_t> Payload) {
  WireFrame F;
  F.Type = Type;
  F.SrcMachine = 1;
  F.DstMachine = 2;
  F.Seq = Seq;
  F.AckSeq = Seq ? Seq - 1 : 0;
  F.Payload = std::move(Payload);
  return F;
}

/// A bare two-machine fabric with one endpoint per machine — no guests,
/// no daemons, just the reliability layer under test.
struct Fabric {
  World W;
  MetricsRegistry Reg;
  Machine *MA, *MB;
  TransportEndpoint A, B;
  std::vector<std::vector<uint8_t>> GotB; ///< Payloads B delivered, in order.

  Fabric()
      : MA(W.createMachine("a", "simos", 0, 1, 1)),
        MB(W.createMachine("b", "simos", 0, 1, 1)), A(W, MA->Id, &Reg),
        B(W, MB->Id, &Reg) {
    B.Handler = [this](const WireFrame &F) { GotB.push_back(F.Payload); };
  }

  bool quiet() const {
    return A.inFlightTotal() == 0 && B.inFlightTotal() == 0 &&
           W.netQueued(MA->Id) == 0 && W.netQueued(MB->Id) == 0;
  }

  bool pumpUntilQuiet(uint64_t MaxCycles = 4'000'000) {
    uint64_t Start = W.cycles();
    for (;;) {
      A.pump();
      B.pump();
      if (quiet())
        return true;
      if (W.cycles() - Start >= MaxCycles)
        return false;
      W.advanceIdle(500);
    }
  }

  /// Pumps for a fixed span of idle time regardless of quiescence.
  void pumpFor(uint64_t Cycles) {
    for (uint64_t T = 0; T < Cycles; T += 500) {
      A.pump();
      B.pump();
      W.advanceIdle(500);
    }
    A.pump();
    B.pump();
  }

  std::vector<uint8_t> payload(uint8_t Tag) const {
    return {Tag, 0x7b, static_cast<uint8_t>(Tag ^ 0xff)};
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

TEST(WireFrameTest, RoundTripAllTypes) {
  for (FrameType Type :
       {FrameType::Ack, FrameType::SnapPush, FrameType::GroupSnapRequest,
        FrameType::GroupSnapAck, FrameType::Heartbeat}) {
    WireFrame In = makeFrame(Type, 5, {1, 2, 3, 4, 5});
    In.SrcMachine = 0x1122334455667788ull;
    In.DstMachine = 42;
    In.AckSeq = 17;
    std::vector<uint8_t> Bytes;
    encodeFrame(In, Bytes);
    WireFrame Out;
    std::string Error;
    ASSERT_TRUE(decodeFrame(Bytes, Out, Error)) << Error;
    EXPECT_EQ(Out.Type, In.Type);
    EXPECT_EQ(Out.SrcMachine, In.SrcMachine);
    EXPECT_EQ(Out.DstMachine, In.DstMachine);
    EXPECT_EQ(Out.Seq, In.Seq);
    EXPECT_EQ(Out.AckSeq, In.AckSeq);
    EXPECT_EQ(Out.Payload, In.Payload);
  }
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  WireFrame In = makeFrame(FrameType::Ack, 0, {});
  std::vector<uint8_t> Bytes;
  encodeFrame(In, Bytes);
  WireFrame Out;
  std::string Error;
  ASSERT_TRUE(decodeFrame(Bytes, Out, Error)) << Error;
  EXPECT_TRUE(Out.Payload.empty());
}

TEST(WireFrameTest, PayloadCodecsRoundTrip) {
  GroupSnapRequestMsg Req;
  Req.RequestId = 99;
  Req.Group = "checkout";
  Req.ExceptPid = 1234;
  std::vector<uint8_t> Bytes;
  encodeGroupSnapRequest(Req, Bytes);
  GroupSnapRequestMsg Req2;
  ASSERT_TRUE(decodeGroupSnapRequest(Bytes, Req2));
  EXPECT_EQ(Req2.RequestId, 99u);
  EXPECT_EQ(Req2.Group, "checkout");
  EXPECT_EQ(Req2.ExceptPid, 1234u);

  GroupSnapAckMsg Ack;
  Ack.RequestId = 99;
  Ack.SnapsTaken = 3;
  Bytes.clear();
  encodeGroupSnapAck(Ack, Bytes);
  GroupSnapAckMsg Ack2;
  ASSERT_TRUE(decodeGroupSnapAck(Bytes, Ack2));
  EXPECT_EQ(Ack2.RequestId, 99u);
  EXPECT_EQ(Ack2.SnapsTaken, 3u);

  HeartbeatMsg HB;
  HB.DaemonClock = 777;
  HB.WatchedProcesses = 2;
  Bytes.clear();
  encodeHeartbeat(HB, Bytes);
  HeartbeatMsg HB2;
  ASSERT_TRUE(decodeHeartbeat(Bytes, HB2));
  EXPECT_EQ(HB2.DaemonClock, 777u);
  EXPECT_EQ(HB2.WatchedProcesses, 2u);

  // Truncated payloads fail cleanly in every codec.
  Bytes.clear();
  encodeGroupSnapRequest(Req, Bytes);
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    GroupSnapRequestMsg Tmp;
    EXPECT_FALSE(decodeGroupSnapRequest(Cut, Tmp));
  }
}

TEST(WireFrameTest, EveryTruncationIsRejected) {
  WireFrame In = makeFrame(FrameType::SnapPush, 7, {9, 8, 7, 6, 5, 4, 3});
  std::vector<uint8_t> Bytes;
  encodeFrame(In, Bytes);
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Cut, Out, Error)) << "prefix length " << Len;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(WireFrameTest, EverySingleBitFlipIsRejected) {
  // The checksum covers header fields and payload; FNV-1a's per-byte steps
  // are bijective, so any single corrupted byte must change the sum. A
  // flip inside the stored checksum itself mismatches the recomputation.
  WireFrame In = makeFrame(FrameType::GroupSnapRequest, 3, {0xde, 0xad, 0});
  std::vector<uint8_t> Bytes;
  encodeFrame(In, Bytes);
  for (size_t Bit = 0; Bit < Bytes.size() * 8; ++Bit) {
    std::vector<uint8_t> Hit = Bytes;
    Hit[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Hit, Out, Error)) << "bit " << Bit;
  }
}

TEST(WireFrameTest, OversizedLengthFieldIsRejected) {
  WireFrame In = makeFrame(FrameType::SnapPush, 1, {1, 2, 3});
  std::vector<uint8_t> Bytes;
  encodeFrame(In, Bytes);
  // The payload-length field sits after magic(4) version(2) type(2) and
  // four u64 fields; patch it to huge values. The decoder must reject
  // without ever allocating toward the claimed size.
  const size_t LenOff = 4 + 2 + 2 + 8 * 4;
  for (uint32_t Claim : {0xffffffffu, MaxFramePayload + 1, 0x40000000u}) {
    std::vector<uint8_t> Hit = Bytes;
    for (int I = 0; I < 4; ++I)
      Hit[LenOff + I] = static_cast<uint8_t>(Claim >> (8 * I));
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Hit, Out, Error));
  }
}

TEST(WireFrameTest, RandomMutationFuzzNeverCrashes) {
  Rng Seeds(testSeed() ^ 0x7afe);
  WireFrame In = makeFrame(FrameType::SnapPush, 11,
                           std::vector<uint8_t>(64, 0x5a));
  std::vector<uint8_t> Clean;
  encodeFrame(In, Clean);
  for (int Round = 0; Round < 400; ++Round) {
    Rng R(Seeds.next());
    std::vector<uint8_t> Hit = Clean;
    // Resize, splice and flip: the weather a hostile or damaged link
    // produces. Decoding must fail or succeed, never crash or overread.
    if (R.chance(1, 3))
      Hit.resize(R.below(Hit.size() + 16));
    unsigned Flips = 1 + static_cast<unsigned>(R.below(12));
    for (unsigned I = 0; I < Flips && !Hit.empty(); ++I)
      Hit[R.below(Hit.size())] ^= static_cast<uint8_t>(1u << R.below(8));
    WireFrame Out;
    std::string Error;
    (void)decodeFrame(Hit, Out, Error);
  }
}

//===----------------------------------------------------------------------===//
// Reliability layer
//===----------------------------------------------------------------------===//

TEST(TransportTest, InOrderExactlyOnceDelivery) {
  Fabric F;
  const unsigned N = 20;
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(F.A.send(FrameType::SnapPush, F.MB->Id,
                       F.payload(static_cast<uint8_t>(I))),
              I + 1);
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), N);
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(F.GotB[I], F.payload(static_cast<uint8_t>(I))) << I;
  EXPECT_EQ(F.A.ackedDelivered(F.MB->Id), N);
  EXPECT_EQ(F.B.deliveredFrom(F.MA->Id), N);
  EXPECT_EQ(F.A.lostFrames(F.MB->Id), 0u);
}

TEST(TransportTest, RetryRecoversFromDrops) {
  Fabric F;
  FaultPlan Plan;
  Plan.Seed = 1;
  // Drop the first transmission of the first three data frames.
  Plan.Events.push_back({FaultKind::NetDrop, 0, 0});
  Plan.Events.push_back({FaultKind::NetDrop, 1, 0});
  Plan.Events.push_back({FaultKind::NetDrop, 2, 0});
  FaultInjector FI(Plan, &F.Reg);
  F.W.Injector = &FI;
  for (uint8_t I = 0; I < 5; ++I)
    F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I));
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 5u);
  for (uint8_t I = 0; I < 5; ++I)
    EXPECT_EQ(F.GotB[I], F.payload(I));
  EXPECT_EQ(F.A.ackedDelivered(F.MB->Id), 5u);
  EXPECT_GE(F.Reg.counter("daemon.net.frames_retried").value(), 3u);
  EXPECT_TRUE(FI.allFired());
}

TEST(TransportTest, DuplicatesAreDiscarded) {
  Fabric F;
  FaultPlan Plan;
  Plan.Seed = 2;
  Plan.Events.push_back({FaultKind::NetDup, 0, 0});
  Plan.Events.push_back({FaultKind::NetDup, 1, 0});
  FaultInjector FI(Plan, &F.Reg);
  F.W.Injector = &FI;
  for (uint8_t I = 0; I < 4; ++I)
    F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I));
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 4u) << "duplicates must not double-deliver";
  EXPECT_GE(F.Reg.counter("daemon.net.dups_discarded").value(), 2u);
}

TEST(TransportTest, ReorderedFramesDeliverInOrder) {
  Fabric F;
  FaultPlan Plan;
  Plan.Seed = 3;
  Plan.Events.push_back({FaultKind::NetReorder, 0, 0});
  Plan.Events.push_back({FaultKind::NetReorder, 2, 0});
  FaultInjector FI(Plan, &F.Reg);
  F.W.Injector = &FI;
  for (uint8_t I = 0; I < 6; ++I)
    F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I));
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 6u);
  for (uint8_t I = 0; I < 6; ++I)
    EXPECT_EQ(F.GotB[I], F.payload(I)) << "reorder hold must restore order";
}

TEST(TransportTest, DelayedFramesStillDeliver) {
  Fabric F;
  FaultPlan Plan;
  Plan.Seed = 4;
  Plan.Events.push_back({FaultKind::NetDelay, 1, 40000});
  FaultInjector FI(Plan, &F.Reg);
  F.W.Injector = &FI;
  for (uint8_t I = 0; I < 3; ++I)
    F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I));
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 3u);
  for (uint8_t I = 0; I < 3; ++I)
    EXPECT_EQ(F.GotB[I], F.payload(I));
}

TEST(TransportTest, PartitionDetectedWithoutHanging) {
  Fabric F;
  F.W.netSetPartitioned(F.MA->Id, F.MB->Id, true);
  for (uint8_t I = 0; I < 3; ++I)
    EXPECT_NE(F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I)), 0u);
  // The retry budget burns down in bounded time; no quiescence until the
  // verdict lands, then the channel is idle.
  ASSERT_TRUE(F.pumpUntilQuiet());
  EXPECT_TRUE(F.A.peerUnreachable(F.MB->Id));
  EXPECT_EQ(F.A.lostFrames(F.MB->Id), 3u);
  EXPECT_EQ(F.A.ackedDelivered(F.MB->Id), 0u);
  EXPECT_TRUE(F.GotB.empty());
  // While unreachable, sends are refused — callers degrade, not block.
  EXPECT_EQ(F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(9)), 0u);
  EXPECT_GE(F.Reg.counter("daemon.net.sends_refused").value(), 1u);
}

TEST(TransportTest, HealedChannelRecoversViaGapSkip) {
  Fabric F;
  F.W.netSetPartitioned(F.MA->Id, F.MB->Id, true);
  for (uint8_t I = 0; I < 3; ++I)
    F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(I));
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_TRUE(F.A.peerUnreachable(F.MB->Id));

  // Heal. The sender wrote seqs 1..3 off; the next frame is seq 4, which
  // the receiver must NOT hold hostage forever waiting for lost history.
  F.W.netHealAll();
  F.A.resetPeer(F.MB->Id);
  EXPECT_EQ(F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(42)), 4u);
  // The receiver's gap timeout deliberately exceeds the sender's whole
  // retry horizon, so give the channel two full horizons to resync.
  F.pumpFor(2 * (F.A.Opt.MaxAttempts + 2) * F.A.Opt.RetryCap);
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 1u) << "gap skip must deliver exactly once";
  EXPECT_EQ(F.GotB[0], F.payload(42));
  EXPECT_GE(F.Reg.counter("daemon.net.gap_skips").value(), 1u);
  // The invariant, not the optimistic count: frames the sender counts as
  // acked-and-delivered never exceed what the receiver actually took.
  EXPECT_LE(F.A.ackedDelivered(F.MB->Id), F.B.deliveredFrom(F.MA->Id));
  // The skip-ack's arrival is evidence of life: the verdict is cleared
  // and subsequent traffic flows normally again.
  EXPECT_FALSE(F.A.peerUnreachable(F.MB->Id));
  EXPECT_NE(F.A.send(FrameType::SnapPush, F.MB->Id, F.payload(43)), 0u);
  ASSERT_TRUE(F.pumpUntilQuiet());
  ASSERT_EQ(F.GotB.size(), 2u);
  EXPECT_EQ(F.GotB[1], F.payload(43));
}

TEST(TransportTest, CorruptDatagramsAreCountedAndDropped) {
  Fabric F;
  // Inject raw garbage straight onto the fabric.
  F.W.netSend(F.MA->Id, F.MB->Id, {0x00, 0x11, 0x22});
  F.pumpFor(10'000);
  EXPECT_TRUE(F.GotB.empty());
  EXPECT_GE(F.Reg.counter("daemon.net.frames_corrupt").value(), 1u);
}

//===----------------------------------------------------------------------===//
// Daemon protocol over the transport
//===----------------------------------------------------------------------===//

namespace {

const char *NetEchoServer = R"(
fn main() export {
  srv_register(40);
  var buf = alloc(64);
  var lenp = alloc(8);
  while (1) {
    var id = rpc_recv(buf, 64, lenp);
    store(buf, load(buf) * 10);
    rpc_reply(id, buf, 8);
  }
}
)";

const char *NetSnapClient = R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 4);
  var status = rpc(40, arg, 8, rep);
  print(status);
  print(load(rep));
  snap(1);
}
)";

/// The chaos-sweep scenario: client on alpha calls the echo server on
/// beta, then snaps; the client's API snap fans a group snap out to the
/// server across the network, and everything travels to a collector
/// machine as SnapPush frames.
struct NetTwoMachines {
  MetricsRegistry Reg;
  Deployment D;
  Machine *MA, *MB;
  Process *Client, *Server;
  uint64_t CollectorId = 0;

  NetTwoMachines() {
    D.Metrics = &Reg;
    MA = D.addMachine("alpha", "winnt");
    MB = D.addMachine("beta", "solaris", 100000);
    CollectorId = D.enableNetworkTransport();
    Client = MA->createProcess("client");
    Server = MB->createProcess("server");
  }

  void deployAndRun(const Module &CM, const Module &SM) {
    std::string Error;
    ASSERT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
    ASSERT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
    Server->start("main");
    for (int I = 0; I < 10; ++I)
      D.world().stepSlice();
    Client->start("main");
    while (!Client->Exited && D.world().cycles() < 50'000'000)
      D.world().stepSlice();
    ASSERT_TRUE(Client->Exited);
  }
};

/// Renders the stitched logical threads of the client + server snaps —
/// the byte-comparison payload of the chaos sweep.
std::string stitchedRender(Deployment &D) {
  const SnapFile *Cli = nullptr, *Srv = nullptr;
  for (const SnapFile &S : D.snaps()) {
    if (S.ProcessName == "client" && S.Reason == SnapReason::Api)
      Cli = &S;
    if (S.ProcessName == "server" && S.Reason == SnapReason::GroupPeer)
      Srv = &S;
  }
  if (!Cli || !Srv)
    return "<incomplete>";
  ReconstructedTrace CT = D.reconstruct(*Cli);
  ReconstructedTrace ST = D.reconstruct(*Srv);
  DistributedStitcher Stitcher;
  Stitcher.addTrace(CT);
  Stitcher.addTrace(ST);
  std::vector<std::string> Warnings;
  std::string Out;
  for (const LogicalThread &LT : Stitcher.stitch(Warnings))
    Out += renderLogicalThread(LT);
  for (const std::string &W : Warnings)
    Out += "warning: " + W + "\n";
  return Out;
}

} // namespace

TEST(NetDaemonTest, SnapPushAndGroupSnapTravelTheNetwork) {
  Module CM = compileOrDie(NetSnapClient, "climod", Technology::Native,
                           "client.ml");
  Module SM = compileOrDie(NetEchoServer, "srvmod", Technology::Native,
                           "server.ml");
  NetTwoMachines T;
  T.deployAndRun(CM, SM);
  EXPECT_EQ(T.Client->Output, "0\n40\n");
  // Nothing surfaces until the network is pumped.
  EXPECT_TRUE(T.D.snaps().empty());
  ASSERT_TRUE(T.D.pumpNetwork());
  bool ClientApi = false, ServerPeer = false;
  for (const SnapFile &S : T.D.snaps()) {
    if (S.ProcessName == "client" && S.Reason == SnapReason::Api)
      ClientApi = true;
    if (S.ProcessName == "server" && S.Reason == SnapReason::GroupPeer)
      ServerPeer = true;
  }
  EXPECT_TRUE(ClientApi);
  EXPECT_TRUE(ServerPeer) << "group fan-out must cross the network";
  // Requests were acked; no partial degradation happened.
  ServiceDaemon *DA = T.D.daemonFor(*T.MA);
  ASSERT_NE(DA, nullptr);
  EXPECT_EQ(DA->pendingGroupRequests(), 0u);
  EXPECT_GE(T.Reg.counter("daemon.net.snap_pushes").value(), 2u);
  EXPECT_GE(T.Reg.counter("daemon.net.group_acks").value(), 1u);
  EXPECT_EQ(T.Reg.counter("daemon.net.missing_peer_markers").value(), 0u);
  // The stitched view fuses both machines, as in direct-delivery mode.
  std::string View = stitchedRender(T.D);
  EXPECT_NE(View.find("alpha"), std::string::npos);
  EXPECT_NE(View.find("beta"), std::string::npos);
}

TEST(NetDaemonTest, PartitionDegradesGroupSnapToPartialSnap) {
  Module CM = compileOrDie(NetSnapClient, "climod", Technology::Native,
                           "client.ml");
  Module SM = compileOrDie(NetEchoServer, "srvmod", Technology::Native,
                           "server.ml");
  NetTwoMachines T;
  // Cut alpha<->beta for the whole run: the group-snap request can never
  // reach the server's daemon. The push path alpha->collector stays up.
  // (Guest RPC rides its own wire plane, so the client still calls the
  // server; only the snap-transport fabric is partitioned.)
  T.D.world().netSetPartitioned(T.MA->Id, T.MB->Id, true);
  T.deployAndRun(CM, SM);
  ASSERT_TRUE(T.D.pumpNetwork()) << "a partition must degrade, not hang";
  bool ServerPeer = false;
  const SnapFile *Marker = nullptr;
  for (const SnapFile &S : T.D.snaps()) {
    if (S.ProcessName == "server" && S.Reason == SnapReason::GroupPeer)
      ServerPeer = true;
    if (S.Reason == SnapReason::MissingPeer)
      Marker = &S;
  }
  EXPECT_FALSE(ServerPeer) << "the partition should have blocked fan-out";
  ASSERT_NE(Marker, nullptr)
      << "a partial group snap must carry a MISSING-PEER marker";
  EXPECT_EQ(Marker->MachineName, "beta");
  EXPECT_EQ(Marker->ProcessName, "default") << "the group being snapped";
  ServiceDaemon *DA = T.D.daemonFor(*T.MA);
  EXPECT_EQ(DA->pendingGroupRequests(), 0u);
  EXPECT_GE(T.Reg.counter("daemon.net.missing_peer_markers").value(), 1u);

  // Reconstruction tolerates the partial set: the stitcher reports the
  // absent peer instead of failing or silently dropping it.
  const SnapFile *Cli = nullptr;
  for (const SnapFile &S : T.D.snaps())
    if (S.ProcessName == "client" && S.Reason == SnapReason::Api)
      Cli = &S;
  ASSERT_NE(Cli, nullptr);
  ReconstructedTrace CT = T.D.reconstruct(*Cli);
  DistributedStitcher Stitcher;
  Stitcher.addTrace(CT);
  Stitcher.noteMissingPeer(Marker->MachineName);
  std::vector<std::string> Warnings;
  (void)Stitcher.stitch(Warnings);
  ASSERT_FALSE(Warnings.empty());
  EXPECT_NE(Warnings.front().find("partial group snap"), std::string::npos);
  EXPECT_NE(Warnings.front().find("beta"), std::string::npos);
}

TEST(NetDaemonTest, HeartbeatsCrossTheNetwork) {
  NetTwoMachines T;
  ServiceDaemon *DA = T.D.daemonFor(*T.MA);
  ServiceDaemon *DB = T.D.daemonFor(*T.MB);
  ASSERT_NE(DA, nullptr);
  ASSERT_NE(DB, nullptr);
  DA->broadcastHeartbeat();
  ASSERT_TRUE(T.D.pumpNetwork());
  auto It = DB->peerHeartbeats().find(T.MA->Id);
  ASSERT_NE(It, DB->peerHeartbeats().end());
  EXPECT_GE(T.Reg.counter("daemon.net.heartbeats_seen").value(), 1u);
}

//===----------------------------------------------------------------------===//
// The 200-seed network chaos sweep
//===----------------------------------------------------------------------===//

TEST(NetChaosSweepTest, TwoHundredSeedsDeliverExactlyOnce) {
  Module CM = compileOrDie(NetSnapClient, "climod", Technology::Native,
                           "client.ml");
  Module SM = compileOrDie(NetEchoServer, "srvmod", Technology::Native,
                           "server.ml");

  // Fault-free baseline, network mode: the stitched render every
  // faulted-but-complete run must reproduce byte for byte.
  std::string Baseline;
  size_t BaselineSnaps = 0;
  {
    NetTwoMachines T;
    T.deployAndRun(CM, SM);
    if (::testing::Test::HasFatalFailure())
      return;
    ASSERT_TRUE(T.D.pumpNetwork());
    Baseline = stitchedRender(T.D);
    BaselineSnaps = T.D.snaps().size();
    ASSERT_NE(Baseline, "<incomplete>");
    ASSERT_GE(BaselineSnaps, 2u);
  }

  const int Sweeps = 200;
  uint64_t Base = testSeed();
  int Partitioned = 0, Complete = 0;
  for (int I = 0; I < Sweeps; ++I) {
    uint64_t Seed = Base + static_cast<uint64_t>(I);
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    // MaxSlice is tuned to the scenario's actual run length so that
    // partition/heal events usually fire while traffic is in flight
    // instead of after the world went idle.
    FaultPlan Plan = FaultPlan::randomNetwork(Seed, /*MaxPacket=*/16,
                                              /*MaxSlice=*/60);
    NetTwoMachines T;
    FaultInjector FI(Plan, &T.Reg);
    T.D.world().Injector = &FI;
    T.deployAndRun(CM, SM);
    if (::testing::Test::HasFatalFailure())
      return;
    // Whatever the weather, the transport must reach quiescence: every
    // frame acked, written off after partition detection, or resynced.
    ASSERT_TRUE(T.D.pumpNetwork()) << "transport hang under plan:\n"
                                   << Plan.toText();

    // Acked => delivered, exactly once, per channel into the collector.
    TransportEndpoint *C = T.D.collectorEndpoint();
    for (Machine *M : {T.MA, T.MB}) {
      TransportEndpoint *EP = T.D.endpointFor(*M);
      ASSERT_NE(EP, nullptr);
      EXPECT_EQ(EP->inFlightTotal(), 0u);
      EXPECT_GE(C->deliveredFrom(M->Id), EP->ackedDelivered(T.CollectorId))
          << "an acked snap push was never delivered";
    }

    // No snap is ever double-delivered: captures are unique by
    // (pid, reason, capture time), and receive-side dedup must hold.
    std::set<std::tuple<uint64_t, int, uint64_t>> Unique;
    for (const SnapFile &S : T.D.snaps())
      EXPECT_TRUE(
          Unique.insert({S.Pid, static_cast<int>(S.Reason), S.Timestamp})
              .second)
          << "duplicate snap delivered: " << S.ProcessName << "/"
          << snapReasonName(S.Reason);

    // Every daemon resolved its group requests (ack or marker).
    for (Machine *M : {T.MA, T.MB})
      EXPECT_EQ(T.D.daemonFor(*M)->pendingGroupRequests(), 0u);

    bool SawPartition = false;
    for (FaultKind K : FI.firedKinds())
      if (K == FaultKind::NetPartition)
        SawPartition = true;
    if (SawPartition) {
      ++Partitioned;
      continue;
    }

    // Drop/dup/reorder/delay only: delivery must COMPLETE — nothing lost,
    // nothing refused, and the stitched reconstruction byte-identical to
    // the fault-free run.
    ++Complete;
    for (Machine *M : {T.MA, T.MB}) {
      TransportEndpoint *EP = T.D.endpointFor(*M);
      EXPECT_EQ(EP->lostFrames(T.CollectorId), 0u);
      EXPECT_FALSE(EP->peerUnreachable(T.CollectorId));
    }
    EXPECT_EQ(T.D.snaps().size(), BaselineSnaps) << Plan.toText();
    EXPECT_EQ(stitchedRender(T.D), Baseline)
        << "faulted-but-complete delivery must reconstruct identically\n"
        << Plan.toText();
  }
  std::printf("[ chaos sweep: %d seeds, %d complete, %d partitioned ]\n",
              Sweeps, Complete, Partitioned);
  EXPECT_GT(Complete, 0) << "sweep never exercised the fault-free path";
}
