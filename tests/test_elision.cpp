//===- tests/test_elision.cpp - Probe-elision equivalence sweeps ----------===//
//
// Part of the TraceBack reproduction project.
//
// The elision pass (analysis/ProbeElision.h) drops light probes whose path
// bit is implied by dominance structure; the reconstructor re-expands the
// implied bits from the mapfile's ElidedBy table. These tests pin the
// contract down:
//
//  - a 100-seed sweep over generated branchy programs proves the decoded
//    trace is byte-identical with elision on and off (and line-identical
//    under the degenerate every-block-is-header tiling, where elision has
//    nothing to do),
//  - a kill -9 sweep proves torn-trace recovery still yields a golden
//    prefix when records were written by elided probes,
//  - header merging and timestamp batching compose with elision without
//    changing the decoded history.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "analysis/ProbeElision.h"
#include "instrument/Instrumenter.h"
#include "support/Text.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

/// Generates a deterministic branchy MiniLang program. The branch shapes
/// are chosen so the elision rules actually fire: if-without-else joins
/// (the join bit post-dominates the DAG root, rule 1) and nested guards
/// (inner block dominated by / post-dominating the guard body, rule 2),
/// mixed with plain if/else diamonds where nothing is elidable.
std::string genProgram(uint64_t Seed, unsigned Iters, bool WithSnap) {
  Rng R(Seed);
  std::string Src = "fn work(x) {\n  var y = x;\n";
  unsigned NumBranches = 3 + R.below(4);
  for (unsigned B = 0; B < NumBranches; ++B) {
    unsigned MaskA = 1u << R.below(5);
    unsigned MaskB = 1u << R.below(5);
    unsigned K = 1 + static_cast<unsigned>(R.below(9));
    switch (R.below(3)) {
    case 0: // if-without-else: the join's bit is implied (rule 1).
      Src += formatv("  if (y & %u) { y = y + %u; }\n", MaskA, K);
      Src += formatv("  y = y ^ %u;\n", K + 3);
      break;
    case 1: // nested guard: inner bits implied by the outer (rule 2).
      Src += formatv("  if (y & %u) {\n    y = y * 3 + %u;\n", MaskA, K);
      Src += formatv("    if (y & %u) { y = y - %u; }\n", MaskB, K + 1);
      Src += formatv("    y = y ^ %u;\n  }\n", K + 5);
      Src += "  y = y + 1;\n";
      break;
    default: // if/else diamond: no bit is implied; keeps the mix honest.
      Src += formatv("  if (y & %u) { y = y + %u; } else { y = y ^ %u; }\n",
                     MaskA, K, K + 7);
      break;
    }
  }
  Src += "  return y;\n}\n";
  Src += formatv("fn main() export {\n"
                 "  var s = %u;\n"
                 "  var i = 0;\n"
                 "  while (i < %u) {\n"
                 "    s = s + work(s + i);\n"
                 "    s = s %% 65521;\n"
                 "    i = i + 1;\n"
                 "    yield();\n"
                 "  }\n"
                 "  print(s);\n",
                 1 + static_cast<unsigned>(R.below(1000)), Iters);
  if (WithSnap)
    Src += "  snap(1);\n";
  Src += "}\n";
  return Src;
}

/// Everything one instrumented run produces that equivalence checks need.
struct RunCapture {
  bool Ok = false;
  std::string Output;
  std::vector<Process::OracleEvent> Oracle;
  ReconstructedTrace Trace;
};

/// Deploys \p M with \p Opts under a timestamp-free policy (cycle counts
/// differ across probe configurations, so periodic timestamps would
/// trivially perturb the comparison), runs to completion, reconstructs
/// the snap(1) snapshot.
RunCapture runConfig(const Module &M, const InstrumentOptions &Opts,
                     uint32_t TimestampInterval = 0,
                     uint32_t TimestampBatch = 0) {
  RunCapture C;
  SingleProcess S{/*WithOracle=*/true};
  S.D.Policy.TimestampInterval = TimestampInterval;
  S.D.Policy.TimestampBatch = TimestampBatch;
  S.D.Policy.SnapOnApi = true;
  std::string Error;
  LoadedModule *LM = S.D.deploy(*S.P, M, /*Instrument=*/true, Opts, Error);
  EXPECT_NE(LM, nullptr) << Error;
  if (!LM)
    return C;
  Thread *T = S.P->start("main");
  EXPECT_NE(T, nullptr);
  if (!T)
    return C;
  EXPECT_EQ(S.D.world().run(50'000'000), World::RunResult::AllExited);
  EXPECT_FALSE(S.D.snaps().empty()) << "snap(1) produced no snapshot";
  if (S.D.snaps().empty())
    return C;
  C.Trace = S.D.reconstruct(S.D.snaps().back());
  C.Output = S.P->Output;
  C.Oracle = std::move(S.Oracle);
  C.Ok = true;
  return C;
}

/// Renders \p Trace with every event timestamp zeroed: wall-clock readings
/// legitimately differ across probe configurations (fewer probes = fewer
/// cycles), everything else must be byte-identical.
std::string normalizedRender(const ThreadTrace &Trace) {
  ThreadTrace Copy = Trace;
  for (TraceEvent &E : Copy.Events)
    E.Timestamp = 0;
  return renderFlatTrace(Copy);
}

std::set<std::string> uniqueLines(const ThreadTrace &T) {
  std::vector<std::string> Seq = lineSequence(T);
  return std::set<std::string>(Seq.begin(), Seq.end());
}

/// Same slack rule as the crash-consistency sweep: the fault may interrupt
/// one DAG record, so at most the final tile's lines are in flux.
bool isPrefixWithSlack(const std::vector<std::string> &Got,
                       const std::vector<std::string> &Golden,
                       size_t Slack = 12) {
  for (size_t Drop = 0; Drop <= Slack && Drop <= Got.size(); ++Drop) {
    size_t N = Got.size() - Drop;
    if (N <= Golden.size() &&
        std::equal(Got.begin(), Got.begin() + N, Golden.begin()))
      return true;
  }
  return false;
}

} // namespace

// ----------------------------------------------------------------------------
// The pass itself: implied bits are found and accounted for.
// ----------------------------------------------------------------------------

TEST(ElisionTest, ElidesImpliedBitsOnKnownShapes) {
  // Both elidable shapes, nothing else: the join after the guard (rule 1)
  // and the blocks inside the nested guard (rule 2).
  const char *Src = R"(
fn f(x) {
  var y = x;
  if (y & 1) { y = y + 3; }
  y = y ^ 5;
  if (y & 2) {
    y = y * 3;
    if (y & 4) { y = y - 1; }
    y = y + 7;
  }
  return y;
}
fn main() export {
  print(f(6));
}
)";
  Module M = compileOrDie(Src);
  Module Out;
  MapFile Map;
  std::string Error;
  InstrumentStats WithElision, Without;
  InstrumentOptions Opts;
  ASSERT_TRUE(instrumentModule(M, Opts, Out, Map, &WithElision, Error))
      << Error;
  EXPECT_GT(WithElision.NumElidedProbes, 0u)
      << "known-elidable shapes produced no elision";

  Opts.ElideImpliedBits = false;
  Module Out2;
  MapFile Map2;
  ASSERT_TRUE(instrumentModule(M, Opts, Out2, Map2, &Without, Error))
      << Error;
  EXPECT_EQ(Without.NumElidedProbes, 0u);
  // Elision only removes probes; the bit assignment is unchanged.
  EXPECT_EQ(WithElision.NumLightProbes + WithElision.NumElidedProbes,
            Without.NumLightProbes);
  EXPECT_LT(WithElision.NewCodeBytes, Without.NewCodeBytes)
      << "elided probes must shrink the rewritten text";

  // The mapfile carries the implication table for the decoder.
  unsigned ElidedInMap = 0;
  for (const MapDag &D : Map.Dags)
    for (const MapBlock &B : D.Blocks)
      if (B.BitIndex >= 0 && B.ElidedBy != ElisionNone)
        ++ElidedInMap;
  EXPECT_EQ(ElidedInMap, WithElision.NumElidedProbes);
}

// ----------------------------------------------------------------------------
// The headline property: 100-seed byte-identical decode sweep.
// ----------------------------------------------------------------------------

TEST(ElisionTest, HundredSeedByteIdenticalSweep) {
  Rng Seeds(testSeed());
  const int NumSeeds = 100;
  uint64_t TotalElided = 0;
  for (int Run = 0; Run < NumSeeds; ++Run) {
    uint64_t Seed = Seeds.next();
    unsigned Iters = 20 + static_cast<unsigned>(Seed % 21);
    Module M = compileOrDie(genProgram(Seed, Iters, /*WithSnap=*/true));

    InstrumentOptions Elided; // ElideImpliedBits defaults to true.
    InstrumentOptions Full;
    Full.ElideImpliedBits = false;
    InstrumentOptions Naive;
    Naive.Tile.EveryBlockIsHeader = true;

    RunCapture A = runConfig(M, Elided);
    RunCapture B = runConfig(M, Full);
    RunCapture C = runConfig(M, Naive);
    ASSERT_TRUE(A.Ok && B.Ok && C.Ok) << "seed " << Seed;

    // Program semantics are untouched by any probe configuration.
    ASSERT_EQ(A.Output, B.Output) << "seed " << Seed;
    ASSERT_EQ(A.Output, C.Output) << "seed " << Seed;

    // Each decode matches its own run's ground-truth oracle exactly.
    const ThreadTrace *TA = A.Trace.threadById(1);
    const ThreadTrace *TB = B.Trace.threadById(1);
    const ThreadTrace *TC = C.Trace.threadById(1);
    ASSERT_TRUE(TA && TB && TC) << "seed " << Seed;
    ASSERT_EQ(lineSequence(*TA), oracleSequence(A.Oracle, 1))
        << "seed " << Seed << ": elided decode diverges from oracle";
    ASSERT_EQ(lineSequence(*TB), oracleSequence(B.Oracle, 1))
        << "seed " << Seed << ": full decode diverges from oracle";
    ASSERT_EQ(lineSequence(*TC), oracleSequence(C.Oracle, 1))
        << "seed " << Seed << ": naive decode diverges from oracle";

    // Elided and full share the tiling, so the decoded histories must be
    // byte-identical (repeats, depths, flags — everything but wall-clock).
    ASSERT_EQ(normalizedRender(*TA), normalizedRender(*TB))
        << "seed " << Seed
        << ": elided decode is not byte-identical to the full decode";

    // Count what the sweep actually elided so it can't silently go inert.
    InstrumentStats St;
    Module Scratch;
    MapFile ScratchMap;
    std::string Error;
    ASSERT_TRUE(
        instrumentModule(M, Elided, Scratch, ScratchMap, &St, Error));
    TotalElided += St.NumElidedProbes;
  }
  EXPECT_GT(TotalElided, static_cast<uint64_t>(NumSeeds))
      << "sweep programs barely exercise elision";
}

// ----------------------------------------------------------------------------
// Torn traces: kill -9 mid-run with elided probes still recovers a prefix.
// ----------------------------------------------------------------------------

TEST(ElisionTest, KillSweepWithElisionRecoversGoldenPrefix) {
  Rng Seeds(testSeed());
  const uint64_t ProgramSeed = Seeds.next();
  const unsigned Iters = 150;
  std::string Src = genProgram(ProgramSeed, Iters, /*WithSnap=*/false);

  // Fault-free golden oracle; the oracle is ground truth, independent of
  // the probe configuration.
  std::vector<std::string> Golden;
  uint64_t TotalSlices = 0;
  {
    SingleProcess S{/*WithOracle=*/true};
    ASSERT_EQ(S.runModule(compileOrDie(Src), /*Instrument=*/true),
              World::RunResult::AllExited);
    Golden = oracleSequence(S.Oracle, 1);
    TotalSlices = S.D.world().slices();
  }
  ASSERT_GT(Golden.size(), 100u);
  ASSERT_GT(TotalSlices, 10u);

  const int NumSeeds = 40;
  int Recovered = 0;
  for (int Run = 0; Run < NumSeeds; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Events.push_back(
        {FaultKind::KillProcess, 1 + R.below(TotalSlices - 1), 0});

    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
    ASSERT_NE(Daemon, nullptr);

    // Alternate elision on/off so every kill point is covered by both
    // encodings of the same control flow.
    InstrumentOptions Opts;
    Opts.ElideImpliedBits = (Run % 2) == 0;
    std::string Error;
    Module M = compileOrDie(Src);
    LoadedModule *LM = S.D.deploy(*S.P, M, /*Instrument=*/true, Opts, Error);
    ASSERT_NE(LM, nullptr) << Error;
    ASSERT_NE(S.P->start("main"), nullptr);
    S.D.world().run(50'000'000);
    ASSERT_TRUE(S.P->HardKilled)
        << "seed " << Seed << ": kill at slice " << Plan.Events[0].Trigger
        << " did not land";

    auto PM = Daemon->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u) << "seed " << Seed;
    ReconstructedTrace Trace = S.D.reconstruct(*PM[0]);
    const ThreadTrace *Main = Trace.threadById(1);
    if (!Main)
      continue; // Killed before anything committed — acceptable loss.
    std::vector<std::string> Got = lineSequence(*Main);
    if (Got.empty())
      continue;
    ++Recovered;
    ASSERT_TRUE(isPrefixWithSlack(Got, Golden))
        << "seed " << Seed << " (elide="
        << (Opts.ElideImpliedBits ? "on" : "off") << ", kill slice "
        << Plan.Events[0].Trigger << "): recovered " << Got.size()
        << " lines are not a golden prefix";
  }
  EXPECT_GT(Recovered, NumSeeds / 2)
      << "most kills should land after records were committed";
}

// ----------------------------------------------------------------------------
// Composition: header merging and timestamp batching.
// ----------------------------------------------------------------------------

TEST(ElisionTest, MergedHeadersComposeWithElision) {
  // Consecutive call sites so call-return header merging has chains to
  // fold; branchy callee so elision has bits to drop.
  const char *Src = R"(
fn f(x) {
  var y = x;
  if (y & 1) { y = y + 3; }
  y = y ^ 2;
  return y;
}
fn g(x) {
  if (x & 4) { return x * 3; }
  return x + 9;
}
fn main() export {
  var s = 1;
  var i = 0;
  while (i < 30) {
    var a = f(s + i);
    var b = g(a);
    s = (a + b) % 65521;
    i = i + 1;
  }
  print(s);
  snap(1);
}
)";
  Module M = compileOrDie(Src);
  InstrumentStats St;
  {
    Module Out;
    MapFile Map;
    std::string Error;
    InstrumentOptions Probe;
    Probe.Tile.MergeCallReturnHeaders = true;
    ASSERT_TRUE(instrumentModule(M, Probe, Out, Map, &St, Error)) << Error;
    EXPECT_GT(St.NumMergedHeaders, 0u)
        << "consecutive call sites produced no merged headers";
  }

  InstrumentOptions MergedElided;
  MergedElided.Tile.MergeCallReturnHeaders = true;
  InstrumentOptions MergedFull = MergedElided;
  MergedFull.ElideImpliedBits = false;
  RunCapture A = runConfig(M, MergedElided);
  RunCapture B = runConfig(M, MergedFull);
  RunCapture Plain = runConfig(M, InstrumentOptions());
  ASSERT_TRUE(A.Ok && B.Ok && Plain.Ok);
  EXPECT_EQ(A.Output, Plain.Output);
  EXPECT_EQ(A.Output, B.Output);

  const ThreadTrace *TA = A.Trace.threadById(1);
  const ThreadTrace *TB = B.Trace.threadById(1);
  const ThreadTrace *TP = Plain.Trace.threadById(1);
  ASSERT_TRUE(TA && TB && TP);
  // Merging reorders merged blocks relative to callee records, so the
  // comparison is reconstruction-vs-reconstruction under the same tiling:
  // elided and full decodes of the merged layout stay byte-identical.
  EXPECT_EQ(normalizedRender(*TA), normalizedRender(*TB));
  // And merging loses no coverage: the same source lines are observed.
  EXPECT_EQ(uniqueLines(*TA), uniqueLines(*TP));
}

TEST(ElisionTest, TimestampBatchingPreservesLineSequence) {
  const char *Src = R"(
fn main() export {
  var s = 0;
  var i = 0;
  while (i < 40) {
    if (i & 1) { s = s + i; }
    s = s ^ 3;
    print(s);
    i = i + 1;
  }
  snap(1);
}
)";
  Module M = compileOrDie(Src);
  // Timestamps on (interval 1): the batched run folds them into
  // TimestampBatch ext records, the unbatched run emits them one by one.
  RunCapture Unbatched =
      runConfig(M, InstrumentOptions(), /*TimestampInterval=*/1,
                /*TimestampBatch=*/0);
  RunCapture Batched =
      runConfig(M, InstrumentOptions(), /*TimestampInterval=*/1,
                /*TimestampBatch=*/8);
  ASSERT_TRUE(Unbatched.Ok && Batched.Ok);
  EXPECT_EQ(Unbatched.Output, Batched.Output);

  const ThreadTrace *TU = Unbatched.Trace.threadById(1);
  const ThreadTrace *TB = Batched.Trace.threadById(1);
  ASSERT_TRUE(TU && TB);
  EXPECT_EQ(lineSequence(*TB), oracleSequence(Batched.Oracle, 1));
  EXPECT_EQ(lineSequence(*TU), lineSequence(*TB));

  // The batch records actually decoded: some event carries a clock value.
  bool SawTs = false;
  for (const TraceEvent &E : TB->Events)
    SawTs |= E.Timestamp != 0;
  EXPECT_TRUE(SawTs) << "batched timestamps never reached the decoder";
}
