//===- tests/test_policy.cpp - Policy & DAG-base-file tests ---------------===//
//
// Part of the TraceBack reproduction project (paper sections 2.3, 3.6).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "runtime/DagBaseFile.h"
#include "runtime/Policy.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

TEST(PolicyTest, ParseFull) {
  std::string Text = R"(
# buffers
buffer_bytes 4096
buffer_count 2
sub_buffers 8
# triggers
snap_on exception
snap_on trap 3
snap_on trap 9
snap_on signal 11
snap_on unhandled
snap_on exit
snap_on api
suppress_repeats 2
timestamp_interval 5
)";
  RtPolicy P;
  std::string Error;
  ASSERT_TRUE(RtPolicy::parse(Text, P, Error)) << Error;
  EXPECT_EQ(P.BufferBytes, 4096u);
  EXPECT_EQ(P.BufferCount, 2u);
  EXPECT_EQ(P.SubBufferCount, 8u);
  EXPECT_TRUE(P.SnapOnAnyException);
  EXPECT_EQ(P.SnapOnTrapCodes, (std::set<uint16_t>{3, 9}));
  EXPECT_EQ(P.SnapOnSignals, (std::set<int>{11}));
  EXPECT_TRUE(P.SnapOnUnhandled);
  EXPECT_TRUE(P.SnapOnExit);
  EXPECT_TRUE(P.SnapOnApi);
  EXPECT_EQ(P.SuppressRepeats, 2u);
  EXPECT_EQ(P.TimestampInterval, 5u);
}

TEST(PolicyTest, RoundTripThroughText) {
  RtPolicy P;
  P.BufferBytes = 12345;
  P.SnapOnTrapCodes = {7};
  P.SnapOnSignals = {2, 15};
  P.SnapOnExit = true;
  P.SuppressRepeats = 9;
  RtPolicy Back;
  std::string Error;
  ASSERT_TRUE(RtPolicy::parse(P.toText(), Back, Error)) << Error;
  EXPECT_EQ(Back.BufferBytes, P.BufferBytes);
  EXPECT_EQ(Back.SnapOnTrapCodes, P.SnapOnTrapCodes);
  EXPECT_EQ(Back.SnapOnSignals, P.SnapOnSignals);
  EXPECT_EQ(Back.SnapOnExit, P.SnapOnExit);
  EXPECT_EQ(Back.SuppressRepeats, P.SuppressRepeats);
}

TEST(PolicyTest, Diagnostics) {
  RtPolicy P;
  std::string Error;
  EXPECT_FALSE(RtPolicy::parse("buffer_bytes tiny\n", P, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_FALSE(RtPolicy::parse("snap_on quakes\n", P, Error));
  EXPECT_FALSE(RtPolicy::parse("warp_drive on\n", P, Error));
  EXPECT_FALSE(RtPolicy::parse("buffer_bytes 8\n", P, Error))
      << "below minimum";
}

TEST(PolicyTest, TrapTriggerSelectsSpecificCode) {
  // Policy snaps only on trap code 5; other traps do not snap.
  SingleProcess S;
  std::string Error;
  ASSERT_TRUE(RtPolicy::parse("snap_on trap 5\nsuppress_repeats 10\n",
                              S.D.Policy, Error));
  Module M = compileOrDie(R"(
fn main() export {
  try { throw 4; } catch { }
  try { throw 5; } catch { }
  try { throw 5; } catch { }
}
)");
  S.runModule(M, true);
  EXPECT_EQ(S.D.snaps().size(), 2u) << "two trap-5 sites... same site: "
                                       "loop-free so distinct throws";
  for (const SnapFile &Snap : S.D.snaps())
    EXPECT_EQ(Snap.ReasonDetail,
              static_cast<uint16_t>(FaultCode::UserTrapBase) + 5);
}

TEST(PolicyTest, TimestampIntervalZeroDisables) {
  SingleProcess S;
  S.D.Policy.TimestampInterval = 0;
  Module M = compileOrDie(R"(
fn main() export {
  for (var i = 0; i < 10; i = i + 1) { yield(); }
  snap(1);
}
)");
  S.runModule(M, true);
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  for (const ThreadTrace &Th : T.Threads)
    for (const TraceEvent &E : Th.Events)
      EXPECT_EQ(E.Timestamp, 0u) << "no timestamps should be recorded";
}

TEST(DagBaseFileTest, ParseAndQuery) {
  std::string Text = "# tree-wide bases\nmoda 1000\nmodb 5000\n";
  DagBaseFile F;
  std::string Error;
  ASSERT_TRUE(DagBaseFile::parse(Text, F, Error)) << Error;
  EXPECT_EQ(F.baseFor("moda"), 1000u);
  EXPECT_EQ(F.baseFor("modb"), 5000u);
  EXPECT_EQ(F.baseFor("ghost"), 0u);
  DagBaseFile Back;
  ASSERT_TRUE(DagBaseFile::parse(F.toText(), Back, Error));
  EXPECT_EQ(Back.baseFor("moda"), 1000u);
  EXPECT_FALSE(DagBaseFile::parse("mod\n", F, Error));
  EXPECT_FALSE(DagBaseFile::parse("mod 0\n", F, Error));
}

TEST(DagBaseFileTest, AvoidsRebasingAtLoad) {
  // With a base file assigning disjoint ranges, no load-time rebasing
  // happens even though the modules' compiled defaults collide.
  SingleProcess S;
  S.D.UseBaseFile = true;
  S.D.BaseFile.assign("moda", 10000);
  S.D.BaseFile.assign("modb", 20000);
  InstrumentOptions Opts;
  Opts.DagIdBase = 7777; // Same compiled default for both.
  Module A = compileOrDie("fn fa() export { return 1; }", "moda");
  Module B = compileOrDie("fn fb() export { return 2; }", "modb");
  std::string Error;
  LoadedModule *LA = S.D.deploy(*S.P, A, true, Opts, Error);
  LoadedModule *LB = S.D.deploy(*S.P, B, true, Opts, Error);
  ASSERT_NE(LA, nullptr);
  ASSERT_NE(LB, nullptr);
  EXPECT_EQ(LA->Mod.DagIdBase, 10000u);
  EXPECT_EQ(LB->Mod.DagIdBase, 20000u);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_EQ(RT->stats().ModulesRebased, 0u)
      << "base file pre-coordination avoids the rebasing penalty";
}
