//===- tests/test_instrument.cpp - Rewriter tests -------------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "instrument/Checksum.h"
#include "instrument/Instrumenter.h"
#include "isa/Disassembler.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
const char *CollatzSource = R"(
fn collatz(n) {
  var steps = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps = steps + 1;
  }
  return steps;
}
fn main() export {
  var total = 0;
  for (var i = 1; i < 40; i = i + 1) {
    total = total + collatz(i);
  }
  print(total);
}
)";

Module instrumentOrDie(const Module &Orig, InstrumentStats *Stats = nullptr,
                       InstrumentOptions Opts = {}) {
  Module Out;
  MapFile Map;
  std::string Error;
  EXPECT_TRUE(instrumentModule(Orig, Opts, Out, Map, Stats, Error)) << Error;
  return Out;
}
} // namespace

TEST(InstrumentTest, SemanticTransparency) {
  // The rewritten program must behave identically.
  Module Orig = compileOrDie(CollatzSource);
  SingleProcess Plain;
  Plain.runModule(Orig, /*Instrument=*/false);
  SingleProcess Traced;
  Traced.runModule(Orig, /*Instrument=*/true);
  EXPECT_EQ(Plain.P->Output, Traced.P->Output);
  EXPECT_EQ(Plain.P->ExitCode, Traced.P->ExitCode);
  EXPECT_GT(Traced.P->CyclesUsed, Plain.P->CyclesUsed)
      << "probes cost cycles";
}

TEST(InstrumentTest, StatsAndTextGrowth) {
  Module Orig = compileOrDie(CollatzSource);
  InstrumentStats Stats;
  Module Instr = instrumentOrDie(Orig, &Stats);
  EXPECT_GT(Stats.NumDags, 0u);
  EXPECT_EQ(Stats.NumHeavyProbes, Stats.NumDags);
  EXPECT_GT(Stats.NumBlocks, Stats.NumDags) << "some blocks share DAGs";
  EXPECT_GT(Stats.NewCodeBytes, Stats.OrigCodeBytes);
  // The paper reports ~60% text growth for SPECint; ours should be in a
  // broadly similar band for branchy code (soft sanity bounds).
  EXPECT_GT(Stats.textGrowth(), 1.1);
  EXPECT_LT(Stats.textGrowth(), 3.5);
  EXPECT_TRUE(Instr.Instrumented);
  EXPECT_EQ(Instr.DagIdCount, Stats.NumDags);
  EXPECT_FALSE(Instr.DagRecordFixups.empty());
  EXPECT_FALSE(Instr.TlsSlotFixups.empty());
}

TEST(InstrumentTest, RefusesDoubleInstrumentation) {
  Module Orig = compileOrDie(CollatzSource);
  Module Once = instrumentOrDie(Orig);
  Module Twice;
  MapFile Map;
  std::string Error;
  EXPECT_FALSE(
      instrumentModule(Once, InstrumentOptions(), Twice, Map, nullptr, Error));
  EXPECT_NE(Error.find("already instrumented"), std::string::npos);
}

TEST(InstrumentTest, ChecksumInvariantUnderRebasing) {
  Module Orig = compileOrDie(CollatzSource);
  InstrumentOptions OptsA, OptsB;
  OptsA.DagIdBase = 100;
  OptsB.DagIdBase = 90000;
  Module A = instrumentOrDie(Orig, nullptr, OptsA);
  Module B = instrumentOrDie(Orig, nullptr, OptsB);
  EXPECT_EQ(A.Checksum, B.Checksum)
      << "checksum must not depend on the DAG base";
  EXPECT_EQ(computeModuleChecksum(A), A.Checksum);
  // Different source -> different checksum.
  Module Other = compileOrDie("fn main() export { print(1); }");
  Module C = instrumentOrDie(Other);
  EXPECT_NE(C.Checksum, A.Checksum);
}

TEST(InstrumentTest, MapfileSerializationRoundTrip) {
  Module Orig = compileOrDie(CollatzSource);
  Module Out;
  MapFile Map;
  std::string Error;
  ASSERT_TRUE(instrumentModule(Orig, InstrumentOptions(), Out, Map, nullptr,
                               Error))
      << Error;
  std::vector<uint8_t> Bytes = Map.serialize();
  MapFile Back;
  ASSERT_TRUE(MapFile::deserialize(Bytes, Back));
  EXPECT_EQ(Back.ModuleName, Map.ModuleName);
  EXPECT_EQ(Back.Checksum, Map.Checksum);
  EXPECT_EQ(Back.DagIdBase, Map.DagIdBase);
  ASSERT_EQ(Back.Dags.size(), Map.Dags.size());
  for (size_t I = 0; I < Map.Dags.size(); ++I) {
    ASSERT_EQ(Back.Dags[I].Blocks.size(), Map.Dags[I].Blocks.size());
    for (size_t J = 0; J < Map.Dags[I].Blocks.size(); ++J) {
      EXPECT_EQ(Back.Dags[I].Blocks[J].StartOffset,
                Map.Dags[I].Blocks[J].StartOffset);
      EXPECT_EQ(Back.Dags[I].Blocks[J].BitIndex,
                Map.Dags[I].Blocks[J].BitIndex);
      EXPECT_EQ(Back.Dags[I].Blocks[J].ElidedBy,
                Map.Dags[I].Blocks[J].ElidedBy);
      EXPECT_EQ(Back.Dags[I].Blocks[J].Lines.size(),
                Map.Dags[I].Blocks[J].Lines.size());
    }
  }
}

TEST(InstrumentTest, ExceptionSemanticsPreserved) {
  const char *Source = R"(
fn risky(n) {
  if (n == 3) { throw 42; }
  return n * 2;
}
fn main() export {
  var acc = 0;
  try {
    for (var i = 0; i < 10; i = i + 1) {
      acc = acc + risky(i);
    }
  } catch {
    print(acc);
  }
  print(acc + 1);
}
)";
  Module Orig = compileOrDie(Source);
  SingleProcess Plain;
  Plain.runModule(Orig, false);
  SingleProcess Traced;
  Traced.runModule(Orig, true);
  EXPECT_EQ(Plain.P->Output, "6\n7\n");
  EXPECT_EQ(Traced.P->Output, Plain.P->Output);
}

TEST(InstrumentTest, ManagedModeSplitsAtLines) {
  Module Orig = compileOrDie(CollatzSource, "jmod", Technology::Managed);
  InstrumentStats Native, Managed;
  Module OrigNative = compileOrDie(CollatzSource, "nmod", Technology::Native);
  instrumentOrDie(OrigNative, &Native);
  instrumentOrDie(Orig, &Managed);
  EXPECT_GT(Managed.NumBlocks, Native.NumBlocks)
      << "line-boundary splitting must add blocks";
}

TEST(InstrumentTest, InstrumentedModuleStillDisassembles) {
  Module Orig = compileOrDie(CollatzSource);
  Module Instr = instrumentOrDie(Orig);
  std::string Listing = disassembleModule(Instr);
  EXPECT_NE(Listing.find("__tb_probe_helper"), std::string::npos);
  EXPECT_NE(Listing.find("stm32i"), std::string::npos) << "heavy probes";
  EXPECT_NE(Listing.find("tlsld"), std::string::npos);
}

TEST(InstrumentTest, IndirectCallTargetsSurvive) {
  const char *Source = R"(
fn add(a, b) { return a + b; }
fn main() export {
  print(callptr(addr_of(add), 20, 22));
}
)";
  Module Orig = compileOrDie(Source);
  SingleProcess Traced;
  Traced.runModule(Orig, true);
  EXPECT_EQ(Traced.P->Output, "42\n");
}

TEST(InstrumentTest, CrossModuleImportsSurvive) {
  SingleProcess S;
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, buildLibTbc(), /*Instrument=*/true, Error),
            nullptr)
      << Error;
  Module App = compileOrDie(R"(
import strlen;
import memset;
fn main() export {
  var buf = alloc(16);
  memset(buf, 65, 5);
  storeb(buf + 5, 0);
  print(strlen(buf));
  prints(buf);
}
)");
  ASSERT_NE(S.D.deploy(*S.P, App, /*Instrument=*/true, Error), nullptr)
      << Error;
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
  EXPECT_EQ(S.P->Output, "5\nAAAAA");
}
