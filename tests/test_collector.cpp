//===- tests/test_collector.cpp - Fleet snap collector tests --------------===//
//
// Part of the TraceBack reproduction project.
//
// The collector subsystem's suite (ctest -L collector): SnapStore index
// round-trips across reopen, payload-hash dedup refcounting, deterministic
// retention eviction, query-predicate combinations against a naive
// reference filter, SnapSource unification, the store-residency gauge,
// and the 100-seed ingest-under-network-chaos sweep asserting the indexed
// query path returns byte-identical results to the linear-scan oracle.
//
//===----------------------------------------------------------------------===//

#include "collector/CollectorService.h"
#include "collector/SnapStore.h"
#include "core/FileIO.h"
#include "distributed/SnapArchive.h"
#include "distributed/Transport.h"
#include "replay/Recorder.h"
#include "replay/ReplayDriver.h"
#include "support/SnapSource.h"
#include "support/ThreadPool.h"
#include "triage/Signature.h"
#include "triage/SignatureStore.h"
#include "vm/FaultInjector.h"

#include "TestHelpers.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <unistd.h>

using namespace traceback;
using namespace traceback::testing_helpers;
namespace fs = std::filesystem;

namespace {

/// A fresh store directory under the system temp dir (removed first, so
/// reruns never see a previous run's journal).
std::string tempStoreDir(const std::string &Tag) {
  fs::path P = fs::temp_directory_path() /
               ("tb-collector-" + Tag + "-" + std::to_string(::getpid()));
  std::error_code EC;
  fs::remove_all(P, EC);
  return P.string();
}

struct TestMod {
  std::string Name;
  bool Instrumented = true;
};

/// Hand-builds a header-complete snap. Module checksums derive from the
/// name, so equal names collide across snaps exactly like redeployments
/// of one module do. \p FaultMod names the faulting module (empty =
/// non-fault snap).
SnapFile makeSnap(const std::string &Machine, const std::string &Proc,
                  uint64_t Pid, uint64_t Ts, SnapReason Reason,
                  const std::vector<TestMod> &Mods,
                  const std::string &FaultMod = "",
                  uint16_t FaultCode = 1) {
  SnapFile S;
  S.Reason = Reason;
  S.ProcessName = Proc;
  S.Pid = Pid;
  S.MachineName = Machine;
  S.OsName = "simos";
  S.Timestamp = Ts;
  for (const TestMod &M : Mods) {
    SnapModuleInfo MI;
    MI.Name = M.Name;
    MI.Checksum = MD5::hash(M.Name.data(), M.Name.size());
    MI.Instrumented = M.Instrumented;
    if (M.Name == FaultMod) {
      S.FaultModuleKey = MI.Checksum.low64();
      S.FaultCodeValue = FaultCode;
    }
    S.Modules.push_back(std::move(MI));
  }
  SnapThreadInfo T;
  T.ThreadId = 1;
  S.Threads.push_back(T);
  return S;
}

/// The metadata a test remembers per appended snap — the reference the
/// naive predicate filter below runs against.
struct Remembered {
  uint64_t Id = 0;
  SnapFile Snap;
  uint64_t SrcMachineId = 0;
  std::vector<uint8_t> Image;
};

/// Naive reference filter: re-derives each predicate from first
/// principles (names, not index keys) so a store-side indexing bug can't
/// cancel out in the comparison.
std::vector<uint64_t> naiveFilter(const std::vector<Remembered> &All,
                                  const std::string &Module,
                                  const std::string &Kind,
                                  const std::string &Machine,
                                  uint64_t Since, uint64_t Until,
                                  size_t Top) {
  std::vector<uint64_t> Ids;
  for (const Remembered &R : All) {
    if (!Module.empty()) {
      bool Has = false;
      for (const SnapModuleInfo &M : R.Snap.Modules)
        Has |= M.Name == Module;
      if (!Has)
        continue;
    }
    FaultSignature Sig = extractSignature(R.Snap);
    if (!Kind.empty() && Sig.Kind != Kind)
      continue;
    if (!Machine.empty() && R.Snap.MachineName != Machine)
      continue;
    if (R.Snap.Timestamp < Since || R.Snap.Timestamp > Until)
      continue;
    Ids.push_back(R.Id);
    if (Top && Ids.size() == Top)
      break;
  }
  return Ids;
}

std::vector<uint64_t> cursorIds(SnapStore::Cursor Cur) {
  std::vector<uint64_t> Ids;
  while (const SnapStoreEntry *E = Cur.next())
    Ids.push_back(E->Id);
  return Ids;
}

} // namespace

//===----------------------------------------------------------------------===//
// Index round-trip
//===----------------------------------------------------------------------===//

TEST(SnapStoreTest, IndexRoundTripSurvivesReopen) {
  std::string Dir = tempStoreDir("roundtrip");
  std::vector<Remembered> All;
  SnapStoreOptions O;
  O.Shards = 3;
  std::string Err;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    for (int I = 0; I < 12; ++I) {
      Remembered R;
      R.Snap = makeSnap(I % 2 ? "alpha" : "beta", "proc", 100 + I,
                        1000 + I * 10,
                        I % 3 == 0 ? SnapReason::Unhandled : SnapReason::Api,
                        {{"m1", true}, {I % 2 ? "m2" : "m3", I % 2 == 0}},
                        I % 3 == 0 ? "m1" : "");
      R.Image = R.Snap.serialize();
      R.SrcMachineId = 7 + I % 2;
      SnapStore::AppendResult AR;
      ASSERT_TRUE(St.append(R.Image, R.SrcMachineId, AR, &Err)) << Err;
      EXPECT_FALSE(AR.Deduped);
      R.Id = AR.Id;
      All.push_back(std::move(R));
    }
    EXPECT_EQ(St.liveEntries(), 12u);
  }

  // Reopen: the journal replay must reconstruct every queryable field
  // and every payload byte.
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
  EXPECT_EQ(St.totalEntries(), 12u);
  EXPECT_EQ(St.liveEntries(), 12u);
  for (const Remembered &R : All) {
    const SnapStoreEntry *E = St.entry(R.Id);
    ASSERT_NE(E, nullptr);
    FaultSignature Sig = extractSignature(R.Snap);
    EXPECT_EQ(E->Kind, Sig.Kind);
    EXPECT_EQ(E->Fingerprint, Sig.fingerprint());
    EXPECT_EQ(E->MachineName, R.Snap.MachineName);
    EXPECT_EQ(E->MachineId, R.SrcMachineId);
    EXPECT_EQ(E->ProcessName, R.Snap.ProcessName);
    EXPECT_EQ(E->Pid, R.Snap.Pid);
    EXPECT_EQ(E->Timestamp, R.Snap.Timestamp);
    EXPECT_EQ(E->Reason, static_cast<uint16_t>(R.Snap.Reason));
    ASSERT_EQ(E->ModuleNames.size(), R.Snap.Modules.size());
    for (size_t M = 0; M < E->ModuleNames.size(); ++M) {
      EXPECT_EQ(E->ModuleNames[M], R.Snap.Modules[M].Name);
      EXPECT_EQ(E->ModuleKeys[M], R.Snap.Modules[M].Checksum.low64());
      EXPECT_EQ(E->ModuleInstrumented[M] != 0,
                R.Snap.Modules[M].Instrumented);
    }
    std::vector<uint8_t> Img;
    ASSERT_TRUE(St.loadImage(*E, Img));
    EXPECT_EQ(Img, R.Image);
    SnapFile Loaded;
    ASSERT_TRUE(St.loadSnap(*E, Loaded));
    EXPECT_EQ(Loaded.ProcessName, R.Snap.ProcessName);
  }
}

TEST(SnapStoreTest, ReadOnlyOpenRefusesAppends) {
  std::string Dir = tempStoreDir("readonly");
  SnapStoreOptions O;
  std::string Err;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    SnapStore::AppendResult AR;
    SnapFile S = makeSnap("alpha", "p", 1, 10, SnapReason::Api, {{"m", true}});
    ASSERT_TRUE(St.appendSnap(S, 0, AR, &Err)) << Err;
  }
  SnapStoreOptions RO;
  RO.ReadOnly = true;
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, RO, Err)) << Err;
  EXPECT_EQ(St.liveEntries(), 1u);
  SnapStore::AppendResult AR;
  SnapFile S2 = makeSnap("alpha", "p", 2, 20, SnapReason::Api, {{"m", true}});
  EXPECT_FALSE(St.appendSnap(S2, 0, AR, &Err));
}

//===----------------------------------------------------------------------===//
// Dedup
//===----------------------------------------------------------------------===//

TEST(SnapStoreTest, DedupRefcountsAndPersistsAcrossReopen) {
  std::string Dir = tempStoreDir("dedup");
  SnapStoreOptions O;
  std::string Err;
  SnapFile S = makeSnap("alpha", "app", 42, 500, SnapReason::Unhandled,
                        {{"mod", true}}, "mod");
  std::vector<uint8_t> Img = S.serialize();
  uint64_t FirstId = 0;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    SnapStore::AppendResult R1, R2, R3;
    ASSERT_TRUE(St.append(Img, 1, R1, &Err)) << Err;
    ASSERT_TRUE(St.append(Img, 1, R2, &Err)) << Err;
    ASSERT_TRUE(St.append(Img, 2, R3, &Err)) << Err;
    EXPECT_FALSE(R1.Deduped);
    EXPECT_TRUE(R2.Deduped);
    EXPECT_TRUE(R3.Deduped);
    EXPECT_EQ(R2.Id, R1.Id);
    EXPECT_EQ(R3.Id, R1.Id);
    FirstId = R1.Id;
    EXPECT_EQ(St.liveEntries(), 1u);
    EXPECT_EQ(St.dedupHits(), 2u);
    EXPECT_EQ(St.totalRefs(), 3u);

    // A different payload with the same fingerprint is NOT a dup.
    SnapFile S2 = S;
    S2.Timestamp = 501;
    SnapStore::AppendResult R4;
    ASSERT_TRUE(St.appendSnap(S2, 1, R4, &Err)) << Err;
    EXPECT_FALSE(R4.Deduped);
    EXPECT_NE(R4.Id, FirstId);
    const SnapStoreEntry *E4 = St.entry(R4.Id);
    ASSERT_NE(E4, nullptr);
    EXPECT_EQ(E4->Fingerprint, St.entry(FirstId)->Fingerprint);
  }

  // The refcount is journaled, not runtime-only state.
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
  const SnapStoreEntry *E = St.entry(FirstId);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RefCount, 3u);
  EXPECT_EQ(St.totalRefs(), 4u);

  // And the dedup key survives replay: the same bytes still fold.
  SnapStore::AppendResult R5;
  ASSERT_TRUE(St.append(Img, 3, R5, &Err)) << Err;
  EXPECT_TRUE(R5.Deduped);
  EXPECT_EQ(R5.Id, FirstId);
}

//===----------------------------------------------------------------------===//
// Retention
//===----------------------------------------------------------------------===//

namespace {

/// Feeds the deterministic retention stream: timestamps arrive slightly
/// out of order so "oldest first" is a real sort, not arrival order.
void feedRetentionStream(SnapStore &St, int Count) {
  std::string Err;
  for (int I = 0; I < Count; ++I) {
    uint64_t Ts = 100 + static_cast<uint64_t>((I * 7) % Count) * 10;
    SnapFile S = makeSnap(I % 2 ? "alpha" : "beta", "app",
                          200 + static_cast<uint64_t>(I), Ts,
                          SnapReason::Unhandled, {{"mod", true}}, "mod");
    SnapStore::AppendResult R;
    ASSERT_TRUE(St.append(S.serialize(), 1, R, &Err)) << Err;
  }
}

} // namespace

TEST(SnapStoreTest, ByteCapEvictsDeterministically) {
  // Two stores, one identical stream: the evicted set must be identical,
  // and oldest-(Timestamp, Id)-first.
  std::string DirA = tempStoreDir("ret-a"), DirB = tempStoreDir("ret-b");
  SnapStoreOptions O;
  O.Shards = 2;
  O.MaxBytes = 4000; // A handful of these ~300-byte snaps.
  std::string Err;
  SnapStore A, B;
  ASSERT_TRUE(A.open(DirA, O, Err)) << Err;
  ASSERT_TRUE(B.open(DirB, O, Err)) << Err;
  feedRetentionStream(A, 30);
  feedRetentionStream(B, 30);
  ASSERT_GT(A.evictions(), 0u) << "cap never engaged; shrink MaxBytes";
  EXPECT_LE(A.liveBytes(), O.MaxBytes);
  EXPECT_EQ(A.evictions(), B.evictions());
  ASSERT_EQ(A.totalEntries(), B.totalEntries());
  for (uint64_t Id = 1; Id <= A.totalEntries(); ++Id) {
    const SnapStoreEntry *EA = A.entry(Id), *EB = B.entry(Id);
    ASSERT_NE(EA, nullptr);
    ASSERT_NE(EB, nullptr);
    EXPECT_EQ(EA->Dead, EB->Dead) << "id " << Id;
  }

  // Live entries strictly dominate dead ones in (Timestamp, Id) order
  // within this monotone-cap stream: eviction took the oldest.
  std::pair<uint64_t, uint64_t> NewestDead{0, 0};
  std::pair<uint64_t, uint64_t> OldestLive{UINT64_MAX, UINT64_MAX};
  for (uint64_t Id = 1; Id <= A.totalEntries(); ++Id) {
    const SnapStoreEntry *E = A.entry(Id);
    std::pair<uint64_t, uint64_t> Key{E->Timestamp, E->Id};
    if (E->Dead)
      NewestDead = std::max(NewestDead, Key);
    else
      OldestLive = std::min(OldestLive, Key);
  }
  EXPECT_LT(NewestDead, OldestLive);

  // Equal live state compacts to identical bytes, index included.
  ASSERT_TRUE(A.compact(&Err)) << Err;
  ASSERT_TRUE(B.compact(&Err)) << Err;
  A.close();
  B.close();
  for (unsigned I = 0; I < O.Shards; ++I) {
    std::vector<uint8_t> BytesA, BytesB;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "/shard-%02u.tbar", I);
    ASSERT_TRUE(readFileBytes(DirA + Name, BytesA));
    ASSERT_TRUE(readFileBytes(DirB + Name, BytesB));
    EXPECT_EQ(BytesA, BytesB) << "shard " << I;
  }
  std::string IdxA, IdxB;
  ASSERT_TRUE(readFileText(DirA + "/index.tbx", IdxA));
  ASSERT_TRUE(readFileText(DirB + "/index.tbx", IdxB));
  EXPECT_EQ(IdxA, IdxB);
}

TEST(SnapStoreTest, AgeCapEvictsRelativeToNewest) {
  std::string Dir = tempStoreDir("ret-age");
  SnapStoreOptions O;
  O.MaxAge = 100;
  std::string Err;
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
  SnapStore::AppendResult R;
  for (uint64_t Ts : {100u, 150u, 190u}) {
    SnapFile S = makeSnap("alpha", "app", Ts, Ts, SnapReason::Api,
                          {{"mod", true}});
    ASSERT_TRUE(St.appendSnap(S, 1, R, &Err)) << Err;
  }
  EXPECT_EQ(St.liveEntries(), 3u);
  // Ts=400 makes everything older than 300 stale.
  SnapFile S = makeSnap("alpha", "app", 400, 400, SnapReason::Api,
                        {{"mod", true}});
  ASSERT_TRUE(St.appendSnap(S, 1, R, &Err)) << Err;
  EXPECT_EQ(R.Evicted, 3u);
  EXPECT_EQ(St.liveEntries(), 1u);
  EXPECT_FALSE(St.entry(4)->Dead);

  // An evicted payload's dedup key is gone: the same bytes store anew.
  SnapFile Old = makeSnap("alpha", "app", 100, 100, SnapReason::Api,
                          {{"mod", true}});
  // (Immediately re-evicted by the age cap, but it must get a fresh id.)
  ASSERT_TRUE(St.appendSnap(Old, 1, R, &Err)) << Err;
  EXPECT_FALSE(R.Deduped);
  EXPECT_EQ(R.Id, 5u);
}

//===----------------------------------------------------------------------===//
// Query predicates
//===----------------------------------------------------------------------===//

TEST(SnapStoreTest, QueryPredicateCombinationsMatchNaiveFilter) {
  std::string Dir = tempStoreDir("query");
  SnapStoreOptions O;
  O.Shards = 3;
  std::string Err;
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;

  std::vector<Remembered> All;
  const char *Machines[] = {"alpha", "beta", "gamma"};
  const char *Mods[] = {"m1", "m2"};
  for (int I = 0; I < 36; ++I) {
    Remembered R;
    bool Fault = I % 3 != 2;
    R.Snap = makeSnap(Machines[I % 3], "app", 300 + I,
                      1000 + static_cast<uint64_t>((I * 11) % 36) * 5,
                      Fault ? SnapReason::Unhandled : SnapReason::Api,
                      {{Mods[I % 2], true}, {"shared", I % 4 == 0}},
                      Fault ? Mods[I % 2] : "",
                      static_cast<uint16_t>(1 + I % 2));
    R.Image = R.Snap.serialize();
    R.SrcMachineId = 10 + I % 3;
    SnapStore::AppendResult AR;
    ASSERT_TRUE(St.append(R.Image, R.SrcMachineId, AR, &Err)) << Err;
    R.Id = AR.Id;
    All.push_back(std::move(R));
  }

  std::string KindA = extractSignature(All[0].Snap).Kind;
  struct Case {
    const char *Name;
    SnapQuery Q;
    std::string Module, Kind, Machine;
    uint64_t Since = 0, Until = UINT64_MAX;
    size_t Top = 0;
  };
  std::vector<Case> Cases;
  auto AddCase = [&](const char *Name, SnapQuery Q, std::string Module = "",
                     std::string Kind = "", std::string Machine = "",
                     uint64_t Since = 0, uint64_t Until = UINT64_MAX,
                     size_t Top = 0) {
    Q.Since = Since;
    Q.Until = Until;
    Q.Top = Top;
    Cases.push_back({Name, std::move(Q), std::move(Module), std::move(Kind),
                     std::move(Machine), Since, Until, Top});
  };
  AddCase("all", SnapQuery());
  AddCase("module", SnapQuery().setModule("m1"), "m1");
  AddCase("module-rare", SnapQuery().setModule("shared"), "shared");
  AddCase("kind", SnapQuery().setKind(KindA), "", KindA);
  AddCase("machine", SnapQuery().setMachine("beta"), "", "", "beta");
  AddCase("window", SnapQuery(), "", "", "", 1050, 1110);
  AddCase("module+kind", SnapQuery().setModule("m1").setKind(KindA), "m1",
          KindA);
  AddCase("module+machine+window",
          SnapQuery().setModule("m1").setMachine("alpha"), "m1", "",
          "alpha", 1000, 1120);
  AddCase("top", SnapQuery().setModule("m1"), "m1", "", "", 0, UINT64_MAX,
          4);
  for (Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    std::vector<uint64_t> Expected = naiveFilter(
        All, C.Module, C.Kind, C.Machine, C.Since, C.Until, C.Top);
    EXPECT_EQ(cursorIds(St.query(C.Q)), Expected);
    EXPECT_EQ(cursorIds(St.scan(C.Q)), Expected);
  }

  // Alternate predicate spellings: checksum-hex module, decimal machine
  // id, fingerprint.
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(
                    MD5::hash("m1", 2).low64()));
  EXPECT_EQ(cursorIds(St.query(SnapQuery().setModule(Hex))),
            naiveFilter(All, "m1", "", "", 0, UINT64_MAX, 0));
  std::vector<uint64_t> ById;
  for (const Remembered &R : All)
    if (R.SrcMachineId == 11)
      ById.push_back(R.Id);
  EXPECT_EQ(cursorIds(St.query(SnapQuery().setMachine("11"))), ById);
  uint64_t FP = extractSignature(All[0].Snap).fingerprint();
  std::vector<uint64_t> ByFp;
  for (const Remembered &R : All)
    if (extractSignature(R.Snap).fingerprint() == FP)
      ByFp.push_back(R.Id);
  EXPECT_EQ(cursorIds(St.query(SnapQuery().setFingerprint(FP))), ByFp);
}

//===----------------------------------------------------------------------===//
// Paged checkpoint (TBIX v2)
//===----------------------------------------------------------------------===//

namespace {

/// Populates \p St with a varied stream: three machines, two fault
/// modules, scrambled timestamps, plus periodic exact-duplicate appends
/// so the checkpoint's dedup table carries real refcounts.
void feedPagedStream(SnapStore &St, int Count, uint64_t TsBase = 1000) {
  std::string Err;
  const char *Machines[] = {"alpha", "beta", "gamma"};
  const char *Mods[] = {"m1", "m2"};
  for (int I = 0; I < Count; ++I) {
    SnapFile S = makeSnap(Machines[I % 3], "app", 700 + I,
                          TsBase + static_cast<uint64_t>((I * 13) % Count) * 5,
                          I % 4 == 3 ? SnapReason::Api : SnapReason::Unhandled,
                          {{Mods[I % 2], true}, {"shared", true}},
                          I % 4 == 3 ? "" : Mods[I % 2],
                          static_cast<uint16_t>(1 + I % 3));
    std::vector<uint8_t> Img = S.serialize();
    SnapStore::AppendResult R;
    ASSERT_TRUE(St.append(Img, 1 + I % 3, R, &Err)) << Err;
    if (I % 5 == 0) { // Exact duplicate: folds into a refcount bump.
      ASSERT_TRUE(St.append(Img, 1 + I % 3, R, &Err)) << Err;
    }
  }
}

/// The predicate mix every paged/parallel equivalence check runs.
std::vector<SnapQuery> pagedQueryMix() {
  std::vector<SnapQuery> Qs = {SnapQuery(),
                               SnapQuery().setModule("m1"),
                               SnapQuery().setModule("shared"),
                               SnapQuery().setMachine("beta"),
                               SnapQuery().setWindow(1020, 1140),
                               SnapQuery().setModule("m2").setMachine("gamma")};
  SnapQuery TopQ = SnapQuery().setModule("m1");
  TopQ.Top = 5;
  Qs.push_back(TopQ);
  return Qs;
}

/// Asserts indexed query, scan oracle and (when \p Pool) the parallel
/// path agree on ids for the whole predicate mix.
void expectPagedQueriesConsistent(const SnapStore &St, ThreadPool *Pool,
                                  const char *Tag) {
  SCOPED_TRACE(Tag);
  size_t Case = 0;
  for (const SnapQuery &Q : pagedQueryMix()) {
    SCOPED_TRACE(::testing::Message() << "query " << Case++);
    std::vector<uint64_t> Expected = cursorIds(St.scan(Q));
    EXPECT_EQ(cursorIds(St.query(Q)), Expected);
    if (Pool) {
      EXPECT_EQ(St.queryIds(Q, Pool), Expected);
      EXPECT_EQ(cursorIds(St.query(Q, Pool)), Expected);
    }
  }
}

} // namespace

TEST(PagedStoreTest, PagedOpenMatchesUnpagedAcrossReopen) {
  std::string Dir = tempStoreDir("paged-roundtrip");
  SnapStoreOptions O;
  O.Shards = 2;
  std::string Err;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    feedPagedStream(St, 40);
    // First open of a fresh directory has no checkpoint to load.
    EXPECT_FALSE(St.openedPaged());
  } // close() writes index.tbx2.
  ASSERT_TRUE(fs::exists(fs::path(Dir) / "index.tbx2"));

  SnapStoreOptions Paged = O;
  Paged.ReadOnly = true;
  SnapStoreOptions Unpaged = Paged;
  Unpaged.Paged = false;
  {
    SnapStore P, U;
    ASSERT_TRUE(P.open(Dir, Paged, Err)) << Err;
    ASSERT_TRUE(U.open(Dir, Unpaged, Err)) << Err;
    EXPECT_TRUE(P.openedPaged());
    EXPECT_FALSE(U.openedPaged());
    ASSERT_EQ(P.totalEntries(), U.totalEntries());
    EXPECT_EQ(P.liveEntries(), U.liveEntries());
    EXPECT_EQ(P.liveBytes(), U.liveBytes());
    EXPECT_EQ(P.totalRefs(), U.totalRefs());
    expectPagedQueriesConsistent(P, nullptr, "paged");
    expectPagedQueriesConsistent(U, nullptr, "unpaged");
    for (uint64_t Id = 1; Id <= U.totalEntries(); ++Id) {
      const SnapStoreEntry *EU = U.entry(Id);
      ASSERT_NE(EU, nullptr);
      SnapStoreEntry EC = *EU; // Copy: P.entry() reuses a decode cache.
      const SnapStoreEntry *EP = P.entry(Id);
      ASSERT_NE(EP, nullptr) << "id " << Id;
      EXPECT_EQ(EP->Kind, EC.Kind);
      EXPECT_EQ(EP->Fingerprint, EC.Fingerprint);
      EXPECT_EQ(EP->MachineName, EC.MachineName);
      EXPECT_EQ(EP->Timestamp, EC.Timestamp);
      EXPECT_EQ(EP->RefCount, EC.RefCount);
      EXPECT_EQ(EP->ModuleNames, EC.ModuleNames);
      std::vector<uint8_t> ImgP, ImgU;
      ASSERT_TRUE(P.loadImage(*EP, ImgP));
      ASSERT_TRUE(U.loadImage(EC, ImgU));
      EXPECT_EQ(ImgP, ImgU);
    }
  }

  // A writable paged open appends past the checkpoint (journal tail),
  // dedups against checkpoint entries, and the next close re-checkpoints.
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    EXPECT_TRUE(St.openedPaged());
    uint64_t Before = St.totalEntries();
    feedPagedStream(St, 12, /*TsBase=*/1010);
    EXPECT_GT(St.totalEntries(), Before);
    expectPagedQueriesConsistent(St, nullptr, "paged+tail");
  }
  SnapStore Re;
  ASSERT_TRUE(Re.open(Dir, Paged, Err)) << Err;
  EXPECT_TRUE(Re.openedPaged());
  expectPagedQueriesConsistent(Re, nullptr, "re-checkpointed");
}

// Snaps ingested with embedded execution logs keep their logs through
// store close/reopen — paged and unpaged alike — and a store-resident
// snap replays end-to-end by id (the library half of
// `tbtool replay --store <dir> --id <n>`).
TEST(PagedStoreTest, ExecLogRoundTripsAndReplaysFromStore) {
  const char *Workload = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 80) {
    x = x * 3 + (rand() & 7);
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  snap(1);
  print(x);
}
)";
  // Two recorded snaps: a clean snap(1) anchor and a kill post-mortem.
  std::vector<std::vector<uint8_t>> Images;
  {
    SingleProcess S;
    S.D.Policy.RecordExecution = true;
    ExecutionRecorder Rec;
    Rec.attach(S.D);
    ASSERT_EQ(S.runModule(compileOrDie(Workload), /*Instrument=*/true),
              World::RunResult::AllExited);
    ASSERT_FALSE(S.D.snaps().empty());
    ASSERT_FALSE(S.D.snaps().front().ExecLog.empty());
    Images.push_back(S.D.snaps().front().serialize());
  }
  {
    SingleProcess S;
    S.D.Policy.RecordExecution = true;
    ExecutionRecorder Rec;
    Rec.attach(S.D);
    FaultPlan Plan;
    Plan.Seed = testSeed() ^ 0x88;
    Plan.Events.push_back({FaultKind::KillProcess, 60, 0});
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(Workload), true);
    ASSERT_TRUE(S.P->HardKilled);
    auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u);
    ASSERT_FALSE(PM[0]->ExecLog.empty());
    Images.push_back(PM[0]->serialize());
  }

  std::string Dir = tempStoreDir("execlog");
  SnapStoreOptions O;
  std::string Err;
  std::vector<uint64_t> Ids;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    for (const std::vector<uint8_t> &Img : Images) {
      SnapStore::AppendResult AR;
      ASSERT_TRUE(St.append(Img, /*SrcMachineId=*/1, AR, &Err)) << Err;
      EXPECT_FALSE(AR.Deduped);
      Ids.push_back(AR.Id);
    }
  } // close() writes the paged checkpoint.

  SnapStoreOptions Paged = O;
  Paged.ReadOnly = true;
  SnapStoreOptions Unpaged = Paged;
  Unpaged.Paged = false;
  for (bool UsePaged : {false, true}) {
    const char *Mode = UsePaged ? "paged" : "unpaged";
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, UsePaged ? Paged : Unpaged, Err))
        << Mode << ": " << Err;
    EXPECT_EQ(St.openedPaged(), UsePaged);
    for (size_t I = 0; I < Ids.size(); ++I) {
      const SnapStoreEntry *E = St.entry(Ids[I]);
      ASSERT_NE(E, nullptr) << Mode << " id " << Ids[I];
      SnapFile Loaded;
      ASSERT_TRUE(St.loadSnap(*E, Loaded)) << Mode << " id " << Ids[I];
      SnapFile Orig;
      ASSERT_TRUE(SnapFile::deserialize(Images[I], Orig));
      ASSERT_FALSE(Loaded.ExecLog.empty()) << Mode << " id " << Ids[I];
      EXPECT_EQ(Loaded.ExecLog, Orig.ExecLog) << Mode << " id " << Ids[I];

      ExecutionLog Log;
      ASSERT_TRUE(ExecutionLog::deserialize(Loaded.ExecLog, Log))
          << Mode << " id " << Ids[I];
      ReplayVerdict V = verifyReplay(Loaded, Log);
      EXPECT_TRUE(V.Ok) << Mode << " id " << Ids[I] << "\n" << V.render();
      EXPECT_TRUE(V.SnapMatched) << Mode << " id " << Ids[I];
      EXPECT_TRUE(V.TraceIdentical) << Mode << " id " << Ids[I];
    }
  }
}

TEST(PagedStoreTest, CorruptCheckpointFallsBackToJournalReplay) {
  std::string Dir = tempStoreDir("paged-corrupt");
  SnapStoreOptions O;
  std::string Err;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    feedPagedStream(St, 60);
  }
  std::string CkPath = (fs::path(Dir) / "index.tbx2").string();
  std::string JnPath = (fs::path(Dir) / "index.tbx").string();
  std::vector<uint8_t> PristineCk, PristineJn;
  ASSERT_TRUE(readFileBytes(CkPath, PristineCk));
  ASSERT_TRUE(readFileBytes(JnPath, PristineJn));
  ASSERT_GT(PristineCk.size(), 8192u);

  // The expected answers, from an untouched unpaged open.
  SnapStoreOptions RO = O;
  RO.ReadOnly = true;
  SnapStoreOptions UnpagedRO = RO;
  UnpagedRO.Paged = false;
  std::vector<std::vector<uint64_t>> Expected;
  {
    SnapStore Oracle;
    ASSERT_TRUE(Oracle.open(Dir, UnpagedRO, Err)) << Err;
    for (const SnapQuery &Q : pagedQueryMix())
      Expected.push_back(cursorIds(Oracle.scan(Q)));
  }

  auto ExpectDegradedButCorrect = [&](const char *Tag) {
    SCOPED_TRACE(Tag);
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, RO, Err)) << Err;
    EXPECT_FALSE(St.openedPaged());
    size_t Case = 0;
    for (const SnapQuery &Q : pagedQueryMix()) {
      SCOPED_TRACE(::testing::Message() << "query " << Case);
      EXPECT_EQ(cursorIds(St.query(Q)), Expected[Case]);
      EXPECT_EQ(cursorIds(St.scan(Q)), Expected[Case]);
      ++Case;
    }
  };

  {
    // Single bit flip mid-file: some data page's checksum breaks.
    std::vector<uint8_t> Ck = PristineCk;
    Ck[Ck.size() / 2] ^= 0x10;
    ASSERT_TRUE(writeFileBytes(CkPath, Ck));
    ExpectDegradedButCorrect("bit-flip");
  }
  {
    // Torn write: the checkpoint ends mid-region.
    std::vector<uint8_t> Ck = PristineCk;
    Ck.resize(Ck.size() * 3 / 5);
    ASSERT_TRUE(writeFileBytes(CkPath, Ck));
    ExpectDegradedButCorrect("truncated");
  }
  {
    // Zeroed header fields: the header hash rejects page 0 itself.
    std::vector<uint8_t> Ck = PristineCk;
    std::fill(Ck.begin() + 8, Ck.begin() + 40, uint8_t(0));
    ASSERT_TRUE(writeFileBytes(CkPath, Ck));
    ExpectDegradedButCorrect("zeroed-header");
  }
  {
    // Journal shorter than the checkpoint's coverage: the checkpoint is
    // internally consistent but describes a journal that no longer
    // exists, so it must be ignored. (The replayed truncated journal
    // simply drops its torn final line — query and scan still agree.)
    ASSERT_TRUE(writeFileBytes(CkPath, PristineCk));
    std::vector<uint8_t> Jn = PristineJn;
    Jn.resize(Jn.size() - 37);
    ASSERT_TRUE(writeFileBytes(JnPath, Jn));
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, RO, Err)) << Err;
    EXPECT_FALSE(St.openedPaged());
    for (const SnapQuery &Q : pagedQueryMix())
      EXPECT_EQ(cursorIds(St.query(Q)), cursorIds(St.scan(Q)));
    ASSERT_TRUE(writeFileBytes(JnPath, PristineJn));
  }

  // Pristine bytes restored: the paged path works again.
  ASSERT_TRUE(writeFileBytes(CkPath, PristineCk));
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, RO, Err)) << Err;
  EXPECT_TRUE(St.openedPaged());
  expectPagedQueriesConsistent(St, nullptr, "restored");
}

TEST(PagedStoreTest, ParallelQueryMatchesSerialAndScan) {
  std::string Dir = tempStoreDir("paged-parallel");
  SnapStoreOptions O;
  O.Shards = 3;
  std::string Err;
  ThreadPool Pool(4);
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    feedPagedStream(St, 150);
    expectPagedQueriesConsistent(St, &Pool, "unpaged-writable");
  }
  // Same equivalence when candidates split across checkpoint and tail.
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
  ASSERT_TRUE(St.openedPaged());
  feedPagedStream(St, 30, /*TsBase=*/1005);
  expectPagedQueriesConsistent(St, &Pool, "paged+tail");
}

TEST(PagedStoreTest, TimeCursorStreamsGlobalTimeOrderAcrossStores) {
  // Two stores with deliberately interleaved timestamps; each per-store
  // TimeCursor leg must stream (Timestamp, Id) ascending, and the k-way
  // merge tbtool runs over the legs must see every entry exactly once.
  std::string DirA = tempStoreDir("fanin-a"), DirB = tempStoreDir("fanin-b");
  SnapStoreOptions O;
  std::string Err;
  SnapStore A, B;
  ASSERT_TRUE(A.open(DirA, O, Err)) << Err;
  ASSERT_TRUE(B.open(DirB, O, Err)) << Err;
  feedPagedStream(A, 25, /*TsBase=*/1000);
  feedPagedStream(B, 25, /*TsBase=*/1002); // Offset: strict interleave.

  // Reopen A paged and grow a tail whose timestamps land *inside* the
  // checkpoint's range, so the cursor really merges the two stages.
  A.close();
  ASSERT_TRUE(A.open(DirA, O, Err)) << Err;
  ASSERT_TRUE(A.openedPaged());
  feedPagedStream(A, 10, /*TsBase=*/1001);

  auto Drain = [](const SnapStore &St, const SnapQuery &Q) {
    std::vector<std::pair<uint64_t, uint64_t>> Out;
    SnapStore::TimeCursor Cur = St.timeQuery(Q);
    while (const SnapStoreEntry *E = Cur.next())
      Out.push_back({E->Timestamp, E->Id});
    return Out;
  };
  for (const SnapQuery &Q : pagedQueryMix()) {
    // Each leg must equal the oracle: scan matches re-sorted by
    // (Timestamp, Id), with Top applied in *time* order.
    for (const SnapStore *St : {&A, &B}) {
      std::vector<std::pair<uint64_t, uint64_t>> Leg = Drain(*St, Q);
      EXPECT_TRUE(std::is_sorted(Leg.begin(), Leg.end()));
      SnapQuery Unlimited = Q;
      Unlimited.Top = 0;
      std::vector<std::pair<uint64_t, uint64_t>> Want;
      SnapStore::Cursor Cur = St->scan(Unlimited);
      while (const SnapStoreEntry *E = Cur.next())
        Want.push_back({E->Timestamp, E->Id});
      std::sort(Want.begin(), Want.end());
      if (Q.Top && Want.size() > Q.Top)
        Want.resize(Q.Top);
      EXPECT_EQ(Leg, Want);
    }
  }

  // The fan-in merge itself (the tbtool loop in miniature): pick the
  // smallest (ts, id) head each round.
  SnapQuery All;
  SnapStore::TimeCursor Legs[2] = {A.timeQuery(All), B.timeQuery(All)};
  const SnapStoreEntry *Heads[2] = {Legs[0].next(), Legs[1].next()};
  std::vector<std::pair<uint64_t, uint64_t>> Merged;
  size_t FromA = 0, FromB = 0;
  for (;;) {
    int Pick = -1;
    for (int I = 0; I < 2; ++I) {
      if (!Heads[I])
        continue;
      if (Pick < 0 ||
          std::make_pair(Heads[I]->Timestamp, Heads[I]->Id) <
              std::make_pair(Heads[Pick]->Timestamp, Heads[Pick]->Id))
        Pick = I;
    }
    if (Pick < 0)
      break;
    Merged.push_back({Heads[Pick]->Timestamp, Heads[Pick]->Id});
    (Pick == 0 ? FromA : FromB)++;
    Heads[Pick] = Legs[Pick].next();
  }
  EXPECT_TRUE(std::is_sorted(Merged.begin(), Merged.end(),
                             [](const auto &L, const auto &R) {
                               return L.first < R.first;
                             }));
  EXPECT_EQ(FromA, cursorIds(A.scan(All)).size());
  EXPECT_EQ(FromB, cursorIds(B.scan(All)).size());
  EXPECT_GT(FromA, 0u);
  EXPECT_GT(FromB, 0u);
}

TEST(PagedStoreTest, PageCacheBoundsResidentBytesAndCounts) {
  std::string Dir = tempStoreDir("paged-cache");
  MetricsRegistry Reg;
  SnapStoreOptions O;
  O.Metrics = &Reg;
  std::string Err;
  {
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    feedPagedStream(St, 300);
  }
  // A cap of four pages against a checkpoint dozens of pages long: a
  // full walk must hit, miss and evict, while residency never exceeds
  // the cap.
  SnapStoreOptions Tiny = O;
  Tiny.ReadOnly = true;
  Tiny.PageCacheBytes = 4 * 4096;
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, Tiny, Err)) << Err;
  ASSERT_TRUE(St.openedPaged());
  expectPagedQueriesConsistent(St, nullptr, "tiny-cache");
  Counter &Hits = Reg.counter("collector.store.page.hits");
  Counter &Misses = Reg.counter("collector.store.page.misses");
  Counter &Evictions = Reg.counter("collector.store.page.evictions");
  EXPECT_GT(Hits.value(), 0u);
  EXPECT_GT(Misses.value(), 0u);
  EXPECT_GT(Evictions.value(), 0u);
  EXPECT_LE(St.pageCacheResidentBytes(), Tiny.PageCacheBytes);
  EXPECT_EQ(static_cast<size_t>(Reg.gauge("store.bytes_resident").value()),
            St.pageCacheResidentBytes());
}

//===----------------------------------------------------------------------===//
// SnapSource unification
//===----------------------------------------------------------------------===//

TEST(SnapSourceTest, DirectoryArchiveAndQueueFeedIdentically) {
  // The same three snaps through all three source shapes must produce
  // stores with identical live content.
  std::vector<SnapFile> Snaps;
  for (int I = 0; I < 3; ++I)
    Snaps.push_back(makeSnap("alpha", "app", 10 + I, 100 + I * 10,
                             SnapReason::Unhandled, {{"mod", true}}, "mod"));

  std::string SnapDir = tempStoreDir("src-dir");
  fs::create_directories(SnapDir);
  for (size_t I = 0; I < Snaps.size(); ++I)
    ASSERT_TRUE(saveSnap(Snaps[I],
                         SnapDir + "/snap-" + std::to_string(I) + ".tbsnap"));
  std::string ArchivePath = tempStoreDir("src-arc") + ".tbar";
  {
    SnapArchiveWriter W;
    ASSERT_TRUE(W.open(ArchivePath));
    for (const SnapFile &S : Snaps)
      ASSERT_TRUE(W.append(S.serialize()));
  }
  QueueSnapSource Queue;
  for (const SnapFile &S : Snaps)
    Queue.pushSnap(S, "pushed");

  DirectorySnapSource DirSrc(SnapDir);
  ArchiveSnapSource ArcSrc(ArchivePath);
  EXPECT_EQ(DirSrc.fileCount(), 3u);
  EXPECT_EQ(ArcSrc.entryCount(), 3u);
  EXPECT_EQ(Queue.pending(), 3u);

  auto StoreFrom = [&](SnapSource &Src, const std::string &Tag,
                       std::multiset<std::pair<uint64_t, uint64_t>> &Out) {
    std::string Dir = tempStoreDir("src-store-" + Tag);
    SnapStoreOptions O;
    std::string Err;
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    CollectorService Svc(St);
    EXPECT_EQ(Src.feed(Svc), 3u);
    Svc.drain();
    EXPECT_EQ(Svc.errors(), 0u);
    SnapStore::Cursor Cur = St.scan(SnapQuery());
    while (const SnapStoreEntry *E = Cur.next())
      Out.insert({E->PayloadHash, E->Fingerprint});
  };
  std::multiset<std::pair<uint64_t, uint64_t>> FromDir, FromArc, FromQueue;
  StoreFrom(DirSrc, "dir", FromDir);
  StoreFrom(ArcSrc, "arc", FromArc);
  StoreFrom(Queue, "queue", FromQueue);
  EXPECT_EQ(FromDir.size(), 3u);
  EXPECT_EQ(FromDir, FromArc);
  EXPECT_EQ(FromDir, FromQueue);
}

//===----------------------------------------------------------------------===//
// Store residency gauge
//===----------------------------------------------------------------------===//

TEST(StoreResidencyTest, BytesResidentGaugeTracksLoads) {
  Gauge &G = MetricsRegistry::global().gauge("store.bytes_resident");

  int64_t Before = G.value();
  MapFileStore MS;
  MapFile M;
  M.ModuleName = "modx";
  M.Checksum = MD5::hash("modx", 4);
  M.Files = {"a.ml"};
  M.Dags.emplace_back();
  MS.add(M);
  EXPECT_GT(MS.residentBytes(), 0u);
  EXPECT_EQ(G.value() - Before, static_cast<int64_t>(MS.residentBytes()));

  // Replacement accounts the old mapfile out, not just the new one in.
  MapFile M2 = M;
  M2.Files.push_back("b.ml");
  MS.add(M2);
  EXPECT_EQ(G.value() - Before, static_cast<int64_t>(MS.residentBytes()));

  // SignatureStore::load publishes the loaded store's residency.
  FaultSignature Sig;
  Sig.Kind = "fault:test@modx";
  Sig.Modules = {"modx"};
  SignatureStore SS;
  SS.add(Sig, "label-1");
  SS.add(Sig, "label-2");
  std::string Path = tempStoreDir("resid") + ".tbsig";
  ASSERT_TRUE(SS.save(Path));
  int64_t Before2 = G.value();
  SignatureStore Loaded;
  std::string Err;
  ASSERT_TRUE(SignatureStore::load(Path, Loaded, Err)) << Err;
  EXPECT_EQ(Loaded.size(), 1u);
  EXPECT_GT(Loaded.residentBytes(), 0u);
  EXPECT_EQ(G.value() - Before2,
            static_cast<int64_t>(Loaded.residentBytes()));
}

//===----------------------------------------------------------------------===//
// Ingestion ordering
//===----------------------------------------------------------------------===//

TEST(CollectorServiceTest, DrainStoresInGlobalArrivalOrder) {
  std::string Dir = tempStoreDir("order");
  SnapStoreOptions O;
  std::string Err;
  SnapStore St;
  ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
  CollectorOptions CO;
  CO.Shards = 3; // Interleave sources across shards on purpose.
  CollectorService Svc(St, CO);

  std::vector<uint64_t> ExpectedPids;
  for (int I = 0; I < 12; ++I) {
    SnapFile S = makeSnap("m", "app", 500 + I, 100 + I, SnapReason::Api,
                          {{"mod", true}});
    ASSERT_TRUE(Svc.push(S.serialize(), static_cast<uint64_t>(I % 5)));
    ExpectedPids.push_back(500 + static_cast<uint64_t>(I));
  }
  EXPECT_EQ(Svc.pending(), 12u);
  EXPECT_EQ(Svc.drain(), 12u);
  EXPECT_EQ(Svc.errors(), 0u);

  // Ids ascend in arrival order, whatever shard each item queued in.
  std::vector<uint64_t> Pids;
  SnapStore::Cursor Cur = St.scan(SnapQuery());
  while (const SnapStoreEntry *E = Cur.next())
    Pids.push_back(E->Pid);
  EXPECT_EQ(Pids, ExpectedPids);
}

//===----------------------------------------------------------------------===//
// The 100-seed ingest-under-chaos sweep
//===----------------------------------------------------------------------===//

namespace {

const char *SweepEchoServer = R"(
fn main() export {
  srv_register(40);
  var buf = alloc(64);
  var lenp = alloc(8);
  while (1) {
    var id = rpc_recv(buf, 64, lenp);
    store(buf, load(buf) * 10);
    rpc_reply(id, buf, 8);
  }
}
)";

const char *SweepSnapClient = R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 4);
  var status = rpc(40, arg, 8, rep);
  print(status);
  print(load(rep));
  snap(1);
}
)";

/// Client on alpha calls the echo server on beta and snaps; everything
/// travels to the collector machine as SnapPush frames (the scenario of
/// test_transport's chaos sweep, here with a CollectorService attached).
struct SweepFleet {
  MetricsRegistry Reg;
  Deployment D;
  Machine *MA, *MB;
  Process *Client, *Server;
  uint64_t CollectorId = 0;

  SweepFleet() {
    D.Metrics = &Reg;
    MA = D.addMachine("alpha", "winnt");
    MB = D.addMachine("beta", "solaris", 100000);
    CollectorId = D.enableNetworkTransport();
    Client = MA->createProcess("client");
    Server = MB->createProcess("server");
  }

  void deployAndRun(const Module &CM, const Module &SM) {
    std::string Error;
    ASSERT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
    ASSERT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
    Server->start("main");
    for (int I = 0; I < 10; ++I)
      D.world().stepSlice();
    Client->start("main");
    while (!Client->Exited && D.world().cycles() < 50'000'000)
      D.world().stepSlice();
    ASSERT_TRUE(Client->Exited);
  }
};

/// Asserts the indexed cursor and the scan oracle return byte-identical
/// streams for \p Q: same entries, same order, same payload bytes.
void expectQueryEqualsScan(const SnapStore &St, const SnapQuery &Q,
                           const char *Tag) {
  SCOPED_TRACE(Tag);
  SnapStore::Cursor A = St.query(Q);
  SnapStore::Cursor B = St.scan(Q);
  for (;;) {
    const SnapStoreEntry *EA = A.next();
    const SnapStoreEntry *EB = B.next();
    if (!EA || !EB) {
      EXPECT_EQ(EA, EB) << "cursor lengths differ";
      return;
    }
    ASSERT_EQ(EA->Id, EB->Id);
    std::vector<uint8_t> ImgA, ImgB;
    ASSERT_TRUE(St.loadImage(*EA, ImgA));
    ASSERT_TRUE(St.loadImage(*EB, ImgB));
    EXPECT_EQ(ImgA, ImgB);
  }
}

} // namespace

TEST(CollectorChaosSweepTest, HundredSeedsIndexMatchesLinearScan) {
  Module CM = compileOrDie(SweepSnapClient, "climod", Technology::Native,
                           "client.ml");
  Module SM = compileOrDie(SweepEchoServer, "srvmod", Technology::Native,
                           "server.ml");

  const int Sweeps = 100;
  uint64_t Base = testSeed();
  std::string Dir = tempStoreDir("chaos");
  size_t TotalIngested = 0;
  ThreadPool Pool(4); // Shared by every seed's parallel-query check.
  for (int I = 0; I < Sweeps; ++I) {
    uint64_t Seed = Base + static_cast<uint64_t>(I);
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    std::error_code EC;
    fs::remove_all(Dir, EC);

    MetricsRegistry StoreReg;
    SnapStoreOptions O;
    O.Shards = 3;
    O.Metrics = &StoreReg;
    std::string Err;
    SnapStore St;
    ASSERT_TRUE(St.open(Dir, O, Err)) << Err;
    CollectorOptions CO;
    CO.Metrics = &StoreReg;
    CollectorService Svc(St, CO);

    FaultPlan Plan = FaultPlan::randomNetwork(Seed, /*MaxPacket=*/16,
                                              /*MaxSlice=*/60);
    SweepFleet T;
    FaultInjector FI(Plan, &T.Reg);
    T.D.world().Injector = &FI;
    Svc.attachTransport(*T.D.collectorEndpoint());
    T.deployAndRun(CM, SM);
    if (::testing::Test::HasFatalFailure())
      return;
    ASSERT_TRUE(T.D.pumpNetwork()) << "transport hang under plan:\n"
                                   << Plan.toText();
    Svc.drain();
    Svc.detachTransport();
    ASSERT_EQ(Svc.errors(), 0u) << Svc.lastError();

    // Chained handling: the deployment's own snaps() view kept working
    // while the collector indexed; every delivered push was ingested.
    EXPECT_EQ(Svc.ingested(), T.D.snaps().size());
    EXPECT_EQ(St.totalRefs(), Svc.ingested());
    TotalIngested += Svc.ingested();

    // Query-vs-scan equivalence on every predicate dimension this run's
    // data can exercise.
    expectQueryEqualsScan(St, SnapQuery(), "all");
    expectQueryEqualsScan(St, SnapQuery().setMachine("alpha"), "machine");
    expectQueryEqualsScan(St, SnapQuery().setModule("climod"), "module");
    uint64_t MinTs = UINT64_MAX, MaxTs = 0;
    const SnapStoreEntry *First = nullptr;
    SnapStore::Cursor Cur = St.scan(SnapQuery());
    while (const SnapStoreEntry *E = Cur.next()) {
      if (!First)
        First = E;
      MinTs = std::min(MinTs, E->Timestamp);
      MaxTs = std::max(MaxTs, E->Timestamp);
    }
    if (First) {
      expectQueryEqualsScan(St, SnapQuery().setKind(First->Kind), "kind");
      expectQueryEqualsScan(
          St, SnapQuery().setFingerprint(First->Fingerprint), "sig");
      expectQueryEqualsScan(
          St,
          SnapQuery().setMachine("alpha").setWindow(
              MinTs, MinTs + (MaxTs - MinTs) / 2),
          "machine+window");
    }

    // Reopen the same store through the TBIX v2 checkpoint on even
    // seeds and via full journal replay on odd ones: the equivalence
    // must be open-path-independent, serial or parallel.
    St.close(); // Writes the checkpoint.
    SnapStoreOptions RO = O;
    RO.ReadOnly = true;
    RO.Paged = I % 2 == 0;
    SnapStore Re;
    ASSERT_TRUE(Re.open(Dir, RO, Err)) << Err;
    EXPECT_EQ(Re.openedPaged(), RO.Paged);
    expectQueryEqualsScan(Re, SnapQuery(), "reopen-all");
    expectQueryEqualsScan(Re, SnapQuery().setMachine("alpha"),
                          "reopen-machine");
    for (const SnapQuery &Q : {SnapQuery(), SnapQuery().setModule("climod")})
      EXPECT_EQ(Re.queryIds(Q, &Pool), cursorIds(Re.scan(Q)));
  }
  EXPECT_GT(TotalIngested, 0u) << "sweep never delivered a snap";
  std::printf("[ collector chaos sweep: %d seeds, %zu snaps ingested ]\n",
              Sweeps, TotalIngested);
}
