//===- tests/test_support.cpp - support library tests ---------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "support/Compress.h"
#include "support/MD5.h"
#include "support/Random.h"
#include "support/SimClock.h"
#include "support/Text.h"

#include <gtest/gtest.h>

using namespace traceback;

// RFC 1321 test vectors.
TEST(MD5Test, Rfc1321Vectors) {
  auto HashOf = [](const std::string &S) {
    return MD5::hash(S.data(), S.size()).toHex();
  };
  EXPECT_EQ(HashOf(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HashOf("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(HashOf("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HashOf("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HashOf("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      HashOf("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(HashOf("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(MD5Test, IncrementalMatchesOneShot) {
  std::string Data(10000, 'x');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>('a' + I % 26);
  MD5 Incremental;
  size_t Pos = 0;
  size_t Chunks[] = {1, 63, 64, 65, 1000, 8000, 777};
  for (size_t C : Chunks) {
    size_t Take = std::min(C, Data.size() - Pos);
    Incremental.update(Data.data() + Pos, Take);
    Pos += Take;
  }
  Incremental.update(Data.data() + Pos, Data.size() - Pos);
  EXPECT_EQ(Incremental.final().toHex(),
            MD5::hash(Data.data(), Data.size()).toHex());
}

TEST(MD5Test, HexRoundTrip) {
  MD5Digest D = MD5::hash("hello", 5);
  MD5Digest Back;
  ASSERT_TRUE(MD5Digest::fromHex(D.toHex(), Back));
  EXPECT_EQ(D, Back);
  EXPECT_FALSE(MD5Digest::fromHex("zz", Back));
  EXPECT_FALSE(MD5Digest::fromHex(std::string(32, 'g'), Back));
}

TEST(ByteStreamTest, PrimitivesRoundTrip) {
  std::vector<uint8_t> Buf;
  ByteWriter W(Buf);
  W.writeU8(0xAB);
  W.writeU16(0xBEEF);
  W.writeU32(0xDEADBEEF);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI64(-42);
  W.writeVarU64(0);
  W.writeVarU64(127);
  W.writeVarU64(128);
  W.writeVarU64(UINT64_MAX);
  W.writeString("hello world");
  W.writeBlob({1, 2, 3});

  ByteReader R(Buf);
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU16(), 0xBEEF);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readI64(), -42);
  EXPECT_EQ(R.readVarU64(), 0u);
  EXPECT_EQ(R.readVarU64(), 127u);
  EXPECT_EQ(R.readVarU64(), 128u);
  EXPECT_EQ(R.readVarU64(), UINT64_MAX);
  EXPECT_EQ(R.readString(), "hello world");
  EXPECT_EQ(R.readBlob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(R.failed());
  EXPECT_TRUE(R.atEnd());
}

TEST(ByteStreamTest, TruncationSetsFailed) {
  std::vector<uint8_t> Buf;
  ByteWriter W(Buf);
  W.writeU32(7);
  ByteReader R(Buf);
  R.readU32();
  R.readU64(); // Past the end.
  EXPECT_TRUE(R.failed());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(ByteStreamTest, MalformedStringLength) {
  std::vector<uint8_t> Buf;
  ByteWriter W(Buf);
  W.writeVarU64(1000); // Claims 1000 bytes follow; none do.
  ByteReader R(Buf);
  EXPECT_EQ(R.readString(), "");
  EXPECT_TRUE(R.failed());
}

TEST(CompressTest, RoundTripVaried) {
  Rng Rand(7);
  for (int Case = 0; Case < 20; ++Case) {
    std::vector<uint8_t> Data;
    size_t Len = Rand.below(20000);
    // Mix of random and repetitive content.
    for (size_t I = 0; I < Len; ++I) {
      if (Rand.chance(3, 4))
        Data.push_back(static_cast<uint8_t>(Rand.below(4)));
      else
        Data.push_back(static_cast<uint8_t>(Rand.next()));
    }
    std::vector<uint8_t> Packed = lzCompress(Data);
    std::vector<uint8_t> Back;
    ASSERT_TRUE(lzDecompress(Packed, Back));
    EXPECT_EQ(Back, Data);
  }
}

TEST(CompressTest, EmptyInput) {
  std::vector<uint8_t> Packed = lzCompress({});
  std::vector<uint8_t> Back{1, 2, 3};
  ASSERT_TRUE(lzDecompress(Packed, Back));
  EXPECT_TRUE(Back.empty());
}

TEST(CompressTest, RepetitiveDataCompressesWell) {
  // Trace-buffer-like content: repeating 32-bit patterns.
  std::vector<uint8_t> Data;
  for (int I = 0; I < 4096; ++I) {
    uint32_t W = 0x80000400u | (I % 7);
    for (int B = 0; B < 4; ++B)
      Data.push_back(static_cast<uint8_t>(W >> (B * 8)));
  }
  std::vector<uint8_t> Packed = lzCompress(Data);
  EXPECT_LT(Packed.size() * 5, Data.size()) << "expected at least 5x";
  std::vector<uint8_t> Back;
  ASSERT_TRUE(lzDecompress(Packed, Back));
  EXPECT_EQ(Back, Data);
}

TEST(CompressTest, CorruptStreamRejected) {
  std::vector<uint8_t> Data(1000, 42);
  std::vector<uint8_t> Packed = lzCompress(Data);
  Packed.resize(Packed.size() / 2); // Truncate.
  std::vector<uint8_t> Back;
  EXPECT_FALSE(lzDecompress(Packed, Back));
}

TEST(SimClockTest, SkewAndDrift) {
  SimClock Base(0, 1, 1);
  SimClock Ahead(1000, 1, 1);
  SimClock Fast(0, 1001, 1000);
  EXPECT_EQ(Base.read(500), 500u);
  EXPECT_EQ(Ahead.read(500), 1500u);
  EXPECT_EQ(Fast.read(1000000), 1001000u);
  // Drift accumulates.
  EXPECT_GT(Fast.read(2000000) - Base.read(2000000),
            Fast.read(1000000) - Base.read(1000000));
}

TEST(TextTest, Helpers) {
  EXPECT_EQ(formatv("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(splitString("a, b,,c", ", "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(trimString("  hi \t"), "hi");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  int64_t V = 0;
  EXPECT_TRUE(parseInt("0x10", V));
  EXPECT_EQ(V, 16);
  EXPECT_TRUE(parseInt("-5", V));
  EXPECT_EQ(V, -5);
  EXPECT_FALSE(parseInt("12x", V));
  EXPECT_FALSE(parseInt("", V));
}

TEST(RandomTest, DeterministicAndRanged) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
  for (int I = 0; I < 1000; ++I) {
    int64_t V = A.range(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
    double U = A.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}
