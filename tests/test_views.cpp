//===- tests/test_views.cpp - Display layer tests -------------------------===//
//
// Part of the TraceBack reproduction project (paper section 4.3).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "reconstruct/Stitch.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
ThreadTrace makeTrace(uint64_t Tid, std::initializer_list<TraceEvent> Evs) {
  ThreadTrace T;
  T.ThreadId = Tid;
  T.RuntimeId = 42;
  T.MachineName = "m";
  T.ProcessName = "p";
  T.Events = Evs;
  return T;
}

TraceEvent line(const char *File, uint32_t Line, uint32_t Depth = 0,
                uint64_t Ts = 0, uint32_t Repeat = 1) {
  TraceEvent E;
  E.EventKind = TraceEvent::Kind::Line;
  E.Module = "mod";
  E.File = File;
  E.Function = "f";
  E.Line = Line;
  E.Depth = Depth;
  E.Timestamp = Ts;
  E.Repeat = Repeat;
  return E;
}
} // namespace

TEST(ViewsTest, FlatTraceShowsRepeatAndTruncation) {
  ThreadTrace T = makeTrace(3, {line("a.c", 10, 0, 0, 7)});
  T.Truncated = true;
  std::string S = renderFlatTrace(T);
  EXPECT_NE(S.find("thread 3"), std::string::npos);
  EXPECT_NE(S.find("a.c:10"), std::string::npos);
  EXPECT_NE(S.find("(x7)"), std::string::npos);
  EXPECT_NE(S.find("older history overwritten"), std::string::npos);
}

TEST(ViewsTest, CallTreeIndentsByDepth) {
  ThreadTrace T =
      makeTrace(1, {line("a.c", 1, 0), line("a.c", 2, 1), line("a.c", 3, 2)});
  std::string S = renderCallTree(T);
  size_t P1 = S.find("a.c:1");
  size_t P2 = S.find("a.c:2");
  size_t P3 = S.find("a.c:3");
  ASSERT_NE(P1, std::string::npos);
  ASSERT_NE(P2, std::string::npos);
  ASSERT_NE(P3, std::string::npos);
  // Deeper lines start further from their line's beginning.
  auto ColOf = [&](size_t Pos) {
    size_t Nl = S.rfind('\n', Pos);
    return Pos - (Nl == std::string::npos ? 0 : Nl);
  };
  EXPECT_LT(ColOf(P1), ColOf(P2));
  EXPECT_LT(ColOf(P2), ColOf(P3));
}

TEST(ViewsTest, MultiThreadOrdersByTimestamp) {
  ThreadTrace A = makeTrace(1, {line("a.c", 1, 0, 100),
                                line("a.c", 2, 0, 300)});
  ThreadTrace B = makeTrace(2, {line("b.c", 9, 0, 200)});
  std::string S = renderMultiThread({&A, &B});
  size_t P1 = S.find("a.c:1");
  size_t P9 = S.find("b.c:9");
  size_t P2 = S.find("a.c:2");
  ASSERT_NE(P1, std::string::npos);
  ASSERT_NE(P9, std::string::npos);
  ASSERT_NE(P2, std::string::npos);
  EXPECT_LT(P1, P9);
  EXPECT_LT(P9, P2) << "interleaving must respect corrected time";
}

TEST(ViewsTest, TimelineMonotonicPerThread) {
  // Events lacking timestamps inherit order; merged timeline never
  // reorders events within one thread.
  ThreadTrace A = makeTrace(
      1, {line("a.c", 1, 0, 50), line("a.c", 2, 0, 0), line("a.c", 3, 0, 60),
          line("a.c", 4, 0, 0)});
  ReconstructedTrace Holder;
  Holder.Threads.push_back(A);
  DistributedStitcher St;
  St.addTrace(Holder);
  auto Timeline = St.mergeTimeline();
  ASSERT_EQ(Timeline.size(), 4u);
  size_t LastIdx = 0;
  for (const auto &E : Timeline) {
    EXPECT_GE(E.EventIndex + 1, LastIdx + 1);
    LastIdx = E.EventIndex;
  }
}

TEST(ViewsTest, FaultViewPicksFaultingThread) {
  SnapFile Snap;
  Snap.Reason = SnapReason::Unhandled;
  Snap.FaultThread = 2;
  Snap.FaultCodeValue = 1; // Segv.
  ReconstructedTrace T;
  T.Threads.push_back(makeTrace(1, {line("a.c", 1)}));
  T.Threads.push_back(makeTrace(2, {line("b.c", 7)}));
  std::string S = renderFaultView(Snap, T);
  EXPECT_NE(S.find("thread 2"), std::string::npos);
  EXPECT_NE(S.find("b.c:7"), std::string::npos);
  EXPECT_EQ(S.find("a.c:1"), std::string::npos)
      << "only the faulting thread's tree";
  EXPECT_NE(S.find("access violation"), std::string::npos);
}

TEST(ViewsTest, SignalCodesRenderAsSignals) {
  ThreadTrace T = makeTrace(1, {});
  TraceEvent E;
  E.EventKind = TraceEvent::Kind::Exception;
  E.FaultCodeValue = 0x8000 | 11;
  T.Events.push_back(E);
  std::string S = renderFlatTrace(T);
  EXPECT_NE(S.find("signal 11"), std::string::npos);
}

TEST(ViewsTest, EmptyMemoryDumpExplainsItself) {
  SnapFile Snap;
  EXPECT_NE(renderMemoryDump(Snap).find("capture_memory"),
            std::string::npos);
}

TEST(StitchTest, GapInSequenceWarns) {
  // CallSend seq 1 ... ReplyRecv seq 4 with 2,3 lost (ring overwrite).
  TraceEvent S1;
  S1.EventKind = TraceEvent::Kind::Sync;
  S1.Sync = SyncKind::CallSend;
  S1.LogicalThreadId = 7;
  S1.Sequence = 1;
  TraceEvent S4 = S1;
  S4.Sync = SyncKind::ReplyRecv;
  S4.Sequence = 4;
  ThreadTrace A = makeTrace(1, {S1, S4});
  ReconstructedTrace Holder;
  Holder.Threads.push_back(A);
  DistributedStitcher St;
  St.addTrace(Holder);
  std::vector<std::string> Warnings;
  auto Logical = St.stitch(Warnings);
  ASSERT_EQ(Logical.size(), 1u);
  ASSERT_FALSE(Warnings.empty());
  EXPECT_NE(Warnings[0].find("gap"), std::string::npos);
}
