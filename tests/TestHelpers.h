//===- tests/TestHelpers.h - Shared test scaffolding ------------*- C++ -*-===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEBACK_TESTS_TESTHELPERS_H
#define TRACEBACK_TESTS_TESTHELPERS_H

#include "core/Session.h"
#include "lang/CodeGen.h"
#include "reconstruct/Views.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace traceback {
namespace testing_helpers {

/// On any assertion failure, prints the active TRACEBACK_TEST_SEED and a
/// one-line repro command — a failing 200-seed sweep is useless without
/// the seed that produced it, and CI logs often truncate the banner the
/// seed was printed in at startup.
class SeedReproListener : public ::testing::EmptyTestEventListener {
  // The full test name is cached on test start: OnTestPartResult runs
  // with gtest's UnitTest mutex held, so asking UnitTest::GetInstance()
  // for current_test_info() there would self-deadlock.
  std::string Current;

  void OnTestStart(const ::testing::TestInfo &Info) override {
    Current = std::string(Info.test_suite_name()) + "." + Info.name();
  }

  void OnTestPartResult(const ::testing::TestPartResult &Result) override {
    if (!Result.failed() || Current.empty())
      return;
    uint64_t Seed = seedFromEnv("TRACEBACK_TEST_SEED",
                                0x7ace'bacc'0000'0001ULL);
    std::printf("[ repro: TRACEBACK_TEST_SEED=%llu ctest "
                "--output-on-failure -R '%s' ]\n",
                static_cast<unsigned long long>(Seed), Current.c_str());
    std::fflush(stdout);
  }
};

/// Registers the repro listener once per test binary (first call wins;
/// gtest owns the listener afterwards).
inline void installSeedReproListener() {
  static bool Installed = [] {
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new SeedReproListener);
    return true;
  }();
  (void)Installed;
}

/// One inline registrar per binary that includes this header: the repro
/// listener is active without any per-test setup.
struct SeedReproRegistrar {
  SeedReproRegistrar() { installSeedReproListener(); }
};
inline SeedReproRegistrar SeedReproRegistrarInstance;

/// Base seed for property tests: TRACEBACK_TEST_SEED when set, else
/// \p Default. Printed once so a failing sweep is replayable with
/// `TRACEBACK_TEST_SEED=<seed> ctest ...`.
inline uint64_t testSeed(uint64_t Default = 0x7ace'bacc'0000'0001ULL) {
  static uint64_t Seed = [Default] {
    uint64_t S = seedFromEnv("TRACEBACK_TEST_SEED", Default);
    std::printf("[ property-test seed: %llu (0x%llx) — override with "
                "TRACEBACK_TEST_SEED ]\n",
                static_cast<unsigned long long>(S),
                static_cast<unsigned long long>(S));
    std::fflush(stdout);
    return S;
  }();
  return Seed;
}

/// Compiles MiniLang or aborts the test.
inline Module compileOrDie(const std::string &Source,
                           const std::string &ModuleName = "test",
                           Technology Tech = Technology::Native,
                           const std::string &FileName = "test.ml") {
  Module M;
  std::string Error;
  if (!minilang::compileMiniLang(Source, FileName, ModuleName, Tech, M,
                                 Error)) {
    ADD_FAILURE() << "MiniLang compile failed: " << Error;
    return M;
  }
  return M;
}

/// A one-machine, one-process scenario.
struct SingleProcess {
  Deployment D;
  Machine *M = nullptr;
  Process *P = nullptr;
  std::vector<Process::OracleEvent> Oracle;

  explicit SingleProcess(bool WithOracle = false) {
    M = D.addMachine("host0");
    P = M->createProcess("app");
    if (WithOracle)
      P->OracleTrace = &Oracle;
  }

  /// Deploys \p Mod (optionally instrumented), starts \p Entry, runs.
  World::RunResult runModule(const Module &Mod, bool Instrument,
                             const std::string &Entry = "main",
                             uint64_t MaxCycles = 50'000'000) {
    std::string Error;
    LoadedModule *LM = D.deploy(*P, Mod, Instrument, Error);
    EXPECT_NE(LM, nullptr) << Error;
    if (!LM)
      return World::RunResult::Idle;
    Thread *T = P->start(Entry);
    EXPECT_NE(T, nullptr) << "entry symbol not found: " << Entry;
    if (!T)
      return World::RunResult::Idle;
    return D.world().run(MaxCycles);
  }
};

/// Extracts the (module, file, line) sequence of Line events.
inline std::vector<std::string> lineSequence(const ThreadTrace &T) {
  std::vector<std::string> Out;
  for (const TraceEvent &E : T.Events)
    if (E.EventKind == TraceEvent::Kind::Line)
      Out.push_back(E.Module + "!" + E.File + ":" + std::to_string(E.Line));
  return Out;
}

/// Extracts the oracle's sequence for one thread in the same format.
inline std::vector<std::string>
oracleSequence(const std::vector<Process::OracleEvent> &Oracle,
               uint64_t ThreadId) {
  std::vector<std::string> Out;
  for (const Process::OracleEvent &E : Oracle)
    if (E.ThreadId == ThreadId)
      Out.push_back(E.Module + "!" + E.File + ":" + std::to_string(E.Line));
  return Out;
}

/// True if \p Suffix is a suffix of \p Full.
inline bool isSuffixOf(const std::vector<std::string> &Suffix,
                       const std::vector<std::string> &Full) {
  if (Suffix.size() > Full.size())
    return false;
  return std::equal(Suffix.rbegin(), Suffix.rend(), Full.rbegin());
}

} // namespace testing_helpers
} // namespace traceback

#endif // TRACEBACK_TESTS_TESTHELPERS_H
