//===- tests/test_baselines.cpp - Baseline comparator tests ---------------===//
//
// Part of the TraceBack reproduction project (paper sections 2.1 and 7).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "baselines/BallLarus.h"
#include "baselines/NaiveTracer.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
const char *KernelSource = R"(
fn work(n) {
  var acc = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) { acc = acc + i; }
    else {
      if (i % 3 == 1) { acc = acc + 2 * i; } else { acc = acc - 1; }
    }
  }
  return acc;
}
fn main() export {
  print(work(500));
}
)";
} // namespace

TEST(NaiveTracerTest, TransparentButMoreExpensive) {
  Module Orig = compileOrDie(KernelSource);
  SingleProcess Plain, Dag, Naive;
  Plain.runModule(Orig, false);

  // TraceBack-style.
  Dag.runModule(Orig, true);

  // Naive one-word-per-block.
  Module NaiveMod;
  MapFile Map;
  InstrumentStats NaiveStats;
  std::string Error;
  ASSERT_TRUE(
      naiveInstrumentModule(Orig, NaiveMod, Map, &NaiveStats, Error))
      << Error;
  Naive.D.maps().add(Map);
  Naive.D.runtimeFor(*Naive.P, Technology::Native);
  ASSERT_NE(Naive.P->loadModule(NaiveMod, Error), nullptr) << Error;
  Naive.P->start("main");
  Naive.D.world().run();

  EXPECT_EQ(Naive.P->Output, Plain.P->Output);
  EXPECT_EQ(Dag.P->Output, Plain.P->Output);
  // The whole point of DAG tiling: strictly cheaper than a record per
  // block (paper section 2.1).
  EXPECT_LT(Dag.P->CyclesUsed, Naive.P->CyclesUsed);
  EXPECT_GT(Naive.P->CyclesUsed, Plain.P->CyclesUsed);
}

TEST(NaiveTracerTest, TracesStillReconstruct) {
  Module Orig = compileOrDie(R"(
fn main() export {
  var x = 3;
  x = x * 7;
  var p = 0;
  print(load(p));
}
)");
  SingleProcess S;
  Module NaiveMod;
  MapFile Map;
  std::string Error;
  ASSERT_TRUE(naiveInstrumentModule(Orig, NaiveMod, Map, nullptr, Error));
  S.D.maps().add(Map);
  S.D.runtimeFor(*S.P, Technology::Native);
  ASSERT_NE(S.P->loadModule(NaiveMod, Error), nullptr) << Error;
  S.P->start("main");
  S.D.world().run();
  ASSERT_FALSE(S.D.snaps().empty());
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  std::vector<std::string> Lines = lineSequence(T.Threads[0]);
  EXPECT_FALSE(Lines.empty());
  EXPECT_NE(Lines.back().find(":6"), std::string::npos);
}

TEST(BallLarusTest, CountsPathsCorrectly) {
  // A function with two if/else diamonds in sequence has 4 acyclic paths
  // per region; the loop splits regions at the back edge.
  Module Orig = compileOrDie(R"(
fn f(x) export {
  var y = 0;
  if (x > 0) { y = 1; } else { y = 2; }
  if (x > 5) { y = y + 10; } else { y = y + 20; }
  return y;
}
fn main() export {
  print(f(7) + f(-1));
}
)");
  BallLarusResult Result;
  std::string Error;
  ASSERT_TRUE(ballLarusInstrument(Orig, Result, Error)) << Error;
  EXPECT_GT(Result.TotalPaths, 0u);

  // Run it and check counters: two calls to f -> total count 2 across f's
  // counter range, on two distinct paths.
  SingleProcess S;
  ASSERT_NE(S.P->loadModule(Result.Out, Error), nullptr) << Error;
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
  EXPECT_EQ(S.P->Output, "33\n"); // 1+10 + 2+20.

  uint64_t TableAddr = S.P->resolveSymbol("__bl_counters");
  ASSERT_NE(TableAddr, 0u);
  const BallLarusResult::FuncPaths *F = nullptr;
  for (const auto &FP : Result.Functions)
    if (FP.Name == "f")
      F = &FP;
  ASSERT_NE(F, nullptr);
  uint64_t Hits = 0, DistinctPaths = 0;
  for (uint64_t I = 0; I < F->Count; ++I) {
    bool Ok = true;
    uint64_t C = S.P->Mem.read64(TableAddr + (F->Base + I) * 8, Ok);
    ASSERT_TRUE(Ok);
    Hits += C;
    if (C != 0)
      ++DistinctPaths;
  }
  EXPECT_EQ(Hits, 2u) << "f executed twice";
  EXPECT_EQ(DistinctPaths, 2u) << "two different paths taken";
}

TEST(BallLarusTest, LoopIterationsCounted) {
  Module Orig = compileOrDie(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 17; i = i + 1) { s = s + i; }
  print(s);
}
)");
  BallLarusResult Result;
  std::string Error;
  ASSERT_TRUE(ballLarusInstrument(Orig, Result, Error)) << Error;
  SingleProcess S;
  ASSERT_NE(S.P->loadModule(Result.Out, Error), nullptr) << Error;
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
  EXPECT_EQ(S.P->Output, "136\n");
  uint64_t TableAddr = S.P->resolveSymbol("__bl_counters");
  uint64_t Total = 0;
  for (uint64_t I = 0; I < Result.TotalPaths; ++I) {
    bool Ok = true;
    Total += S.P->Mem.read64(TableAddr + I * 8, Ok);
  }
  // Every loop iteration ends one acyclic path; total path executions must
  // be >= 17.
  EXPECT_GE(Total, 17u);
}

TEST(BallLarusTest, CheaperThanTraceBackButNoForensics) {
  Module Orig = compileOrDie(KernelSource);
  SingleProcess Plain, Dag, Bl;
  Plain.runModule(Orig, false);
  Dag.runModule(Orig, true);

  BallLarusResult Result;
  std::string Error;
  ASSERT_TRUE(ballLarusInstrument(Orig, Result, Error)) << Error;
  ASSERT_NE(Bl.P->loadModule(Result.Out, Error), nullptr) << Error;
  Bl.P->start("main");
  Bl.D.world().run();
  EXPECT_EQ(Bl.P->Output, Plain.P->Output);
  // BL aggregates: cheaper than TraceBack's temporal trace (section 7)...
  EXPECT_LT(Bl.P->CyclesUsed, Dag.P->CyclesUsed);
  // ...but a crash leaves no execution history at all: nothing to snap,
  // no trace buffers, only counters.
  EXPECT_TRUE(Bl.D.snaps().empty());
}

TEST(BallLarusTest, RejectsEhModules) {
  Module Orig = compileOrDie(
      "fn main() export { try { throw 1; } catch { } }");
  BallLarusResult Result;
  std::string Error;
  EXPECT_FALSE(ballLarusInstrument(Orig, Result, Error));
  EXPECT_NE(Error.find("exception"), std::string::npos);
}
