//===- tests/test_analysis.cpp - CFG and liveness tests -------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Liveness.h"
#include "isa/Assembler.h"
#include "isa/Builder.h"
#include "vm/Syscalls.h"

#include <gtest/gtest.h>

using namespace traceback;

namespace {
Module assemble(const std::string &Src) {
  Assembler Asm(syscallAssemblerConstants());
  Module M;
  std::string Error;
  EXPECT_TRUE(Asm.assemble(Src, M, Error)) << Error;
  return M;
}

const FunctionCFG *byName(const std::vector<FunctionCFG> &CFGs,
                          const std::string &Name) {
  for (const FunctionCFG &F : CFGs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}
} // namespace

TEST(CfgTest, DiamondShape) {
  Module M = assemble(R"(.module m
.func f export
  brz r0, else_part
  movi r1, 1
  br join
else_part:
  movi r1, 2
join:
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->Blocks.size(), 4u);
  // Entry has two successors; both lead to the join.
  EXPECT_EQ(F->Blocks[0].Succs.size(), 2u);
  EXPECT_TRUE(F->Blocks[0].IsFunctionEntry);
  const BasicBlock *Join = F->blockContaining(F->Blocks.back().StartOffset);
  ASSERT_NE(Join, nullptr);
  EXPECT_EQ(Join->Preds.size(), 2u);
}

TEST(CfgTest, LoopBackEdgeMarked) {
  Module M = assemble(R"(.module m
.func f export
  movi r1, 10
head:
  addi r1, r1, -1
  brnz r1, head
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  ASSERT_NE(F, nullptr);
  int BackTargets = 0;
  for (const BasicBlock &B : F->Blocks)
    if (B.IsBackEdgeTarget)
      ++BackTargets;
  EXPECT_EQ(BackTargets, 1);
}

TEST(CfgTest, CallCreatesReturnPointLeader) {
  Module M = assemble(R"(.module m
.func f export
  movi r0, 1
  call g
  movi r0, 2
  ret
.endfunc
.func g
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->Blocks.size(), 2u);
  EXPECT_TRUE(F->Blocks[0].endsInCall());
  EXPECT_TRUE(F->Blocks[1].IsCallReturnPoint);
}

TEST(CfgTest, HandlerEntriesMarked) {
  Module M = assemble(R"(.module m
.func f export
tb:
  trap 1
te:
  ret
h:
  ret
.try tb te h
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  ASSERT_NE(F, nullptr);
  bool SawHandler = false;
  for (const BasicBlock &B : F->Blocks)
    if (B.IsHandlerEntry)
      SawHandler = true;
  EXPECT_TRUE(SawHandler);
}

TEST(CfgTest, AddressTakenViaReloc) {
  Module M = assemble(R"(.module m
.func f export
  lea r1, g
  callind r1
  ret
.endfunc
.func g
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *G = byName(CFGs, "g");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->Blocks[0].IsAddressTaken);
}

TEST(CfgTest, BranchToMidInstructionRejected) {
  // Hand-craft a module whose branch displacement lands mid-instruction.
  ModuleBuilder B("m");
  B.beginFunction("f", true);
  B.emit(Instruction::brCond(Opcode::BrzL, 0, 3)); // Into the movi below.
  B.emit(Instruction::movI(1, 99));
  B.emit(Instruction::ret());
  Module M;
  std::string Error;
  ASSERT_TRUE(B.finalize(M, Error));
  std::vector<FunctionCFG> CFGs;
  EXPECT_FALSE(buildCFGs(M, CFGs, Error));
  EXPECT_NE(Error.find("mid-instruction"), std::string::npos);
}

TEST(LivenessTest, StraightLine) {
  Module M = assemble(R"(.module m
.func f export
  movi r1, 1
  movi r2, 2
  add r3, r1, r2
  mov r0, r3
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  Liveness L(*F);
  // Before the add (insn 2), r1 and r2 are live.
  uint16_t Live = L.liveBefore(0, 2);
  EXPECT_TRUE(Live & (1 << 1));
  EXPECT_TRUE(Live & (1 << 2));
  // Before insn 0, nothing but calling-convention state matters; r3 dead.
  EXPECT_FALSE(L.liveBefore(0, 0) & (1 << 3));
  std::vector<unsigned> Dead = L.findDeadRegs(0, 0, 2);
  ASSERT_EQ(Dead.size(), 2u);
  EXPECT_EQ(Dead[0], 10u) << "probe scratch preferred";
  EXPECT_EQ(Dead[1], 11u);
}

TEST(LivenessTest, ProbeRegistersLiveForcesSpill) {
  Module M = assemble(R"(.module m
.func f export
  movi r10, 7
  movi r11, 8
entry2:
  add r0, r10, r11
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  Liveness L(*F);
  // At the add, r10/r11 are live: the dead-reg search must avoid them.
  uint32_t AddBlock = 0;
  for (const BasicBlock &B : F->Blocks)
    if (B.Insns.back().Insn.Op == Opcode::Ret)
      AddBlock = B.Index;
  // The add is the third instruction of the (single) block.
  uint16_t Live = L.liveBefore(AddBlock, 2);
  EXPECT_TRUE(Live & (1 << 10));
  EXPECT_TRUE(Live & (1 << 11));
  std::vector<unsigned> Dead = L.findDeadRegs(AddBlock, 2, 1);
  ASSERT_FALSE(Dead.empty());
  EXPECT_NE(Dead[0], 10u);
  EXPECT_NE(Dead[0], 11u);
}

TEST(LivenessTest, LoopKeepsCounterLive) {
  Module M = assemble(R"(.module m
.func f export
  movi r5, 10
head:
  addi r5, r5, -1
  brnz r5, head
  ret
.endfunc
)");
  std::vector<FunctionCFG> CFGs;
  std::string Error;
  ASSERT_TRUE(buildCFGs(M, CFGs, Error)) << Error;
  const FunctionCFG *F = byName(CFGs, "f");
  Liveness L(*F);
  // r5 is live at the loop head.
  for (const BasicBlock &B : F->Blocks) {
    if (B.IsBackEdgeTarget) {
      EXPECT_TRUE(L.liveIn(B.Index) & (1 << 5));
    }
  }
}
