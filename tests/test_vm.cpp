//===- tests/test_vm.cpp - VM interpreter tests ---------------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Assembler.h"
#include "vm/AddressSpace.h"
#include "vm/Syscalls.h"
#include "vm/World.h"

#include <gtest/gtest.h>

using namespace traceback;

namespace {
Module assemble(const std::string &Src) {
  Assembler Asm(syscallAssemblerConstants());
  Module M;
  std::string Error;
  EXPECT_TRUE(Asm.assemble(Src, M, Error)) << Error;
  return M;
}

struct Fixture {
  World W;
  Machine *M;
  Process *P;
  Fixture() {
    M = W.createMachine("box");
    P = M->createProcess("proc");
  }
  Thread *load(const Module &Mod, const std::string &Entry = "main") {
    std::string Error;
    LoadedModule *LM = P->loadModule(Mod, Error);
    EXPECT_NE(LM, nullptr) << Error;
    return P->start(Entry);
  }
};
} // namespace

TEST(AddressSpaceTest, MapReadWrite) {
  AddressSpace Mem;
  Mem.map(0x1000, 100);
  EXPECT_TRUE(Mem.isMapped(0x1000, 100));
  EXPECT_FALSE(Mem.isMapped(0x0, 8));
  ASSERT_TRUE(Mem.write64(0x1008, 0xCAFEBABEDEADBEEFull));
  bool Ok = true;
  EXPECT_EQ(Mem.read64(0x1008, Ok), 0xCAFEBABEDEADBEEFull);
  EXPECT_TRUE(Ok);
  // Cross-page access.
  Mem.map(0x2000 - 8, 16);
  ASSERT_TRUE(Mem.write64(0x2000 - 4, 0x1122334455667788ull));
  EXPECT_EQ(Mem.read64(0x2000 - 4, Ok), 0x1122334455667788ull);
  Ok = true;
  Mem.read64(0x9999000, Ok);
  EXPECT_FALSE(Ok);
}

TEST(AddressSpaceTest, CString) {
  AddressSpace Mem;
  Mem.map(0x1000, 32);
  const char *S = "hello";
  Mem.write(0x1000, S, 6);
  std::string Out;
  ASSERT_TRUE(Mem.readCString(0x1000, Out));
  EXPECT_EQ(Out, "hello");
  AddressSpace Mem2;
  Mem2.map(0x0, 16);
  std::string Long(16, 'x');
  Mem2.write(0, Long.data(), 16);
  EXPECT_FALSE(Mem2.readCString(0, Out, 16));
}

TEST(VmTest, ArithmeticAndOutput) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r0, 6
  movi r1, 7
  mul r0, r0, r1
  sys $SysPrintInt
  movi r0, 0
  sys $SysExit
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "42\n");
  EXPECT_EQ(F.P->ExitCode, 0);
}

TEST(VmTest, LoopAndBranches) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r1, 0
  movi r2, 10
loop:
  add r1, r1, r2
  addi r2, r2, -1
  brnz r2, loop
  mov r0, r1
  sys $SysPrintInt
  halt
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "55\n");
}

TEST(VmTest, CallsAndStack) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r0, 20
  call double_it
  sys $SysPrintInt
  halt
.endfunc
.func double_it
  add r0, r0, r0
  ret
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "40\n");
}

TEST(VmTest, ImportsAcrossModules) {
  Fixture F;
  Module Lib = assemble(R"(.module lib
.func triple export
  movi r4, 3
  mul r0, r0, r4
  ret
.endfunc
)");
  Module App = assemble(R"(.module app
.func main export
  movi r0, 5
  callimp @triple
  sys $SysPrintInt
  halt
.endfunc
)");
  std::string Error;
  ASSERT_NE(F.P->loadModule(Lib, Error), nullptr) << Error;
  ASSERT_NE(F.P->loadModule(App, Error), nullptr) << Error;
  ASSERT_NE(F.P->start("main"), nullptr);
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "15\n");
}

TEST(VmTest, SegvKillsProcess) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r1, 0xdead0000
  ld r0, [r1]
  halt
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_TRUE(F.P->Exited);
  EXPECT_EQ(F.P->LastFault.Code, FaultCode::Segv);
  EXPECT_EQ(F.P->LastFault.Addr, 0xdead0000u);
}

TEST(VmTest, DivZeroFault) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r1, 10
  movi r2, 0
  div r0, r1, r2
  halt
.endfunc
)"));
  F.W.run();
  EXPECT_EQ(F.P->LastFault.Code, FaultCode::DivZero);
}

TEST(VmTest, TryCatchViaEhTable) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
tb:
  trap 7
  movi r0, 111
  sys $SysPrintInt
te:
  halt
handler:
  movi r0, 222
  sys $SysPrintInt
  halt
.try tb te handler
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "222\n") << "handler must run, skipping 111";
}

TEST(VmTest, UnwindAcrossFrames) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
tb:
  call level1
te:
  halt
handler:
  movi r0, 99
  sys $SysPrintInt
  halt
.try tb te handler
.endfunc
.func level1
  call level2
  ret
.endfunc
.func level2
  trap 5
  ret
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "99\n");
}

TEST(VmTest, WildReturnFromSmashedStack) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  call victim
  halt
.endfunc
.func victim
  movi r4, 0x12345678
  st [sp], r4
  ret
.endfunc
)"));
  F.W.run();
  EXPECT_TRUE(F.P->Exited);
  EXPECT_EQ(F.P->LastFault.Code, FaultCode::BadJump);
  EXPECT_EQ(F.P->LastFault.PC, 0x12345678u);
}

TEST(VmTest, ThreadsJoinAndMutex) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  movi r0, 64
  sys $SysAlloc
  mov r8, r0
  lea r4, worker
  mov r0, r4
  mov r1, r8
  sys $SysThreadSpawn
  mov r9, r0
  mov r0, r4
  mov r1, r8
  sys $SysThreadSpawn
  mov r10, r0
  mov r0, r9
  sys $SysThreadJoin
  mov r0, r10
  sys $SysThreadJoin
  ld r0, [r8]
  sys $SysPrintInt
  halt
.endfunc
.func worker
  mov r8, r0
  movi r9, 1000
wloop:
  movi r0, 1
  sys $SysLock
  ld r4, [r8]
  addi r4, r4, 1
  st [r8], r4
  movi r0, 1
  sys $SysUnlock
  addi r9, r9, -1
  brnz r9, wloop
  sys $SysThreadExit
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "2000\n") << "mutex must serialize increments";
}

TEST(VmTest, DeadlockDetectedAsIdle) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  lea r4, worker
  mov r0, r4
  movi r1, 0
  sys $SysThreadSpawn
  movi r0, 1
  sys $SysLock
  sys $SysYield
  movi r0, 2
  sys $SysLock
  halt
.endfunc
.func worker
  movi r0, 2
  sys $SysLock
  sys $SysYield
  movi r0, 1
  sys $SysLock
  sys $SysThreadExit
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::Idle) << "deadlock -> Idle";
  EXPECT_FALSE(F.P->Exited);
}

TEST(VmTest, SignalHandlerRunsAndReturns) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  lea r1, on_usr1
  movi r0, 10
  sys $SysSigHandler
  movi r0, 10
  sys $SysRaise
  movi r0, 333
  sys $SysPrintInt
  halt
.endfunc
.func on_usr1
  sys $SysPrintInt
  ret
.endfunc
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "10\n333\n") << "handler then resumed main";
}

TEST(VmTest, HardKillStopsEverything) {
  Fixture F;
  Thread *T = F.load(assemble(R"(.module m
.func main export
spin:
  br spin
.endfunc
)"));
  ASSERT_NE(T, nullptr);
  for (int I = 0; I < 10; ++I)
    F.W.stepSlice();
  EXPECT_GT(T->InstrRetired, 0u);
  F.W.sendSignal(*F.P, SigKill);
  EXPECT_TRUE(F.P->HardKilled);
  EXPECT_TRUE(T->ExitedAbruptly);
  EXPECT_EQ(T->Tls[DefaultTlsSlot], 0u) << "TLS lost on kill -9";
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
}

TEST(VmTest, RpcRoundTrip) {
  World W;
  Machine *M1 = W.createMachine("client-box");
  Machine *M2 = W.createMachine("server-box");
  Process *Client = M1->createProcess("client");
  Process *Server = M2->createProcess("server");

  Module ServerMod = assemble(R"(.module srv
.func main export
  movi r0, 77
  sys $SysSrvRegister
serve:
  movi r0, 0x7000
  movi r1, 64
  sys $SysRpcRecv
  mov r9, r0
  movi r4, 0x7000
  ld r5, [r4]
  add r5, r5, r5
  st [r4], r5
  mov r0, r9
  movi r1, 0x7000
  movi r2, 8
  sys $SysRpcReply
  br serve
.endfunc
)");
  Module ClientMod = assemble(R"(.module cli
.func main export
  movi r4, 0x6000
  movi r5, 21
  st [r4], r5
  movi r0, 77
  movi r1, 0x6000
  movi r2, 8
  movi r3, 0x6100
  sys $SysRpcCall
  sys $SysPrintInt
  movi r4, 0x6100
  ld r0, [r4]
  sys $SysPrintInt
  halt
.endfunc
)");
  std::string Error;
  Client->Mem.map(0x6000, 0x200);
  Server->Mem.map(0x7000, 0x100);
  ASSERT_NE(Server->loadModule(ServerMod, Error), nullptr) << Error;
  ASSERT_NE(Client->loadModule(ClientMod, Error), nullptr) << Error;
  ASSERT_NE(Server->start("main"), nullptr);
  // Let the server register its service before the client dials.
  for (int I = 0; I < 5; ++I)
    W.stepSlice();
  ASSERT_NE(Client->start("main"), nullptr);
  while (!Client->Exited && W.cycles() < 10'000'000)
    W.stepSlice();
  EXPECT_EQ(Client->Output, "0\n42\n");
}

TEST(VmTest, RpcServerFaultReachesClient) {
  World W;
  Machine *M1 = W.createMachine("a");
  Process *Client = M1->createProcess("client");
  Process *Server = M1->createProcess("server");
  Module ServerMod = assemble(R"(.module srv
.func main export
  movi r0, 5
  sys $SysSrvRegister
  movi r0, 0x7000
  movi r1, 64
  sys $SysRpcRecv
  movi r4, 0
  ld r5, [r4]
  sys $SysRpcReply
  halt
.endfunc
)");
  Module ClientMod = assemble(R"(.module cli
.func main export
  movi r0, 5
  movi r1, 0x6000
  movi r2, 8
  movi r3, 0x6100
  sys $SysRpcCall
  sys $SysPrintInt
  halt
.endfunc
)");
  std::string Error;
  Client->Mem.map(0x6000, 0x200);
  Server->Mem.map(0x7000, 0x100);
  ASSERT_NE(Server->loadModule(ServerMod, Error), nullptr) << Error;
  ASSERT_NE(Client->loadModule(ClientMod, Error), nullptr) << Error;
  Server->start("main");
  for (int I = 0; I < 5; ++I)
    W.stepSlice();
  Client->start("main");
  while (!Client->Exited && W.cycles() < 10'000'000)
    W.stepSlice();
  EXPECT_EQ(Client->Output, "2\n");
  // The dispatch boundary converted the crash into an error reply and
  // killed only the worker thread — which was the process's last thread,
  // so the process wound down afterwards.
  EXPECT_TRUE(Server->Threads[0]->ExitedAbruptly);
  EXPECT_TRUE(Server->Exited);
}

TEST(VmTest, ModuleUnloadMakesCodeUnreachable) {
  Fixture F;
  Module Lib = assemble(R"(.module lib
.func helper export
  movi r0, 1
  ret
.endfunc
)");
  Module App = assemble(R"(.module app
.func main export
  callimp @helper
  sys $SysPrintInt
  halt
.endfunc
)");
  std::string Error;
  ASSERT_NE(F.P->loadModule(Lib, Error), nullptr);
  ASSERT_NE(F.P->loadModule(App, Error), nullptr);
  ASSERT_TRUE(F.P->unloadModule("lib"));
  F.P->start("main");
  F.W.run();
  EXPECT_EQ(F.P->LastFault.Code, FaultCode::BadJump);
}

TEST(VmTest, JumpTableThroughData) {
  Fixture F;
  F.load(assemble(R"(.module m
.func main export
  lea r4, table
  movi r5, 1
  shli r5, r5, 3
  add r4, r4, r5
  ld r4, [r4]
  callind r4
  sys $SysPrintInt
  halt
.endfunc
.func case0
  movi r0, 100
  ret
.endfunc
.func case1
  movi r0, 200
  ret
.endfunc
.datasym table
.ptr case0
.ptr case1
)"));
  EXPECT_EQ(F.W.run(), World::RunResult::AllExited);
  EXPECT_EQ(F.P->Output, "200\n");
}
