//===- tests/test_replay.cpp - Record-and-replay self-checks --------------===//
//
// Part of the TraceBack reproduction project.
//
// The replay subsystem's suite (ctest -L replay). The headline is the
// 200-seed chaos sweep: every snap recorded under a random kill replays
// to the same fault with a byte-identical reconstructed trace and zero
// divergences — the replay-divergence check doubles as a continuous
// correctness oracle for the reconstruction pipeline. The negative paths
// perturb one recorded input, one schedule decision and one trace word,
// and assert the detector pinpoints the FIRST divergent event, never a
// later cascade. The divergence report rendering is pinned by
// tests/golden/replay_divergence.txt (TRACEBACK_REGEN_GOLDEN=1 to
// regenerate after an intentional change).
//
// Every seed is replayable: TRACEBACK_TEST_SEED=<seed> reruns a failure.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/FileIO.h"
#include "replay/Recorder.h"
#include "replay/ReplayDriver.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

/// Two yield-looping threads drawing SysRand — scheduling and guest
/// inputs both nondeterministic, the shapes the recorder must pin down.
const char *RandTwoThreadWorkload = R"(
fn worker(a) {
  var x = a;
  var j = 0;
  while (j < 120) {
    x = x * 5 + (rand() & 7);
    x = x % 999983;
    j = j + 1;
    yield();
  }
  return x;
}
fn main() export {
  spawn(addr_of(worker), 7);
  var y = 2;
  var i = 0;
  while (i < 100) {
    y = y * 7 + (rand() & 3);
    y = y % 1000033;
    i = i + 1;
    yield();
  }
  print(y);
}
)";

/// Single thread whose control flow BRANCHES on rand(): perturbing one
/// recorded draw must change the line sequence itself, and the snap(1) at
/// the end anchors the log for verifyReplay.
const char *RandBranchSnapWorkload = R"(
fn main() export {
  var x = 1;
  var r = 0;
  var i = 0;
  while (i < 60) {
    r = rand();
    if (r & 1) { x = x * 3 + 1; } else { x = x + 7; }
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  snap(1);
  print(x);
}
)";

/// Two threads plus an end-of-run anchor: the golden divergence fixture
/// and the windowed-recording test both want multi-candidate schedule
/// slices leading to a snap.
const char *TwoThreadSnapWorkload = R"(
fn worker(a) {
  var x = a;
  var j = 0;
  while (j < 90) {
    x = x * 5 + (rand() & 7);
    x = x % 999983;
    j = j + 1;
    yield();
  }
  return x;
}
fn main() export {
  spawn(addr_of(worker), 3);
  var y = 2;
  var i = 0;
  while (i < 70) {
    y = y * 7 + 1;
    y = y % 1000033;
    i = i + 1;
    yield();
  }
  snap(2);
  print(y);
}
)";

/// A recording single-process world: policy flag + scribe hooked up
/// before anything is deployed.
struct RecordedProcess : SingleProcess {
  ExecutionRecorder Rec;

  explicit RecordedProcess(uint32_t Window = 0) : Rec(Window) {
    D.Policy.RecordExecution = true;
    D.Policy.RecordWindow = Window;
    Rec.attach(D);
  }
};

/// Flips one recorded schedule decision (the first multi-candidate pick
/// at or after \p MinIndex) to a different in-range candidate. Returns
/// the chronological index of the perturbed entry, or SIZE_MAX.
size_t perturbSchedulePick(ExecutionLog &Log, size_t MinIndex) {
  for (size_t I = MinIndex; I < Log.Entries.size(); ++I) {
    LogEntry &E = Log.Entries[I];
    if (E.Kind != LogEntryKind::Sched)
      continue;
    uint64_t CandCount = E.B >> 32;
    if (CandCount < 2)
      continue;
    uint64_t Pick = E.B & 0xffffffffu;
    E.B = (CandCount << 32) | ((Pick + 1) % CandCount);
    return I;
  }
  return SIZE_MAX;
}

/// Flips the low bit of one recorded rand() value at or after
/// \p MinIndex. Returns the chronological index, or SIZE_MAX.
size_t perturbRandValue(ExecutionLog &Log, size_t MinIndex) {
  for (size_t I = MinIndex; I < Log.Entries.size(); ++I) {
    LogEntry &E = Log.Entries[I];
    if (E.Kind != LogEntryKind::Rand)
      continue;
    E.C ^= 1;
    return I;
  }
  return SIZE_MAX;
}

size_t countEntries(const ExecutionLog &Log, LogEntryKind K) {
  size_t N = 0;
  for (const LogEntry &E : Log.Entries)
    N += E.Kind == K;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Log format: serialize/deserialize identity, truncation tolerance.
//===----------------------------------------------------------------------===//

TEST(ExecutionLogTest, SerializeDeserializeIsIdentity) {
  RecordedProcess S;
  FaultPlan Plan;
  Plan.Seed = testSeed() ^ 0x11;
  Plan.Events.push_back({FaultKind::KillProcess, 150, 0});
  FaultInjector FI(Plan);
  S.D.world().Injector = &FI;
  S.runModule(compileOrDie(RandTwoThreadWorkload), /*Instrument=*/true);
  ASSERT_TRUE(S.P->HardKilled);
  ASSERT_EQ(S.D.daemonFor(*S.M)->collectPostMortem(*S.P).size(), 1u);

  ExecutionLog L1 = S.Rec.snapshot();
  ASSERT_GT(L1.Entries.size(), 100u);
  EXPECT_GT(countEntries(L1, LogEntryKind::Rand), 10u);
  EXPECT_EQ(countEntries(L1, LogEntryKind::Fired), 1u);
  EXPECT_EQ(countEntries(L1, LogEntryKind::Anchor), 1u);

  std::vector<uint8_t> Bytes = L1.serialize();
  ExecutionLog L2;
  ASSERT_TRUE(ExecutionLog::deserialize(Bytes, L2));
  EXPECT_FALSE(L2.Truncated);
  EXPECT_EQ(L2.PolicyText, L1.PolicyText);
  EXPECT_EQ(L2.PlanText, L1.PlanText);
  EXPECT_FALSE(L2.PlanText.empty());
  EXPECT_EQ(L2.Quantum, L1.Quantum);
  EXPECT_EQ(L2.NetEnabled, L1.NetEnabled);
  EXPECT_EQ(L2.WindowCap, L1.WindowCap);
  EXPECT_EQ(L2.DroppedHead, L1.DroppedHead);
  ASSERT_EQ(L2.Machines.size(), L1.Machines.size());
  EXPECT_EQ(L2.Machines[0].Name, L1.Machines[0].Name);
  ASSERT_EQ(L2.Processes.size(), L1.Processes.size());
  EXPECT_EQ(L2.Processes[0].Pid, L1.Processes[0].Pid);
  ASSERT_EQ(L2.Deploys.size(), L1.Deploys.size());
  EXPECT_EQ(L2.Deploys[0].Image, L1.Deploys[0].Image);
  ASSERT_EQ(L2.Threads.size(), L1.Threads.size());
  ASSERT_EQ(L2.Entries.size(), L1.Entries.size());
  for (size_t I = 0; I < L1.Entries.size(); ++I) {
    const LogEntry &A = L1.Entries[I], &B = L2.Entries[I];
    ASSERT_EQ(B.Kind, A.Kind) << "entry " << I;
    EXPECT_EQ(B.Ordinal, A.Ordinal) << "entry " << I;
    EXPECT_EQ(B.A, A.A);
    EXPECT_EQ(B.B, A.B);
    EXPECT_EQ(B.C, A.C);
    EXPECT_EQ(B.D, A.D);
    EXPECT_EQ(B.E, A.E);
    EXPECT_EQ(B.Note, A.Note);
  }

  // Byte truncation anywhere inside EVENTS loses exactly a chronological
  // suffix: the recovered entries are an elementwise prefix.
  int Recovered = 0;
  for (size_t Cut = Bytes.size() - 9; Cut > Bytes.size() / 2;
       Cut -= Bytes.size() / 16) {
    std::vector<uint8_t> Torn(Bytes.begin(), Bytes.begin() + Cut);
    ExecutionLog LT;
    if (!ExecutionLog::deserialize(Torn, LT))
      continue; // Cut landed inside META/GENESIS: nothing to rebuild.
    ++Recovered;
    EXPECT_TRUE(LT.Truncated) << "cut " << Cut;
    ASSERT_LE(LT.Entries.size(), L1.Entries.size());
    for (size_t I = 0; I < LT.Entries.size(); ++I) {
      EXPECT_EQ(LT.Entries[I].Kind, L1.Entries[I].Kind) << "cut " << Cut;
      EXPECT_EQ(LT.Entries[I].Ordinal, L1.Entries[I].Ordinal);
    }
  }
  EXPECT_GT(Recovered, 2) << "truncation sweep never hit the event stream";
}

TEST(ExecutionLogTest, RingWindowKeepsTailAndCountsDrops) {
  RecordedProcess S(/*Window=*/48);
  ASSERT_EQ(S.runModule(compileOrDie(TwoThreadSnapWorkload), true),
            World::RunResult::AllExited);
  ExecutionLog L = S.Rec.snapshot();
  EXPECT_EQ(L.WindowCap, 48u);
  EXPECT_EQ(L.Entries.size(), 48u);
  EXPECT_GT(L.DroppedHead, 0u);
  EXPECT_EQ(L.totalEntries(), S.Rec.recordedEntries());
  // Ordinals within one kind stay strictly increasing across the window.
  uint64_t LastSched = 0;
  bool Seen = false;
  for (const LogEntry &E : L.Entries)
    if (E.Kind == LogEntryKind::Sched) {
      if (Seen) {
        EXPECT_GT(E.Ordinal, LastSched);
      }
      LastSched = E.Ordinal;
      Seen = true;
    }
  EXPECT_TRUE(Seen);
}

//===----------------------------------------------------------------------===//
// The headline: 200-seed record/replay chaos sweep.
//===----------------------------------------------------------------------===//

TEST(ReplaySweepTest, TwoHundredSeedKillSweepReplaysIdentically) {
  // Fault-free pass to size the kill window.
  uint64_t TotalSlices = 0;
  {
    SingleProcess S;
    ASSERT_EQ(S.runModule(compileOrDie(RandTwoThreadWorkload), true),
              World::RunResult::AllExited);
    TotalSlices = S.D.world().slices();
  }
  ASSERT_GT(TotalSlices, 10u);

  Rng Seeds(testSeed() ^ 0x9e91);
  const int NumSeeds = 200;
  int Replayed = 0;
  for (int Run = 0; Run < NumSeeds; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    // Cap at TotalSlices-2: the injector's boundary at the last world
    // slice runs after the process already exited, so a kill armed there
    // could never land.
    Plan.Events.push_back(
        {FaultKind::KillProcess, 1 + R.below(TotalSlices - 2), 0});

    RecordedProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(RandTwoThreadWorkload), true);
    ASSERT_TRUE(S.P->HardKilled)
        << "seed " << Seed << ": kill at slice " << Plan.Events[0].Trigger
        << " did not land (fault-free slices " << TotalSlices
        << ", faulted run slices " << S.D.world().slices() << ")";
    auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u) << "seed " << Seed;

    // Full wire round trip first: the embedded log must survive snap
    // serialization like every other section.
    std::vector<uint8_t> Wire = PM[0]->serialize();
    SnapFile Snap;
    ASSERT_TRUE(SnapFile::deserialize(Wire, Snap)) << "seed " << Seed;
    ASSERT_FALSE(Snap.ExecLog.empty()) << "seed " << Seed;

    ExecutionLog Log;
    ASSERT_TRUE(ExecutionLog::deserialize(Snap.ExecLog, Log))
        << "seed " << Seed;
    EXPECT_FALSE(Log.Truncated);
    EXPECT_EQ(countEntries(Log, LogEntryKind::Fired), 1u)
        << "seed " << Seed << ": the kill firing must be in the log";

    ReplayVerdict V = verifyReplay(Snap, Log);
    ASSERT_TRUE(V.Ok) << "seed " << Seed << " (kill slice "
                      << Plan.Events[0].Trigger
                      << "): replay diverged — rerun with "
                         "TRACEBACK_TEST_SEED\n"
                      << V.render();
    EXPECT_TRUE(V.SnapMatched) << "seed " << Seed;
    EXPECT_TRUE(V.TraceIdentical) << "seed " << Seed;
    EXPECT_TRUE(V.Divergences.empty()) << "seed " << Seed;
    ++Replayed;
  }
  EXPECT_EQ(Replayed, NumSeeds);
}

//===----------------------------------------------------------------------===//
// Windowed recording: pre-window slices pass through, the tail enforces.
//===----------------------------------------------------------------------===//

TEST(ReplayTest, WindowedRecordingStillReplaysToTheAnchor) {
  RecordedProcess S(/*Window=*/64);
  ASSERT_EQ(S.runModule(compileOrDie(TwoThreadSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().front();
  ASSERT_FALSE(Snap.ExecLog.empty());
  ExecutionLog Log;
  ASSERT_TRUE(ExecutionLog::deserialize(Snap.ExecLog, Log));
  ASSERT_GT(Log.DroppedHead, 0u) << "window never filled — test is vacuous";

  ReplayVerdict V = verifyReplay(Snap, Log);
  EXPECT_TRUE(V.Ok) << V.render();
  EXPECT_TRUE(V.SnapMatched);
  EXPECT_TRUE(V.TraceIdentical);
}

TEST(ReplayTest, ToLimitStopsEnforcementEarly) {
  RecordedProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(TwoThreadSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  ExecutionLog Log;
  ASSERT_TRUE(ExecutionLog::deserialize(S.D.snaps().front().ExecLog, Log));
  uint64_t Half = Log.totalEntries() / 2;
  ASSERT_GT(Half, 10u);

  ReplayDriver Drv(Log);
  std::string Error;
  ASSERT_TRUE(Drv.build(Error)) << Error;
  EXPECT_TRUE(Drv.run(/*ToEvent=*/Half));
  EXPECT_LE(Drv.enforcer().consumed(), Half);
  EXPECT_TRUE(Drv.enforcer().divergences().empty());
}

//===----------------------------------------------------------------------===//
// Negative paths: one perturbation, first divergent event pinpointed.
//===----------------------------------------------------------------------===//

TEST(ReplayDivergenceTest, PerturbedSchedulePickIsPinpointed) {
  RecordedProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(TwoThreadSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().front();
  ExecutionLog Log;
  ASSERT_TRUE(ExecutionLog::deserialize(Snap.ExecLog, Log));

  size_t At = perturbSchedulePick(Log, Log.Entries.size() / 3);
  ASSERT_NE(At, SIZE_MAX) << "no multi-candidate pick to perturb";

  ReplayVerdict V = verifyReplay(Snap, Log);
  EXPECT_FALSE(V.Ok);
  ASSERT_FALSE(V.Divergences.empty());
  // The FIRST reported divergence is the perturbed decision itself — not
  // any of the cascade the wrong pick causes downstream.
  EXPECT_EQ(V.Divergences[0].EventIndex, Log.DroppedHead + At);
  EXPECT_EQ(V.Divergences[0].K, Divergence::Kind::SchedulePick)
      << divergenceKindName(V.Divergences[0].K);
}

TEST(ReplayDivergenceTest, PerturbedRandInputDivergesDownstreamOnly) {
  RecordedProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(RandBranchSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().front();
  ExecutionLog Log;
  ASSERT_TRUE(ExecutionLog::deserialize(Snap.ExecLog, Log));

  size_t At = perturbRandValue(Log, Log.Entries.size() / 3);
  ASSERT_NE(At, SIZE_MAX) << "no rand draw to perturb";

  ReplayVerdict V = verifyReplay(Snap, Log);
  EXPECT_FALSE(V.Ok);
  ASSERT_FALSE(V.Divergences.empty());
  // The forged input is delivered verbatim (its context still matches),
  // so every enforcer-observed divergence is strictly AFTER it: the
  // effect shows downstream, the report never points before the cause.
  for (const Divergence &D : V.Divergences)
    if (D.K != Divergence::Kind::TraceEvent) {
      EXPECT_GT(D.EventIndex, Log.DroppedHead + At)
          << divergenceKindName(D.K) << ": " << D.Detail;
    }
  // The detector reports at most ONE trace divergence for the thread —
  // the first differing line, not the cascade behind it.
  size_t TraceDivs = 0;
  for (const Divergence &D : V.Divergences)
    TraceDivs += D.K == Divergence::Kind::TraceEvent;
  EXPECT_LE(TraceDivs, 1u);
}

TEST(ReplayDivergenceTest, PerturbedTraceWordReportsFirstEventOnly) {
  RecordedProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(RandBranchSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  ReconstructedTrace Original = S.D.reconstruct(S.D.snaps().front());
  ASSERT_FALSE(Original.Threads.empty());
  ASSERT_GT(Original.Threads[0].Events.size(), 20u);

  // Corrupt TWO events of the replayed copy; only the FIRST may be
  // reported for that thread.
  ReconstructedTrace Perturbed = Original;
  size_t First = Perturbed.Threads[0].Events.size() / 2;
  size_t Second = First + 5;
  ASSERT_LT(Second, Perturbed.Threads[0].Events.size());
  Perturbed.Threads[0].Events[First].Line += 1;
  Perturbed.Threads[0].Events[Second].Line += 3;

  std::vector<Divergence> Divs;
  ASSERT_EQ(DivergenceDetector::compare(Original, Perturbed, Divs), 1u);
  ASSERT_EQ(Divs.size(), 1u);
  EXPECT_EQ(Divs[0].K, Divergence::Kind::TraceEvent);
  EXPECT_EQ(Divs[0].EventIndex, First);
  EXPECT_NE(Divs[0].Detail.find("thread 1"), std::string::npos)
      << Divs[0].Detail;

  // Sanity: identical traces produce no divergence and identical bytes.
  Divs.clear();
  EXPECT_EQ(DivergenceDetector::compare(Original, Original, Divs), 0u);
  EXPECT_EQ(DivergenceDetector::renderCanonical(Original),
            DivergenceDetector::renderCanonical(Original));
  EXPECT_NE(DivergenceDetector::renderCanonical(Original),
            DivergenceDetector::renderCanonical(Perturbed));
}

//===----------------------------------------------------------------------===//
// Golden rendering of a divergence report.
//===----------------------------------------------------------------------===//

TEST(ReplayGoldenTest, DivergenceReportMatchesGoldenFixture) {
  // Entirely deterministic — fixed workload, no injector, and a fixed
  // perturbation — so the report is stable regardless of the test seed.
  const std::string Path =
      std::string(TB_TESTS_DIR) + "/golden/replay_divergence.txt";

  RecordedProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(TwoThreadSnapWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().front();
  ExecutionLog Log;
  ASSERT_TRUE(ExecutionLog::deserialize(Snap.ExecLog, Log));
  size_t At = perturbSchedulePick(Log, Log.Entries.size() / 3);
  ASSERT_NE(At, SIZE_MAX);

  ReplayVerdict V = verifyReplay(Snap, Log);
  ASSERT_FALSE(V.Ok);
  std::string Report = V.render();

  if (std::getenv("TRACEBACK_REGEN_GOLDEN")) {
    ASSERT_TRUE(writeFileText(Path, Report)) << Path;
    GTEST_SKIP() << "regenerated golden fixture " << Path;
  }
  std::string Expected;
  ASSERT_TRUE(readFileText(Path, Expected))
      << "missing fixture " << Path
      << " — regenerate with TRACEBACK_REGEN_GOLDEN=1";
  EXPECT_EQ(Report, Expected)
      << "divergence report rendering drifted from the golden fixture";
}
