//===- tests/test_snapio.cpp - Snap wire format and ingestion I/O ---------===//
//
// Part of the TraceBack reproduction project.
//
// The snap fast path end to end: the trace-aware codec (format v4's
// per-section compression), version compatibility of the serialized
// snap image, a fuzz corpus of damaged images (every byte of a snap may
// cross a machine boundary or a crashed daemon's disk), the append-only
// archive, and the daemon's sharded async ingestion with back-pressure.
// Runs in the `snapio` ctest label; seeds replay via TRACEBACK_TEST_SEED.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "distributed/SnapArchive.h"
#include "distributed/Wire.h"
#include "reconstruct/SynthWorkload.h"
#include "runtime/TraceRecord.h"
#include "support/SnapCodec.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

void pushWord(std::vector<uint8_t> &Out, uint32_t W) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(W >> (I * 8)));
}

/// Encodes \p In, decodes the stream, and expects the input back.
/// Returns the encoded size so callers can assert on compression.
size_t expectRoundTrip(const std::vector<uint8_t> &In) {
  std::vector<uint8_t> Stream;
  size_t Encoded = snapEncodeTo(In.data(), In.size(), Stream);
  EXPECT_EQ(Encoded, Stream.size());
  uint64_t Claimed = 0;
  EXPECT_TRUE(snapEncodedRawSize(Stream.data(), Stream.size(), Claimed));
  EXPECT_EQ(Claimed, In.size());
  std::vector<uint8_t> Back;
  EXPECT_TRUE(snapDecode(Stream, Back));
  EXPECT_EQ(Back, In);
  return Encoded;
}

/// A small synthetic snap for format and fuzz tests.
SnapFile synthSnap(uint64_t Seed, bool IncludeCorrupt = false) {
  SynthWorkloadOptions O;
  O.Modules = 4;
  O.DagsPerModule = 8;
  O.Threads = 3;
  O.RecordsPerThread = 400;
  O.IncludeCorrupt = IncludeCorrupt;
  return makeSynthWorkload(Seed, O).Snap;
}

} // namespace

// ----------------------------------------------------------------------------
// Codec: each op class round-trips, and the shapes it targets compress.
// ----------------------------------------------------------------------------

TEST(SnapCodecTest, EmptyInputRoundTrips) {
  EXPECT_LE(expectRoundTrip({}), 4u);
}

TEST(SnapCodecTest, ZeroRunCompressesToAFewBytes) {
  std::vector<uint8_t> In(64 * 1024, 0);
  EXPECT_LE(expectRoundTrip(In), 16u);
}

TEST(SnapCodecTest, SentinelRunCompressesToAFewBytes) {
  std::vector<uint8_t> In;
  for (int I = 0; I < 4096; ++I)
    pushWord(In, SentinelRecord);
  EXPECT_LE(expectRoundTrip(In), 16u);
}

TEST(SnapCodecTest, RepeatedWordUsesOneRun) {
  // A non-DAG, non-sentinel word repeated: one literal + one repeat op.
  std::vector<uint8_t> In;
  for (int I = 0; I < 1000; ++I)
    pushWord(In, 0x12345678u);
  EXPECT_LE(expectRoundTrip(In), 16u);
}

TEST(SnapCodecTest, DagDeltaChainRoundTrips) {
  // Consecutive DAG ids with varying path bits: the hot delta-coded case.
  std::vector<uint8_t> In;
  for (uint32_t I = 0; I < 2000; ++I)
    pushWord(In, makeDagRecord(100 + I % 7) | (I % 13));
  size_t Encoded = expectRoundTrip(In);
  // 91 distinct words defeat the dictionary, so this exercises pure delta
  // coding: ~2 bytes per 4-byte record.
  EXPECT_LT(Encoded, In.size() * 5 / 8);
}

TEST(SnapCodecTest, DictionaryCompressesNonAdjacentRecurrences) {
  // Two hot pairs with a large id gap, alternating: delta coding pays the
  // gap every word, the dictionary pays one byte after the first sighting.
  std::vector<uint8_t> In;
  uint32_t A = makeDagRecord(17) | 3;
  uint32_t B = makeDagRecord(9000) | 5;
  for (int I = 0; I < 1000; ++I)
    pushWord(In, I % 2 ? A : B);
  size_t Encoded = expectRoundTrip(In);
  // ~1 byte per word once the dictionary is warm.
  EXPECT_LT(Encoded, 1100u);
}

TEST(SnapCodecTest, LiteralsAndRawTailRoundTrip) {
  // Words outside every special class, with a 3-byte unaligned tail.
  std::vector<uint8_t> In;
  for (uint32_t I = 0; I < 100; ++I)
    pushWord(In, 0x01020304u + I * 2654435761u % 0x40000000u);
  In.push_back(0xAB);
  In.push_back(0xCD);
  In.push_back(0xEF);
  expectRoundTrip(In);
}

TEST(SnapCodecTest, IncompressibleInputFallsBackToRawBlock) {
  // High-entropy bytes: the raw block bounds overhead to the framing.
  std::vector<uint8_t> In;
  Rng R(testSeed() ^ 0xAAAA);
  for (int I = 0; I < 4096; ++I)
    In.push_back(static_cast<uint8_t>(R.next()));
  size_t Encoded = expectRoundTrip(In);
  EXPECT_LE(Encoded, In.size() + 8);
}

TEST(SnapCodecTest, RandomWordSoupSweepRoundTrips) {
  // 100 seeds of adversarial mixtures: zero runs, sentinel runs, hot and
  // cold DAG records, repeats, arbitrary literals, ragged tails. The
  // property: decode(encode(x)) == x, always.
  Rng Seeds(testSeed() ^ 0xC0DEC);
  for (int Run = 0; Run < 100; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    std::vector<uint8_t> In;
    unsigned Chunks = 1 + R.below(40);
    for (unsigned C = 0; C < Chunks; ++C) {
      unsigned Kind = static_cast<unsigned>(R.below(6));
      unsigned Len = 1 + static_cast<unsigned>(R.below(200));
      switch (Kind) {
      case 0:
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, InvalidRecord);
        break;
      case 1:
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, SentinelRecord);
        break;
      case 2: { // Hot DAG pairs (dictionary + delta paths).
        uint32_t Hot[4];
        for (uint32_t &H : Hot)
          H = makeDagRecord(static_cast<uint32_t>(R.below(MaxDagId))) |
              static_cast<uint32_t>(R.below(1u << PathBitCount));
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, Hot[R.below(4)]);
        break;
      }
      case 3: // Cold DAG records.
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, makeDagRecord(static_cast<uint32_t>(
                           R.below(MaxDagId))) |
                           static_cast<uint32_t>(R.below(1u << PathBitCount)));
        break;
      case 4: { // A repeated arbitrary word.
        uint32_t W = static_cast<uint32_t>(R.next());
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, W);
        break;
      }
      default: // Arbitrary literal words.
        for (unsigned I = 0; I < Len; ++I)
          pushWord(In, static_cast<uint32_t>(R.next()));
      }
    }
    for (uint64_t I = 0, Tail = R.below(4); I < Tail; ++I)
      In.push_back(static_cast<uint8_t>(R.next()));

    std::vector<uint8_t> Stream;
    snapEncodeTo(In.data(), In.size(), Stream);
    std::vector<uint8_t> Back;
    ASSERT_TRUE(snapDecode(Stream, Back)) << "seed " << Seed;
    ASSERT_EQ(Back, In) << "seed " << Seed;
  }
}

TEST(SnapCodecTest, EveryTruncatedStreamIsRejected) {
  std::vector<uint8_t> In;
  for (uint32_t I = 0; I < 64; ++I)
    pushWord(In, makeDagRecord(40 + I % 5) | (I % 3));
  for (int I = 0; I < 16; ++I)
    pushWord(In, 0);
  In.push_back(0x77); // Ragged tail, so OpRawTail framing is covered too.
  std::vector<uint8_t> Stream;
  snapEncodeTo(In.data(), In.size(), Stream);
  std::vector<uint8_t> Back;
  for (size_t Cut = 0; Cut < Stream.size(); ++Cut) {
    Back.clear();
    EXPECT_FALSE(snapDecodeTo(Stream.data(), Cut, Back))
        << "prefix of " << Cut << " bytes must not decode";
  }
}

TEST(SnapCodecTest, BitFlippedStreamsNeverCrash) {
  std::vector<uint8_t> In;
  for (uint32_t I = 0; I < 256; ++I)
    pushWord(In, makeDagRecord(10 + I % 9) | (I % 17));
  std::vector<uint8_t> Stream;
  snapEncodeTo(In.data(), In.size(), Stream);
  // Flip every bit of every byte, one at a time: decode must terminate
  // with either a rejection or a same-length reconstruction.
  std::vector<uint8_t> Back;
  for (size_t I = 0; I < Stream.size(); ++I) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::vector<uint8_t> Bad = Stream;
      Bad[I] ^= static_cast<uint8_t>(1 << Bit);
      Back.clear();
      if (snapDecodeTo(Bad.data(), Bad.size(), Back))
        EXPECT_EQ(Back.size(), In.size());
    }
  }
}

TEST(SnapCodecTest, OversizedRawClaimIsRejected) {
  // A varint header claiming more than the decoder's allocation ceiling.
  std::vector<uint8_t> Bad;
  uint64_t Claim = SnapCodecMaxRawSize + 1;
  while (Claim >= 0x80) {
    Bad.push_back(static_cast<uint8_t>(Claim) | 0x80);
    Claim >>= 7;
  }
  Bad.push_back(static_cast<uint8_t>(Claim));
  Bad.push_back(0); // Mode byte.
  uint64_t RawSize = 0;
  EXPECT_FALSE(snapEncodedRawSize(Bad.data(), Bad.size(), RawSize));
  std::vector<uint8_t> Back;
  EXPECT_FALSE(snapDecodeTo(Bad.data(), Bad.size(), Back));
}

// ----------------------------------------------------------------------------
// Snap format: v4 round trip, legacy compatibility, the encode cache.
// ----------------------------------------------------------------------------

TEST(SnapFormatTest, V4RoundTripSweep100Seeds) {
  // The wire-format property behind the archive: deserialize(serialize(S))
  // preserves every buffer byte, and re-serializing the decoded snap
  // reproduces the image bit for bit (the decoded image carries its codec
  // streams forward as the encode cache).
  Rng Seeds(testSeed() ^ 0x5A4B);
  for (int Run = 0; Run < 100; ++Run) {
    uint64_t Seed = Seeds.next();
    SnapFile S = synthSnap(Seed, /*IncludeCorrupt=*/Run % 2 == 0);
    std::vector<uint8_t> Wire = S.serialize();
    SnapFile Back;
    ASSERT_TRUE(SnapFile::deserialize(Wire, Back)) << "seed " << Seed;
    ASSERT_EQ(Back.Buffers.size(), S.Buffers.size()) << "seed " << Seed;
    for (size_t I = 0; I < S.Buffers.size(); ++I)
      ASSERT_EQ(Back.Buffers[I].Raw, S.Buffers[I].Raw)
          << "seed " << Seed << " buffer " << I;
    ASSERT_EQ(Back.Threads.size(), S.Threads.size());
    ASSERT_EQ(Back.serialize(), Wire) << "seed " << Seed;
  }
}

TEST(SnapFormatTest, LegacyV2AndV3ImagesStillDeserialize) {
  SnapFile S = synthSnap(7);
  for (uint32_t Version : {2u, 3u}) {
    std::vector<uint8_t> Wire = S.serializeVersion(Version);
    SnapFile Back;
    ASSERT_TRUE(SnapFile::deserialize(Wire, Back)) << "v" << Version;
    EXPECT_EQ(Back.Pid, S.Pid);
    EXPECT_EQ(Back.ProcessName, S.ProcessName);
    ASSERT_EQ(Back.Buffers.size(), S.Buffers.size());
    for (size_t I = 0; I < S.Buffers.size(); ++I)
      EXPECT_EQ(Back.Buffers[I].Raw, S.Buffers[I].Raw) << "v" << Version;
    EXPECT_EQ(Back.Threads.size(), S.Threads.size());
    EXPECT_EQ(Back.Modules.size(), S.Modules.size());
  }
}

TEST(SnapFormatTest, EncodeCacheFollowsRawMutations) {
  SnapFile S = synthSnap(11);
  std::vector<uint8_t> Wire = S.serialize();
  SnapFile Back;
  ASSERT_TRUE(SnapFile::deserialize(Wire, Back));
  ASSERT_FALSE(Back.Buffers.empty());
  // The decoded image kept the wire streams: serializing again is a
  // cache append and must be byte-identical.
  ASSERT_FALSE(Back.Buffers[0].Encoded.empty());
  ASSERT_EQ(Back.serialize(), Wire);

  // Mutating Raw and honoring the invariant (clear the cache) must
  // produce an image that round-trips the mutation.
  Back.Buffers[0].Raw[0] ^= 0xFF;
  Back.Buffers[0].Encoded.clear();
  std::vector<uint8_t> Wire2 = Back.serialize();
  EXPECT_NE(Wire2, Wire);
  SnapFile Back2;
  ASSERT_TRUE(SnapFile::deserialize(Wire2, Back2));
  EXPECT_EQ(Back2.Buffers[0].Raw, Back.Buffers[0].Raw);

  // The serializer's backstop: a stale cache whose decoded size no longer
  // matches Raw is ignored, not written.
  SnapFile Stale;
  ASSERT_TRUE(SnapFile::deserialize(Wire, Stale));
  Stale.Buffers[0].Raw.resize(Stale.Buffers[0].Raw.size() - 4);
  std::vector<uint8_t> Wire3 = Stale.serialize();
  SnapFile Back3;
  ASSERT_TRUE(SnapFile::deserialize(Wire3, Back3));
  EXPECT_EQ(Back3.Buffers[0].Raw, Stale.Buffers[0].Raw);
}

TEST(SnapFormatTest, HeaderOnlyParseReadsScalarsWithoutPayload) {
  SnapFile S = synthSnap(13);
  std::vector<uint8_t> Wire = S.serialize();
  SnapFile Header;
  ASSERT_TRUE(SnapFile::deserializeHeader(Wire, Header));
  EXPECT_EQ(Header.Pid, S.Pid);
  EXPECT_EQ(Header.ProcessName, S.ProcessName);
  EXPECT_TRUE(Header.Buffers.empty());
  // Legacy images have no section index; the header parse still works.
  SnapFile HeaderV2;
  ASSERT_TRUE(SnapFile::deserializeHeader(S.serializeVersion(2), HeaderV2));
  EXPECT_EQ(HeaderV2.Pid, S.Pid);
}

TEST(SnapFormatTest, SectionStatsShowCompressedBuffers) {
  SnapFile S = synthSnap(17);
  std::vector<uint8_t> Wire = S.serialize();
  uint32_t Version = 0;
  std::vector<SnapSectionStat> Stats;
  ASSERT_TRUE(snapSectionStats(Wire, Version, Stats));
  EXPECT_EQ(Version, 4u);
  ASSERT_FALSE(Stats.empty());
  bool SawCompressedSection = false;
  for (const SnapSectionStat &St : Stats)
    if (St.EncodedBytes < St.RawBytes)
      SawCompressedSection = true;
  EXPECT_TRUE(SawCompressedSection)
      << "trace buffers must compress in the synthetic workload";
}

// ----------------------------------------------------------------------------
// Fuzz corpus: damaged images of every version must never crash a reader.
// ----------------------------------------------------------------------------

TEST(SnapFuzzTest, CorruptedImagesOfEveryVersionNeverCrash) {
  SnapFile S = synthSnap(23);
  for (uint32_t Version : {2u, 3u, 4u}) {
    std::vector<uint8_t> Pristine = S.serializeVersion(Version);
    Rng Seeds(testSeed() ^ (0xF0'00 + Version));
    int Accepted = 0;
    for (int Run = 0; Run < 120; ++Run) {
      uint64_t Seed = Seeds.next();
      std::vector<uint8_t> Bytes = Pristine;
      FaultInjector::corruptSnapBytes(Bytes, Seed,
                                      /*ByteFlips=*/1 + Run % 32,
                                      /*Truncate=*/(Run % 3) == 0);
      SnapFile Out;
      if (SnapFile::deserialize(Bytes, Out))
        ++Accepted; // Undetected damage is fine; crashing is not.
      SnapFile Header;
      SnapFile::deserializeHeader(Bytes, Header);
      uint32_t V = 0;
      std::vector<SnapSectionStat> Stats;
      snapSectionStats(Bytes, V, Stats);
    }
    // Single-bit damage deep in a payload is not always detectable; the
    // assertion is termination, recorded for the curious.
    SUCCEED() << "v" << Version << ": " << Accepted
              << "/120 damaged images deserialized";
  }
}

TEST(SnapFuzzTest, EveryTruncationOfV4IsHandled) {
  std::vector<uint8_t> Wire = synthSnap(29).serialize();
  for (size_t Cut = 0; Cut < Wire.size(); Cut += 7) {
    std::vector<uint8_t> Prefix(Wire.begin(), Wire.begin() + Cut);
    SnapFile Out;
    EXPECT_FALSE(SnapFile::deserialize(Prefix, Out))
        << "a truncated image must be rejected (cut at " << Cut << ")";
  }
}

// ----------------------------------------------------------------------------
// Transport wire frames: the same fuzz discipline for the network plane.
// A frame carrying a full serialized snap is the largest, richest input
// the decoder ever sees — every damaged variant must fail cleanly.
// ----------------------------------------------------------------------------

namespace {

/// Encodes a SnapPush frame around a real serialized snap image.
std::vector<uint8_t> snapPushFrameBytes(uint64_t Seed) {
  WireFrame F;
  F.Type = FrameType::SnapPush;
  F.SrcMachine = 3;
  F.DstMachine = 9;
  F.Seq = 12;
  F.AckSeq = 11;
  F.Payload = synthSnap(Seed).serialize();
  std::vector<uint8_t> Bytes;
  encodeFrame(F, Bytes);
  return Bytes;
}

} // namespace

TEST(WireFrameFuzzTest, EveryTruncationOfASnapPushIsRejected) {
  std::vector<uint8_t> Wire = snapPushFrameBytes(31);
  for (size_t Cut = 0; Cut < Wire.size(); Cut += 13) {
    std::vector<uint8_t> Prefix(Wire.begin(), Wire.begin() + Cut);
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Prefix, Out, Error))
        << "a truncated frame must be rejected (cut at " << Cut << ")";
  }
}

TEST(WireFrameFuzzTest, BitFlippedFramesAreAlwaysRejected) {
  // Stronger than the snap-image guarantee: the frame checksum covers
  // header AND payload, so unlike a snap image, EVERY single-bit flip in
  // a frame is detectable — and must be detected.
  std::vector<uint8_t> Wire = snapPushFrameBytes(37);
  Rng Picks(testSeed() ^ 0x11f1);
  for (int Round = 0; Round < 600; ++Round) {
    std::vector<uint8_t> Hit = Wire;
    size_t Bit = static_cast<size_t>(Picks.below(Hit.size() * 8));
    Hit[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Hit, Out, Error))
        << "undetected single-bit flip at bit " << Bit;
  }
}

TEST(WireFrameFuzzTest, MultiBitCorruptionNeverCrashesTheDecoder) {
  std::vector<uint8_t> Wire = snapPushFrameBytes(41);
  Rng Seeds(testSeed() ^ 0x11f2);
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<uint8_t> Hit = Wire;
    FaultInjector::corruptSnapBytes(Hit, Seeds.next(),
                                    /*ByteFlips=*/1 + Round % 24,
                                    /*Truncate=*/(Round % 4) == 0);
    WireFrame Out;
    std::string Error;
    // Detection is guaranteed for flips (checksum) and truncation
    // (length); the assertion here is clean failure, never a crash or
    // overread. A payload that decodes would mean corruptSnapBytes left
    // the bytes identical, which it never does.
    EXPECT_FALSE(decodeFrame(Hit, Out, Error));
  }
}

TEST(WireFrameFuzzTest, OversizedLengthClaimIsRejectedWithoutAllocating) {
  std::vector<uint8_t> Wire = snapPushFrameBytes(43);
  // The length field follows magic(4) + version(2) + type(2) + 4 x u64.
  const size_t LenOff = 4 + 2 + 2 + 8 * 4;
  for (uint64_t Claim :
       {uint64_t{0xffffffff}, uint64_t{MaxFramePayload} + 1,
        uint64_t{MaxFramePayload} + (64u << 20)}) {
    std::vector<uint8_t> Hit = Wire;
    for (int I = 0; I < 4; ++I)
      Hit[LenOff + I] = static_cast<uint8_t>(Claim >> (8 * I));
    WireFrame Out;
    std::string Error;
    EXPECT_FALSE(decodeFrame(Hit, Out, Error));
    EXPECT_TRUE(Out.Payload.empty())
        << "the decoder must reject before allocating toward the claim";
  }
}

// ----------------------------------------------------------------------------
// Archive: framing, torn tails, the batch writer.
// ----------------------------------------------------------------------------

namespace {

struct TempFile {
  std::string Path;
  explicit TempFile(const char *Name) : Path(Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

} // namespace

TEST(SnapArchiveTest, WriterBatchesAppendsAcrossOpens) {
  TempFile F("test_snapio_writer.tbar");
  std::vector<uint8_t> ImgA = synthSnap(31).serialize();
  std::vector<uint8_t> ImgB = synthSnap(37).serialize();
  {
    SnapArchiveWriter W;
    ASSERT_TRUE(W.open(F.Path));
    EXPECT_TRUE(W.append(ImgA));
    EXPECT_TRUE(W.close());
  }
  {
    // Reopening appends after the existing entries, no second header.
    SnapArchiveWriter W;
    ASSERT_TRUE(W.open(F.Path));
    EXPECT_TRUE(W.append(ImgB));
    EXPECT_TRUE(W.close());
  }
  std::vector<SnapArchiveEntry> Entries;
  ASSERT_TRUE(SnapArchive::list(F.Path, Entries));
  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].ImageBytes, ImgA.size());
  EXPECT_EQ(Entries[1].ImageBytes, ImgB.size());
  EXPECT_EQ(Entries[0].FormatVersion, 4u);
  EXPECT_TRUE(Entries[0].HeaderOk);
  std::vector<uint8_t> Got;
  ASSERT_TRUE(SnapArchive::extract(F.Path, 1, Got));
  EXPECT_EQ(Got, ImgB);
  EXPECT_FALSE(SnapArchive::extract(F.Path, 2, Got));
}

TEST(SnapArchiveTest, OpenFailsCleanlyOnBadPath) {
  SnapArchiveWriter W;
  EXPECT_FALSE(W.open("no-such-dir/test_snapio.tbar"));
  EXPECT_FALSE(W.isOpen());
  std::vector<uint8_t> Img{1, 2, 3};
  EXPECT_FALSE(W.append(Img));
}

TEST(SnapArchiveTest, TornTailIsToleratedGarbageIsNot) {
  TempFile F("test_snapio_torn.tbar");
  std::vector<uint8_t> Img = synthSnap(41).serialize();
  ASSERT_TRUE(SnapArchive::append(F.Path, Img));
  ASSERT_TRUE(SnapArchive::append(F.Path, Img));
  // A crashed daemon: marker + size frame written, image cut short.
  {
    std::FILE *File = std::fopen(F.Path.c_str(), "ab");
    ASSERT_NE(File, nullptr);
    uint8_t Frame[5] = {0xA5, 0x00, 0x01, 0x00, 0x00}; // Claims 256 bytes.
    ASSERT_EQ(std::fwrite(Frame, 1, 5, File), 5u);
    uint8_t Partial[10] = {0};
    ASSERT_EQ(std::fwrite(Partial, 1, 10, File), 10u);
    std::fclose(File);
  }
  std::vector<SnapArchiveEntry> Entries;
  ASSERT_TRUE(SnapArchive::list(F.Path, Entries));
  EXPECT_EQ(Entries.size(), 2u) << "the torn final entry is dropped";

  // Mid-stream garbage (a damaged marker) is corruption, not a torn tail.
  std::vector<uint8_t> Bytes;
  {
    std::FILE *File = std::fopen(F.Path.c_str(), "rb");
    ASSERT_NE(File, nullptr);
    std::fseek(File, 0, SEEK_END);
    Bytes.resize(static_cast<size_t>(std::ftell(File)));
    std::fseek(File, 0, SEEK_SET);
    ASSERT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), File), Bytes.size());
    std::fclose(File);
  }
  Bytes[8] = 0x00; // First entry marker.
  TempFile G("test_snapio_garbage.tbar");
  {
    std::FILE *File = std::fopen(G.Path.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), File), Bytes.size());
    std::fclose(File);
  }
  EXPECT_FALSE(SnapArchive::list(G.Path, Entries));
}

// ----------------------------------------------------------------------------
// Daemon ingestion: async queues, back-pressure, the archival record.
// ----------------------------------------------------------------------------

namespace {

/// Snaps once mid-run via the runtime API, then finishes.
const char *SnapperSource = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 60) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  snap(1);
  while (i < 120) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  print(x);
}
)";

/// A quiet group peer: never snaps on its own.
const char *PeerSource = R"(
fn main() export {
  var y = 2;
  var i = 0;
  while (i < 150) {
    y = y * 7 + 1;
    y = y % 1000033;
    i = i + 1;
    yield();
  }
  print(y);
}
)";

/// Two instrumented processes in one default process group, with a
/// per-rig metrics registry so counter assertions are isolated.
struct GroupRig {
  MetricsRegistry Reg;
  Deployment D;
  Machine *M = nullptr;
  Process *Snapper = nullptr;
  Process *Peer = nullptr;

  GroupRig() {
    D.Metrics = &Reg;
    M = D.addMachine("host0");
    Snapper = M->createProcess("snapper");
    Peer = M->createProcess("peer");
  }

  void run() {
    std::string Error;
    ASSERT_NE(D.deploy(*Snapper, compileOrDie(SnapperSource, "snapmod"),
                       /*Instrument=*/true, Error),
              nullptr)
        << Error;
    ASSERT_NE(D.deploy(*Peer, compileOrDie(PeerSource, "peermod"),
                       /*Instrument=*/true, Error),
              nullptr)
        << Error;
    ASSERT_NE(Snapper->start("main"), nullptr);
    ASSERT_NE(Peer->start("main"), nullptr);
    EXPECT_EQ(D.world().run(50'000'000), World::RunResult::AllExited);
  }

  uint64_t counter(const char *Name) { return Reg.counter(Name).value(); }
};

} // namespace

TEST(DaemonIngestTest, AsyncDrainDeliversFaultThenGroupPeers) {
  GroupRig Rig;
  ServiceDaemon *Daemon = Rig.D.daemonFor(*Rig.M);
  ASSERT_NE(Daemon, nullptr);
  ServiceDaemon::IngestOptions O;
  O.Async = true;
  Daemon->configureIngest(O);

  Rig.run();
  // The snap is parked in the shard queue until the daemon drains: no
  // downstream delivery yet, and no group fan-out.
  EXPECT_TRUE(Rig.D.snaps().empty());
  EXPECT_EQ(Daemon->queuedSnaps(), 1u);
  EXPECT_EQ(Rig.counter("daemon.ingest.enqueued"), 1u);

  // The drain delivers the faulting snap, which fans out a GroupPeer snap
  // of the peer — picked up by the same drain's next pass.
  EXPECT_EQ(Daemon->drainIngest(), 2u);
  ASSERT_EQ(Rig.D.snaps().size(), 2u);
  EXPECT_EQ(Rig.D.snaps()[0].Pid, Rig.Snapper->Pid);
  EXPECT_EQ(Rig.D.snaps()[1].Pid, Rig.Peer->Pid);
  EXPECT_EQ(Rig.D.snaps()[1].Reason, SnapReason::GroupPeer);
  EXPECT_EQ(Rig.counter("daemon.ingest.enqueued"), 2u);
  EXPECT_EQ(Rig.counter("daemon.ingest.delivered"), 2u);
  EXPECT_EQ(Rig.counter("daemon.ingest.drains"), 1u);
  EXPECT_EQ(Daemon->queuedSnaps(), 0u);
  // Nothing left: a second drain is a no-op.
  EXPECT_EQ(Daemon->drainIngest(), 0u);
}

TEST(DaemonIngestTest, OverflowSpillsToArchiveInsteadOfDropping) {
  TempFile Spill("test_snapio_spill.tbar");
  GroupRig Rig;
  ServiceDaemon *Daemon = Rig.D.daemonFor(*Rig.M);
  ServiceDaemon::IngestOptions O;
  O.Async = true;
  O.QueueCapacity = 0; // Every snap overflows.
  O.SpillPath = Spill.Path;
  Daemon->configureIngest(O);

  Rig.run();
  EXPECT_EQ(Rig.counter("daemon.ingest.spilled"), 1u);
  EXPECT_EQ(Daemon->drainIngest(), 0u);
  EXPECT_TRUE(Rig.D.snaps().empty()) << "spilled snaps bypass downstream";

  // The spilled image is recoverable and intact.
  std::vector<SnapArchiveEntry> Entries;
  ASSERT_TRUE(SnapArchive::list(Spill.Path, Entries));
  ASSERT_EQ(Entries.size(), 1u);
  std::vector<uint8_t> Image;
  ASSERT_TRUE(SnapArchive::extract(Spill.Path, 0, Image));
  SnapFile S;
  ASSERT_TRUE(SnapFile::deserialize(Image, S));
  EXPECT_EQ(S.Pid, Rig.Snapper->Pid);
}

TEST(DaemonIngestTest, OverflowWithoutSpillDeliversInline) {
  GroupRig Rig;
  ServiceDaemon *Daemon = Rig.D.daemonFor(*Rig.M);
  ServiceDaemon::IngestOptions O;
  O.Async = true;
  O.QueueCapacity = 0;
  Daemon->configureIngest(O);

  Rig.run();
  // Back-pressure must never lose a fault snap: with no spill archive the
  // snap (and its group fan-out) delivered synchronously during the run.
  EXPECT_EQ(Rig.D.snaps().size(), 2u);
  EXPECT_EQ(Rig.counter("daemon.ingest.overflow_inline"), 2u);
  EXPECT_EQ(Rig.counter("daemon.ingest.delivered"), 0u);
}

TEST(DaemonIngestTest, ArchiveRecordsEveryIngestedSnap) {
  TempFile Archive("test_snapio_archive.tbar");
  GroupRig Rig;
  ServiceDaemon *Daemon = Rig.D.daemonFor(*Rig.M);
  ServiceDaemon::IngestOptions O;
  O.Async = true;
  O.ArchivePath = Archive.Path;
  Daemon->configureIngest(O);

  Rig.run();
  EXPECT_EQ(Daemon->drainIngest(), 2u);
  EXPECT_EQ(Rig.counter("daemon.ingest.archived"), 2u);

  std::vector<SnapArchiveEntry> Entries;
  ASSERT_TRUE(SnapArchive::list(Archive.Path, Entries));
  ASSERT_EQ(Entries.size(), 2u);
  for (size_t I = 0; I < Entries.size(); ++I) {
    EXPECT_EQ(Entries[I].FormatVersion, 4u);
    EXPECT_TRUE(Entries[I].HeaderOk);
    std::vector<uint8_t> Image;
    ASSERT_TRUE(SnapArchive::extract(Archive.Path, I, Image));
    SnapFile S;
    ASSERT_TRUE(SnapFile::deserialize(Image, S)) << "entry " << I;
  }
  EXPECT_EQ(Entries[0].Header.Pid, Rig.Snapper->Pid);
  EXPECT_EQ(Entries[1].Header.Pid, Rig.Peer->Pid);
}

TEST(DaemonIngestTest, ArchiveFormatVersionDownlevelsForOldTooling) {
  TempFile Archive("test_snapio_archive_v3.tbar");
  GroupRig Rig;
  ServiceDaemon *Daemon = Rig.D.daemonFor(*Rig.M);
  ServiceDaemon::IngestOptions O;
  O.Async = true;
  O.ArchivePath = Archive.Path;
  O.ArchiveFormatVersion = 3;
  Daemon->configureIngest(O);

  Rig.run();
  EXPECT_EQ(Daemon->drainIngest(), 2u);
  std::vector<SnapArchiveEntry> Entries;
  ASSERT_TRUE(SnapArchive::list(Archive.Path, Entries));
  ASSERT_EQ(Entries.size(), 2u);
  for (const SnapArchiveEntry &E : Entries)
    EXPECT_EQ(E.FormatVersion, 3u);
  // Downlevel entries still carry the full trace payload.
  std::vector<uint8_t> Image;
  ASSERT_TRUE(SnapArchive::extract(Archive.Path, 0, Image));
  SnapFile S;
  ASSERT_TRUE(SnapFile::deserialize(Image, S));
  EXPECT_FALSE(S.Buffers.empty());
}
