//===- tests/test_faultinjection.cpp - Fault injector tests ---------------===//
//
// Part of the TraceBack reproduction project.
//
// Exercises every fault class of the deterministic injector and the
// reconstruction pipeline's graceful degradation on damaged input.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "instrument/Instrumenter.h"
#include "reconstruct/RecordRecovery.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace traceback;
using namespace traceback::testing_helpers;

// ----------------------------------------------------------------------------
// FaultPlan text format.
// ----------------------------------------------------------------------------

TEST(FaultPlanTest, TextRoundTrip) {
  FaultPlan P;
  P.Seed = 42;
  P.Events.push_back({FaultKind::KillProcess, 500, 0});
  P.Events.push_back({FaultKind::TornWrite, 300, 1});
  P.Events.push_back({FaultKind::RpcDropWire, 0, 0});
  P.Events.push_back({FaultKind::SnapCorrupt, 0, 16});

  std::string Text = P.toText();
  FaultPlan Q;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse(Text, Q, Error)) << Error;
  ASSERT_EQ(Q.Seed, P.Seed);
  ASSERT_EQ(Q.Events.size(), P.Events.size());
  for (size_t I = 0; I < P.Events.size(); ++I) {
    EXPECT_EQ(Q.Events[I].Kind, P.Events[I].Kind);
    EXPECT_EQ(Q.Events[I].Trigger, P.Events[I].Trigger);
    EXPECT_EQ(Q.Events[I].Arg, P.Events[I].Arg);
  }
}

TEST(FaultPlanTest, ParseToleratesCommentsAndRejectsJunk) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(FaultPlan::parse(
      "# a comment\n\nseed 7\nkill-thread 100   # trailing\n", P, Error))
      << Error;
  EXPECT_EQ(P.Seed, 7u);
  ASSERT_EQ(P.Events.size(), 1u);
  EXPECT_EQ(P.Events[0].Kind, FaultKind::KillThread);
  EXPECT_EQ(P.Events[0].Trigger, 100u);

  EXPECT_FALSE(FaultPlan::parse("explode-now 5\n", P, Error));
  EXPECT_NE(Error.find("unknown fault kind"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("kill-process\n", P, Error));
  EXPECT_FALSE(FaultPlan::parse("seed banana\n", P, Error));
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  FaultPlan A = FaultPlan::random(1234, 2000);
  FaultPlan B = FaultPlan::random(1234, 2000);
  EXPECT_EQ(A.toText(), B.toText());
  EXPECT_FALSE(A.Events.empty());
  // A different seed produces a different plan (with overwhelming odds).
  FaultPlan C = FaultPlan::random(1235, 2000);
  EXPECT_NE(A.toText(), C.toText());
}

// ----------------------------------------------------------------------------
// Guest workloads.
// ----------------------------------------------------------------------------

namespace {

/// Bounded multi-line loop: every iteration touches several distinct lines
/// so reconstructed repeats stay comparable with the transition oracle.
const char *BoundedSpin = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 300) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  print(x);
}
)";

/// Two threads: a worker spins forever, main spins a bounded while then
/// snaps and exits (worker death is the only way the process ends early).
const char *TwoThreadSpin = R"(
fn worker(a) {
  var x = a;
  while (1) {
    x = x * 5 + 3;
    x = x % 999983;
    yield();
  }
  return x;
}
fn main() export {
  spawn(addr_of(worker), 1);
  var i = 0;
  while (i < 250) {
    i = i + 1;
    yield();
  }
  snap(1);
}
)";

/// Like BoundedSpin but snaps at the end (for snap-plane faults).
const char *SpinThenSnap = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 200) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  snap(1);
  print(x);
}
)";

/// Runs \p Source under \p Plan; returns the world's run result.
struct FaultedRun {
  SingleProcess S{/*WithOracle=*/true};
  FaultInjector FI;
  World::RunResult Result = World::RunResult::Idle;

  explicit FaultedRun(const char *Source, FaultPlan Plan)
      : FI(std::move(Plan)) {
    S.D.world().Injector = &FI;
    Module M = compileOrDie(Source);
    Result = S.runModule(M, /*Instrument=*/true);
  }
};

/// Recovered line sequence for \p Tid from the post-mortem snap of a
/// hard-killed process (empty when nothing survived).
std::vector<std::string> postMortemLines(SingleProcess &S, uint64_t Tid) {
  ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
  if (!Daemon)
    return {};
  auto PM = Daemon->collectPostMortem(*S.P);
  if (PM.size() != 1)
    return {};
  ReconstructedTrace Trace = S.D.reconstruct(*PM[0]);
  const ThreadTrace *T = Trace.threadById(Tid);
  return T ? lineSequence(*T) : std::vector<std::string>{};
}

/// True if, after dropping at most \p Slack trailing entries, \p Got is an
/// exact elementwise prefix of \p Golden. The slack covers only the final
/// partial DAG record (path bits the kill interrupted).
bool isPrefixWithSlack(const std::vector<std::string> &Got,
                       const std::vector<std::string> &Golden,
                       size_t Slack = 12) {
  for (size_t Drop = 0; Drop <= Slack && Drop <= Got.size(); ++Drop) {
    size_t N = Got.size() - Drop;
    if (N <= Golden.size() &&
        std::equal(Got.begin(), Got.begin() + N, Golden.begin()))
      return true;
  }
  return false;
}

} // namespace

// ----------------------------------------------------------------------------
// Process kill.
// ----------------------------------------------------------------------------

TEST(FaultInjectionTest, KillProcessFiresAtPlannedSlice) {
  FaultPlan Plan;
  Plan.Seed = 11;
  Plan.Events.push_back({FaultKind::KillProcess, 120, 0});
  FaultedRun R(BoundedSpin, Plan);
  EXPECT_TRUE(R.S.P->HardKilled);
  EXPECT_TRUE(R.FI.allFired());
  ASSERT_EQ(R.FI.firedLog().size(), 1u);
  EXPECT_NE(R.FI.firedLog()[0].find("slice 120"), std::string::npos)
      << R.FI.firedLog()[0];
  EXPECT_NE(R.FI.firedLog()[0].find("kill-process"), std::string::npos);
}

TEST(FaultInjectionTest, KillProcessIsReplayable) {
  FaultPlan Plan;
  Plan.Seed = 77;
  Plan.Events.push_back({FaultKind::KillProcess, 200, 0});

  FaultedRun A(BoundedSpin, Plan);
  FaultedRun B(BoundedSpin, Plan);
  EXPECT_EQ(A.FI.firedLog(), B.FI.firedLog());
  EXPECT_EQ(A.S.D.world().slices(), B.S.D.world().slices());
  EXPECT_EQ(postMortemLines(A.S, 1), postMortemLines(B.S, 1))
      << "same (workload, plan) must reconstruct identically";
}

TEST(FaultInjectionTest, KillProcessRecoversGoldenPrefix) {
  // Golden, fault-free run.
  SingleProcess Golden{/*WithOracle=*/true};
  ASSERT_EQ(Golden.runModule(compileOrDie(BoundedSpin), true),
            World::RunResult::AllExited);
  std::vector<std::string> Want = oracleSequence(Golden.Oracle, 1);
  ASSERT_GT(Want.size(), 50u);

  FaultPlan Plan;
  Plan.Seed = 5;
  Plan.Events.push_back({FaultKind::KillProcess, 150, 0});
  FaultedRun R(BoundedSpin, Plan);
  ASSERT_TRUE(R.S.P->HardKilled);
  std::vector<std::string> Got = postMortemLines(R.S, 1);
  ASSERT_GT(Got.size(), 3u) << "sub-buffering must save data";
  EXPECT_TRUE(isPrefixWithSlack(Got, Want))
      << "recovered " << Got.size() << " lines, golden " << Want.size();
}

// ----------------------------------------------------------------------------
// Thread kill.
// ----------------------------------------------------------------------------

TEST(FaultInjectionTest, KillThreadMidDagProcessSurvives) {
  FaultPlan Plan;
  Plan.Seed = 3;
  Plan.Events.push_back({FaultKind::KillThread, 150, 0});
  FaultedRun R(TwoThreadSpin, Plan);

  // The worker died abruptly; main finished its loop, snapped, exited.
  EXPECT_EQ(R.Result, World::RunResult::AllExited);
  EXPECT_FALSE(R.S.P->HardKilled);
  EXPECT_TRUE(R.FI.allFired());
  Thread *Worker = R.S.P->findThread(2);
  ASSERT_NE(Worker, nullptr);
  EXPECT_TRUE(Worker->ExitedAbruptly);

  // The snap main took afterwards still recovers the dead worker's
  // history (the scavenger reclaims its buffer, section 3.4).
  ASSERT_FALSE(R.S.D.snaps().empty());
  ReconstructedTrace Trace = R.S.D.reconstruct(R.S.D.snaps().back());
  const ThreadTrace *WT = Trace.threadById(2);
  ASSERT_NE(WT, nullptr) << "dead worker's records must survive";
  std::vector<std::string> Got = lineSequence(*WT);
  ASSERT_GT(Got.size(), 3u);
  EXPECT_TRUE(isPrefixWithSlack(Got, oracleSequence(R.S.Oracle, 2)));
}

TEST(FaultInjectionTest, KillThreadEscalatesWhenSingleThreaded) {
  FaultPlan Plan;
  Plan.Seed = 9;
  Plan.Events.push_back({FaultKind::KillThread, 100, 0});
  FaultedRun R(BoundedSpin, Plan);
  // Only one live thread: thread death is process death.
  EXPECT_TRUE(R.S.P->HardKilled);
  EXPECT_TRUE(R.FI.allFired());
}

// ----------------------------------------------------------------------------
// Torn writes.
// ----------------------------------------------------------------------------

TEST(FaultInjectionTest, TornWriteZeroWordTruncatesRecovery) {
  FaultPlan Plan;
  Plan.Seed = 21;
  Plan.Events.push_back({FaultKind::TornWrite, 80, /*Mode=*/0});
  FaultedRun R(SpinThenSnap, Plan);
  EXPECT_EQ(R.Result, World::RunResult::AllExited);
  EXPECT_TRUE(R.FI.allFired()) << "no DAG word found to tear";

  ASSERT_FALSE(R.S.D.snaps().empty());
  ReconstructedTrace Trace = R.S.D.reconstruct(R.S.D.snaps().front());
  // The zero word mid-stream must surface as an explicit torn-write
  // diagnosis, not be silently skipped.
  bool SawTornWarning = false;
  for (const std::string &W : Trace.Warnings)
    if (W.find("torn write") != std::string::npos)
      SawTornWarning = true;
  bool SawMarker = false;
  for (const ThreadTrace &T : Trace.Threads)
    if (T.TruncatedAt != UINT64_MAX)
      SawMarker = true;
  EXPECT_TRUE(SawTornWarning);
  EXPECT_TRUE(SawMarker);
  // And what survives is still a golden prefix.
  const ThreadTrace *Main = Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  EXPECT_TRUE(isPrefixWithSlack(lineSequence(*Main),
                                oracleSequence(R.S.Oracle, 1)));
}

TEST(FaultInjectionTest, TornWriteGarbledWordDegradesGracefully) {
  FaultPlan Plan;
  Plan.Seed = 22;
  Plan.Events.push_back({FaultKind::TornWrite, 80, /*Mode=*/1});
  FaultedRun R(SpinThenSnap, Plan);
  EXPECT_EQ(R.Result, World::RunResult::AllExited);
  EXPECT_TRUE(R.FI.allFired());
  ASSERT_FALSE(R.S.D.snaps().empty());
  // A garbled (half-zeroed) word decodes as ext-header garbage: recovery
  // skips it with a warning and keeps the rest.
  ReconstructedTrace Trace = R.S.D.reconstruct(R.S.D.snaps().front());
  EXPECT_FALSE(Trace.Threads.empty());
  EXPECT_FALSE(Trace.Warnings.empty());
}

// ----------------------------------------------------------------------------
// Satellite: hand-built torn buffer regression (mid-stream zero word).
// ----------------------------------------------------------------------------

namespace {
SnapBufferImage buildBuffer(const std::vector<uint32_t> &DataWords,
                            uint32_t SubWords, uint32_t SubCount,
                            uint64_t Owner) {
  SnapBufferImage B;
  B.SubBufferWords = SubWords;
  B.SubBufferCount = SubCount;
  B.CommittedSubBuffer = UINT32_MAX;
  B.OwnerThread = Owner;
  B.RecordsBase = 0x1000;
  std::vector<uint32_t> Words(static_cast<size_t>(SubWords) * SubCount, 0);
  for (uint32_t S = 0; S < SubCount; ++S)
    Words[(S + 1ull) * SubWords - 1] = SentinelRecord;
  size_t Pos = 0;
  for (uint32_t W : DataWords) {
    while (Pos < Words.size() && Words[Pos] == SentinelRecord)
      ++Pos;
    if (Pos >= Words.size())
      break;
    Words[Pos++] = W;
  }
  B.Raw.resize(Words.size() * 4);
  for (size_t I = 0; I < Words.size(); ++I)
    for (int J = 0; J < 4; ++J)
      B.Raw[I * 4 + J] = static_cast<uint8_t>(Words[I] >> (J * 8));
  return B;
}
} // namespace

TEST(TornBufferRegressionTest, MidStreamZeroEndsValidData) {
  // threadStart(7), dag, ZERO, dag: the zero marks a torn write — the
  // record beyond it must be dropped, not recovered.
  std::vector<uint32_t> Data = encodeExtRecord(
      {ExtType::ThreadStart, 0, {7, 5}});
  Data.push_back(makeDagRecord(10));
  Data.push_back(InvalidRecord);
  Data.push_back(makeDagRecord(11));
  SnapBufferImage B = buildBuffer(Data, 32, 2, 7);
  SnapThreadInfo TI;
  TI.ThreadId = 7;
  TI.Cursor = 0x1000 + (Data.size() - 1) * 4;
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {TI}, Warnings);
  ASSERT_EQ(Segments.size(), 1u);
  // Only the start marker and the first dag survive.
  ASSERT_EQ(Segments[0].Records.size(), 2u);
  EXPECT_EQ(Segments[0].Records[1].DagWord, makeDagRecord(10));
  EXPECT_NE(Segments[0].TruncatedAt, SIZE_MAX);
  bool SawWarning = false;
  for (const std::string &W : Warnings)
    if (W.find("torn write") != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning);
}

TEST(TornBufferRegressionTest, LeadingZerosAreStillBenign) {
  // The never-written remainder of the ring linearizes to a leading zero
  // run — that is normal operation, not a tear.
  std::vector<uint32_t> Data = encodeExtRecord(
      {ExtType::ThreadStart, 0, {7, 5}});
  Data.push_back(makeDagRecord(10));
  Data.push_back(makeDagRecord(11));
  SnapBufferImage B = buildBuffer(Data, 32, 2, 7);
  SnapThreadInfo TI;
  TI.ThreadId = 7;
  TI.Cursor = 0x1000 + (Data.size() - 1) * 4;
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {TI}, Warnings);
  ASSERT_EQ(Segments.size(), 1u);
  EXPECT_EQ(Segments[0].Records.size(), 3u);
  EXPECT_EQ(Segments[0].TruncatedAt, SIZE_MAX);
  EXPECT_TRUE(Warnings.empty()) << Warnings.front();
}

// ----------------------------------------------------------------------------
// Snap-plane faults.
// ----------------------------------------------------------------------------

TEST(FaultInjectionTest, CorruptSnapReconstructsWithoutCrashing) {
  FaultPlan Plan;
  Plan.Seed = 31;
  Plan.Events.push_back({FaultKind::SnapCorrupt, 0, 24});
  FaultedRun R(SpinThenSnap, Plan);
  EXPECT_TRUE(R.FI.allFired());
  ASSERT_FALSE(R.S.D.snaps().empty());
  // Reconstruction of the damaged image must degrade, never throw.
  ReconstructedTrace Trace = R.S.D.reconstruct(R.S.D.snaps().front());
  (void)Trace;
}

TEST(FaultInjectionTest, TruncatedSnapReconstructsWithoutCrashing) {
  FaultPlan Plan;
  Plan.Seed = 32;
  Plan.Events.push_back({FaultKind::SnapTruncate, 0, 0});
  FaultedRun R(SpinThenSnap, Plan);
  EXPECT_TRUE(R.FI.allFired());
  ASSERT_FALSE(R.S.D.snaps().empty());
  ReconstructedTrace Trace = R.S.D.reconstruct(R.S.D.snaps().front());
  (void)Trace;
}

// ----------------------------------------------------------------------------
// RPC wire faults.
// ----------------------------------------------------------------------------

namespace {
struct TwoMachines {
  Deployment D;
  Machine *MA, *MB;
  Process *Client, *Server;

  TwoMachines() {
    MA = D.addMachine("alpha", "winnt");
    MB = D.addMachine("beta", "solaris", 100000);
    Client = MA->createProcess("client");
    Server = MB->createProcess("server");
  }

  void deployAll() {
    static const char *EchoServer = R"(
fn main() export {
  srv_register(40);
  var buf = alloc(64);
  var lenp = alloc(8);
  while (1) {
    var id = rpc_recv(buf, 64, lenp);
    store(buf, load(buf) * 10);
    rpc_reply(id, buf, 8);
  }
}
)";
    static const char *OneShotClient = R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 4);
  var status = rpc(40, arg, 8, rep);
  print(status);
  print(load(rep));
  snap(1);
}
)";
    std::string Error;
    Module CM = compileOrDie(OneShotClient, "climod", Technology::Native,
                             "client.ml");
    Module SM = compileOrDie(EchoServer, "srvmod", Technology::Native,
                             "server.ml");
    ASSERT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
    ASSERT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
  }

  void run() {
    Server->start("main");
    for (int I = 0; I < 10; ++I)
      D.world().stepSlice();
    Client->start("main");
    while (!Client->Exited && D.world().cycles() < 50'000'000)
      D.world().stepSlice();
  }

  std::vector<std::pair<uint64_t, SyncKind>> serverSyncs() {
    TracebackRuntime *RT = D.runtimeFor(*Server, Technology::Native);
    SnapFile S = RT->takeSnap(SnapReason::External, 0);
    ReconstructedTrace T = D.reconstruct(S);
    std::vector<std::pair<uint64_t, SyncKind>> Out;
    for (const ThreadTrace &Th : T.Threads)
      for (const TraceEvent &E : Th.Events)
        if (E.EventKind == TraceEvent::Kind::Sync)
          Out.push_back({E.Sequence, E.Sync});
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  std::vector<std::pair<uint64_t, SyncKind>> clientSyncs() {
    std::vector<std::pair<uint64_t, SyncKind>> Out;
    for (const SnapFile &S : D.snaps()) {
      if (S.ProcessName != "client")
        continue;
      ReconstructedTrace T = D.reconstruct(S);
      for (const ThreadTrace &Th : T.Threads)
        for (const TraceEvent &E : Th.Events)
          if (E.EventKind == TraceEvent::Kind::Sync)
            Out.push_back({E.Sequence, E.Sync});
    }
    std::sort(Out.begin(), Out.end());
    // The client snaps twice (snap(1) + process exit); both images carry
    // the same sync records, so collapse the duplicates.
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
};
} // namespace

TEST(RpcFaultTest, DroppedWireLeavesServerUnbound) {
  FaultPlan Plan;
  Plan.Seed = 51;
  Plan.Events.push_back({FaultKind::RpcDropWire, 0, 0});
  FaultInjector FI(Plan);
  TwoMachines T;
  T.D.world().Injector = &FI;
  T.deployAll();
  T.run();
  // The payload still flows — only the TraceBack triple was lost.
  EXPECT_EQ(T.Client->Output, "0\n40\n");
  EXPECT_TRUE(FI.allFired());

  // Server never saw the wire: no CallRecv, no sync records at all.
  EXPECT_TRUE(T.serverSyncs().empty());
  // The client still holds its own half of the chain.
  auto CS = T.clientSyncs();
  ASSERT_EQ(CS.size(), 2u);
  EXPECT_EQ(CS[0].second, SyncKind::CallSend);
  EXPECT_EQ(CS[1].second, SyncKind::ReplyRecv);
}

TEST(RpcFaultTest, DuplicatedWireRecordsTwoCallRecvs) {
  FaultPlan Plan;
  Plan.Seed = 52;
  Plan.Events.push_back({FaultKind::RpcDupWire, 0, 0});
  FaultInjector FI(Plan);
  TwoMachines T;
  T.D.world().Injector = &FI;
  T.deployAll();
  T.run();
  EXPECT_EQ(T.Client->Output, "0\n40\n");
  EXPECT_TRUE(FI.allFired());

  auto SS = T.serverSyncs();
  size_t CallRecvs = 0;
  for (auto &[Seq, Kind] : SS)
    if (Kind == SyncKind::CallRecv)
      ++CallRecvs;
  EXPECT_EQ(CallRecvs, 2u) << "duplicated wire must record twice";
}

// ----------------------------------------------------------------------------
// Module unload racing a snap.
// ----------------------------------------------------------------------------

TEST(FaultInjectionTest, UnloadRaceSnapStillAttributesRecords) {
  FaultPlan Plan;
  Plan.Seed = 61;
  Plan.Events.push_back({FaultKind::UnloadRace, 120, 0});
  FaultedRun R(BoundedSpin, Plan);
  EXPECT_TRUE(R.FI.allFired());

  // The injector unloaded the module and immediately requested a snap.
  ASSERT_FALSE(R.S.D.snaps().empty());
  const SnapFile &Snap = R.S.D.snaps().front();
  bool SawUnloaded = false;
  for (const SnapModuleInfo &M : Snap.Modules)
    if (M.Unloaded)
      SawUnloaded = true;
  EXPECT_TRUE(SawUnloaded) << "snap raced the unload";

  // Stale records of the unloaded module must still attribute by name.
  ReconstructedTrace Trace = R.S.D.reconstruct(Snap);
  const ThreadTrace *Main = Trace.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  ASSERT_GT(Got.size(), 3u);
  EXPECT_TRUE(isPrefixWithSlack(Got, oracleSequence(R.S.Oracle, 1)));
}

// ----------------------------------------------------------------------------
// Satellite: DAG-ID rebasing across unload + reload with a different base.
// ----------------------------------------------------------------------------

TEST(DagRebaseTest, SnapWhileUnloadedThenReloadWithDifferentBase) {
  SingleProcess S;
  Module A = compileOrDie("fn fa() export { return 1; }\n"
                          "fn main() export { fa(); snap(1); }",
                          "moda");
  Module B = compileOrDie("fn fb(x) export { return x + 2; }", "modb");
  InstrumentOptions Opts;
  Opts.DagIdBase = 5000; // Force a collision: moda must be rebased.
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, B, true, Opts, Error), nullptr) << Error;
  ASSERT_NE(S.D.deploy(*S.P, A, true, Opts, Error), nullptr) << Error;
  LoadedModule *LA = S.P->findModule("moda");
  ASSERT_NE(LA, nullptr);
  uint32_t RebasedBase = LA->Mod.DagIdBase;
  ASSERT_NE(RebasedBase, 5000u) << "collision must rebase";

  // Execute moda so its (rebased) records land in the buffer.
  S.P->start("main");
  ASSERT_EQ(S.D.world().run(), World::RunResult::AllExited);

  // Unload moda, then snap while it is unloaded: its stale records must
  // still reconstruct via the snap's unloaded-module metadata.
  ASSERT_TRUE(S.P->unloadModule("moda"));
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  ASSERT_NE(RT, nullptr);
  SnapFile WhileUnloaded = RT->takeSnap(SnapReason::External, 0);
  bool HasUnloadedModA = false;
  for (const SnapModuleInfo &M : WhileUnloaded.Modules)
    if (M.Name == "moda" && M.Unloaded && M.DagIdBase == RebasedBase)
      HasUnloadedModA = true;
  EXPECT_TRUE(HasUnloadedModA);
  ReconstructedTrace T1 = S.D.reconstruct(WhileUnloaded);
  bool SawA = false;
  for (const ThreadTrace &Th : T1.Threads)
    for (const TraceEvent &E : Th.Events)
      if (E.EventKind == TraceEvent::Kind::Line && E.Module == "moda")
        SawA = true;
  EXPECT_TRUE(SawA) << "records of the unloaded module must attribute";

  // Reload moda instrumented with a *different* requested base: the fixup
  // path must land it on a usable, non-overlapping range.
  InstrumentOptions Opts2;
  Opts2.DagIdBase = 9000;
  Module InstrA;
  ASSERT_TRUE(S.D.instrumentOnly(A, Opts2, InstrA, Error)) << Error;
  LoadedModule *Reloaded = S.P->loadModule(InstrA, Error);
  ASSERT_NE(Reloaded, nullptr) << Error;
  EXPECT_NE(Reloaded->Mod.DagIdBase, BadDagId);
  // No overlap with modb's live range.
  LoadedModule *LB = S.P->findModule("modb");
  ASSERT_NE(LB, nullptr);
  EXPECT_TRUE(Reloaded->Mod.DagIdBase >=
                  LB->Mod.DagIdBase + LB->Mod.DagIdCount ||
              LB->Mod.DagIdBase >=
                  Reloaded->Mod.DagIdBase + Reloaded->Mod.DagIdCount);

  // The pre-unload records in the buffer still carry the OLD rebased ids.
  // A snap taken now lists both generations of moda; whichever base the
  // reload landed on, those stale records must keep attributing.
  SnapFile After = RT->takeSnap(SnapReason::External, 0);
  ReconstructedTrace T2 = S.D.reconstruct(After);
  bool SawA2 = false;
  for (const ThreadTrace &Th : T2.Threads)
    for (const TraceEvent &E : Th.Events)
      if (E.EventKind == TraceEvent::Kind::Line && E.Module == "moda")
        SawA2 = true;
  EXPECT_TRUE(SawA2)
      << "records from before the unload must survive the reload";
}
