//===- tests/test_runtime.cpp - TraceBack runtime tests -------------------===//
//
// Part of the TraceBack reproduction project (paper section 3).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
const char *LoopSource = R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 400; i = i + 1) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
  }
  snap(1);
  print(s);
}
)";
} // namespace

TEST(RuntimeTest, BufferWrapAndSubBufferCommits) {
  SingleProcess S;
  S.D.Policy.BufferBytes = 1024; // Tiny buffers force wraps.
  S.D.Policy.SubBufferCount = 4;
  Module M = compileOrDie(LoopSource);
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  ASSERT_NE(RT, nullptr);
  EXPECT_GT(RT->stats().BufferWraps, 2u);
  EXPECT_GT(RT->stats().SubBufferCommits, 2u);
  EXPECT_GT(RT->stats().FullBufferWraps, 0u) << "ring must lap";
  // Reconstruction still yields a (truncated) trace.
  ASSERT_FALSE(S.D.snaps().empty());
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  EXPECT_TRUE(T.Threads[0].Truncated) << "old history was overwritten";
}

TEST(RuntimeTest, HistoryDepthScalesWithBufferSize) {
  auto LinesRecovered = [](uint32_t BufferBytes) {
    SingleProcess S;
    S.D.Policy.BufferBytes = BufferBytes;
    Module M = compileOrDie(LoopSource);
    S.runModule(M, true);
    ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
    size_t Lines = 0;
    for (const TraceEvent &E : T.Threads.at(0).Events)
      if (E.EventKind == TraceEvent::Kind::Line)
        Lines += E.Repeat;
    return Lines;
  };
  size_t Small = LinesRecovered(512);
  size_t Big = LinesRecovered(64 * 1024);
  EXPECT_GT(Big, Small * 2) << "bigger buffers, deeper history";
}

TEST(RuntimeTest, ProbationThreadsNeverClaimBuffers) {
  // A thread that runs no instrumented code must stay on probation.
  SingleProcess S;
  Module Plain = compileOrDie(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 50; i = i + 1) { s = s + i; }
  print(s);
}
)");
  // Attach the runtime but load the module UNinstrumented.
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, Plain, /*Instrument=*/false, Error), nullptr);
  S.P->start("main");
  S.D.world().run();
  EXPECT_EQ(RT->stats().BufferWraps, 0u);
  SnapFile Snap = RT->takeSnap(SnapReason::External, 0);
  ReconstructedTrace T = S.D.reconstruct(Snap);
  EXPECT_TRUE(T.Threads.empty()) << "no instrumented code ran";
}

TEST(RuntimeTest, DesperationBufferWhenOutOfBuffers) {
  SingleProcess S;
  S.D.Policy.BufferCount = 1; // One real buffer for many threads.
  Module M = compileOrDie(R"(
fn worker(id) {
  var s = 0;
  for (var i = 0; i < 30; i = i + 1) { s = s + id; }
  return s;
}
fn main() export {
  var t1 = spawn(addr_of(worker), 1);
  var t2 = spawn(addr_of(worker), 2);
  var t3 = spawn(addr_of(worker), 3);
  join(t1); join(t2); join(t3);
  snap(1);
}
)");
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_GT(RT->stats().DesperationAssignments, 0u);
  // Reconstruction must drop desperation data with a warning, not crash.
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  bool Warned = false;
  for (const std::string &W : T.Warnings)
    if (W.find("desperation") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
}

TEST(RuntimeTest, BufferReuseAfterThreadExit) {
  SingleProcess S;
  // Two buffers: the main thread owns one; sequential workers must share
  // the other by reuse rather than falling into desperation.
  S.D.Policy.BufferCount = 2;
  Module M = compileOrDie(R"(
fn worker(id) {
  var s = id * 3;
  return s;
}
fn main() export {
  var t1 = spawn(addr_of(worker), 1);
  join(t1);
  var t2 = spawn(addr_of(worker), 2);
  join(t2);
  snap(1);
}
)");
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_EQ(RT->stats().DesperationAssignments, 0u)
      << "sequential threads reuse the one buffer";
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  // Both workers' lifetimes are packed into the same buffer.
  EXPECT_NE(T.threadById(2), nullptr);
  EXPECT_NE(T.threadById(3), nullptr);
}

TEST(RuntimeTest, ScavengerFindsAbruptlyDeadThreads) {
  SingleProcess S;
  Module M = compileOrDie(R"(
fn server() {
  srv_register(9);
  var buf = alloc(64);
  var lenp = alloc(8);
  var id = rpc_recv(buf, 64, lenp);
  var p = 0;
  return load(p);   // dies servicing the request
}
fn main() export {
  srv_register(9);
  var t = spawn(addr_of(server), 0);
  sleep(2000);
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 123);
  rpc(9, arg, 8, rep);
  // Keep running so buffer wraps trigger the scavenger.
  var s = 0;
  for (var i = 0; i < 3000; i = i + 1) { s = s + i % 13; }
  snap(1);
}
)");
  S.D.Policy.BufferBytes = 1024;
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_GT(RT->stats().ThreadsScavenged, 0u)
      << "server thread died abruptly; scavenger must reclaim its buffer";
}

TEST(RuntimeTest, DagRebasingOnCollision) {
  // Two different modules instrumented with the SAME default base collide;
  // the second must be rebased, and traces from both must reconstruct.
  SingleProcess S;
  Module A = compileOrDie("fn fa() export { return 1; }\n"
                          "fn main() export { fa(); snap(1); }",
                          "moda");
  Module B = compileOrDie("fn fb(x) export { return x + 2; }", "modb");
  InstrumentOptions Opts;
  Opts.DagIdBase = 5000; // Force identical default ranges.
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, B, true, Opts, Error), nullptr) << Error;
  ASSERT_NE(S.D.deploy(*S.P, A, true, Opts, Error), nullptr) << Error;
  LoadedModule *LA = S.P->findModule("moda");
  LoadedModule *LB = S.P->findModule("modb");
  ASSERT_NE(LA, nullptr);
  ASSERT_NE(LB, nullptr);
  EXPECT_EQ(LB->Mod.DagIdBase, 5000u) << "first keeps its range";
  EXPECT_NE(LA->Mod.DagIdBase, 5000u) << "second must be rebased";
  // No overlap.
  EXPECT_TRUE(LA->Mod.DagIdBase >= LB->Mod.DagIdBase + LB->Mod.DagIdCount ||
              LB->Mod.DagIdBase >= LA->Mod.DagIdBase + LA->Mod.DagIdCount);
  S.P->start("main");
  S.D.world().run();
  ASSERT_FALSE(S.D.snaps().empty());
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  // Lines from module A must reconstruct despite rebasing.
  bool SawA = false;
  for (const TraceEvent &E : T.Threads[0].Events)
    if (E.EventKind == TraceEvent::Kind::Line && E.Module == "moda")
      SawA = true;
  EXPECT_TRUE(SawA);
}

TEST(RuntimeTest, ReloadGetsSameRange) {
  SingleProcess S;
  Module A = compileOrDie("fn fa() export { return 1; }", "moda");
  std::string Error;
  LoadedModule *First = S.D.deploy(*S.P, A, true, Error);
  ASSERT_NE(First, nullptr);
  uint32_t Base1 = First->Mod.DagIdBase;
  ASSERT_TRUE(S.P->unloadModule("moda"));
  // Reload the same instrumented image.
  Module Instr;
  ASSERT_TRUE(S.D.instrumentOnly(A, InstrumentOptions(), Instr, Error));
  LoadedModule *Second = S.P->loadModule(Instr, Error);
  ASSERT_NE(Second, nullptr) << Error;
  EXPECT_EQ(Second->Mod.DagIdBase, Base1)
      << "reload must reuse the range (no id-space leak)";
}

TEST(RuntimeTest, BadDagFallbackWhenIdSpaceExhausted) {
  SingleProcess S;
  // Consume nearly the whole id space with a fake registration by loading
  // a module with a huge claimed range... simpler: request a base near the
  // top so the second module cannot fit anywhere above, then fill below.
  Module A = compileOrDie("fn fa() export { return 1; }", "moda");
  Module B = compileOrDie(
      "fn fb() export { return 2; }\nfn main() export { fb(); snap(1); }",
      "modb");
  std::string Error;
  // Deploy A claiming virtually the entire DAG id space.
  Module InstrA;
  MapFile MapA;
  InstrumentOptions OptsA;
  OptsA.DagIdBase = 1;
  ASSERT_TRUE(instrumentModule(A, OptsA, InstrA, MapA, nullptr, Error));
  InstrA.DagIdCount = MaxDagId - 1; // Claim (simulates a huge module).
  S.D.maps().add(MapA);
  S.D.runtimeFor(*S.P, Technology::Native);
  ASSERT_NE(S.P->loadModule(InstrA, Error), nullptr) << Error;
  // B cannot fit: must fall back to the bad-DAG id but keep running.
  LoadedModule *LB = S.D.deploy(*S.P, B, true, Error);
  ASSERT_NE(LB, nullptr) << Error;
  EXPECT_EQ(LB->Mod.DagIdBase, BadDagId);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_GT(RT->stats().ModulesBadDag, 0u);
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited)
      << "bad-DAG module must still execute correctly";
  // Reconstruction reports untraced regions rather than garbage.
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  bool SawUntraced = false;
  for (const TraceEvent &E : T.Threads[0].Events)
    if (E.EventKind == TraceEvent::Kind::Untraced)
      SawUntraced = true;
  EXPECT_TRUE(SawUntraced);
}

TEST(RuntimeTest, TlsSlotRebasingForSecondRuntime) {
  // Two runtimes in one process (native + managed) must claim distinct TLS
  // slots, and managed modules get their probes patched.
  SingleProcess S;
  TracebackRuntime *Native = S.D.runtimeFor(*S.P, Technology::Native);
  TracebackRuntime *Managed = S.D.runtimeFor(*S.P, Technology::Managed);
  EXPECT_NE(Native->tlsSlot(), Managed->tlsSlot());
  Module M = compileOrDie("fn main() export { snap(1); }", "jm",
                          Technology::Managed);
  std::string Error;
  LoadedModule *LM = S.D.deploy(*S.P, M, true, Error);
  ASSERT_NE(LM, nullptr) << Error;
  EXPECT_EQ(LM->Mod.TlsSlot, Managed->tlsSlot());
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
}

TEST(RuntimeTest, SnapSuppressionDeduplicatesSites) {
  SingleProcess S;
  S.D.Policy.SuppressRepeats = 1;
  Module M = compileOrDie(R"(
fn main() export {
  for (var i = 0; i < 5; i = i + 1) {
    try { throw 4; } catch { }
  }
}
)");
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_EQ(RT->stats().SnapsTaken, 1u) << "same site snapped once";
  EXPECT_EQ(RT->stats().SnapsSuppressed, 4u);
}

TEST(RuntimeTest, SnapFileSerializationRoundTrip) {
  SingleProcess S;
  Module M = compileOrDie("fn main() export { snap(3); }");
  S.runModule(M, true);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().back();
  std::vector<uint8_t> Bytes = Snap.serialize();
  SnapFile Back;
  ASSERT_TRUE(SnapFile::deserialize(Bytes, Back));
  EXPECT_EQ(Back.Reason, Snap.Reason);
  EXPECT_EQ(Back.ProcessName, Snap.ProcessName);
  EXPECT_EQ(Back.RuntimeId, Snap.RuntimeId);
  EXPECT_EQ(Back.Buffers.size(), Snap.Buffers.size());
  EXPECT_EQ(Back.Modules.size(), Snap.Modules.size());
  EXPECT_EQ(Back.Threads.size(), Snap.Threads.size());
  for (size_t I = 0; I < Snap.Buffers.size(); ++I)
    EXPECT_EQ(Back.Buffers[I].Raw, Snap.Buffers[I].Raw);
  // A reconstruction from the deserialized snap is identical.
  ReconstructedTrace A = S.D.reconstruct(Snap);
  ReconstructedTrace B = S.D.reconstruct(Back);
  ASSERT_EQ(A.Threads.size(), B.Threads.size());
  for (size_t I = 0; I < A.Threads.size(); ++I)
    EXPECT_EQ(A.Threads[I].Events.size(), B.Threads[I].Events.size());
}

TEST(RuntimeTest, ThreadsLeaveDesperationWhenBuffersFree) {
  // Section 3.1: "threads can leave the desperation buffer when resources
  // become available". One buffer, two phases: while the first worker
  // holds it the second lands in desperation; after the first exits, the
  // second's next wrap upgrades it to the freed buffer.
  SingleProcess S;
  S.D.Policy.BufferCount = 2; // main + one worker; the 2nd worker waits.
  S.D.Policy.BufferBytes = 1024; // Frequent wraps = frequent retries.
  Module M = compileOrDie(R"(
fn churn(n) {
  var s = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i & 1) { s = s + i; } else { s = s ^ i; }
  }
  return s;
}
fn first(arg) { return churn(300); }
fn second(arg) {
  sleep(2000);          // Let `first` claim the last buffer.
  return churn(4000);   // Long enough to outlive `first` and upgrade.
}
fn main() export {
  var t1 = spawn(addr_of(first), 0);
  var t2 = spawn(addr_of(second), 0);
  join(t1);
  join(t2);
  snap(1);
}
)");
  S.runModule(M, true);
  TracebackRuntime *RT = S.D.runtimeFor(*S.P, Technology::Native);
  EXPECT_GT(RT->stats().DesperationAssignments, 0u)
      << "the second worker must have visited desperation";
  // After the upgrade, thread 3's records live in a real buffer and its
  // trace reconstructs.
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  EXPECT_NE(T.threadById(3), nullptr)
      << "thread 3 must have escaped the desperation buffer";
}

TEST(RuntimeTest, SnapOnExitPolicy) {
  SingleProcess S;
  S.D.Policy.SnapOnExit = true;
  S.D.Policy.SnapOnApi = false;
  Module M = compileOrDie("fn main() export { print(1); }");
  S.runModule(M, true);
  ASSERT_FALSE(S.D.snaps().empty());
  EXPECT_EQ(S.D.snaps().back().Reason, SnapReason::ProcessExit);
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  EXPECT_FALSE(T.Threads.empty());
}

TEST(RuntimeTest, TimestampIntervalThrottles) {
  auto RecordsWritten = [](uint32_t Interval) {
    SingleProcess S;
    S.D.Policy.TimestampInterval = Interval;
    S.D.Policy.SnapOnApi = false;
    Module M = compileOrDie(R"(
fn main() export {
  for (var i = 0; i < 64; i = i + 1) { yield(); }
}
)");
    S.runModule(M, true);
    return S.D.runtimeFor(*S.P, Technology::Native)
        ->stats()
        .RecordsWrittenByRuntime;
  };
  uint64_t Every = RecordsWritten(1);
  uint64_t Eighth = RecordsWritten(8);
  uint64_t Off = RecordsWritten(0);
  EXPECT_GT(Every, Eighth * 3) << "interval 1 writes ~8x the records";
  EXPECT_GT(Eighth, Off) << "interval 0 disables timestamps";
}
