//===- tests/test_metrics.cpp - Metrics layer + TELEMETRY records ---------===//
//
// Part of the TraceBack reproduction project.
//
// Covers the self-telemetry layer end to end: sharded instruments under
// concurrency, the stable JSON schema, the chunked TELEMETRY extended-record
// stream (through the checked-in golden snap fixture), the per-class fault
// counters against the injector's own fired log, and the runtime counters a
// real deployment embeds into its snaps.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/FileIO.h"
#include "reconstruct/Reconstructor.h"
#include "support/Metrics.h"
#include "support/Text.h"
#include "support/ThreadPool.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace traceback;
using namespace traceback::testing_helpers;

// ----------------------------------------------------------------------------
// Instruments.
// ----------------------------------------------------------------------------

TEST(MetricsInstrumentTest, CounterShardMergeUnderThreadPool) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("test.hits");
  Gauge &G = Reg.gauge("test.level");
  Histogram &H = Reg.histogram("test.lat_us");

  // Hammer one instrument set from many pool workers: the merged totals
  // must be exact whatever shard each worker hashed to.
  constexpr size_t Tasks = 64;
  constexpr uint64_t PerTask = 5000;
  ThreadPool Pool(8);
  parallelForIndex(&Pool, Tasks, [&](size_t I) {
    for (uint64_t K = 0; K < PerTask; ++K)
      C.add();
    G.add(static_cast<int64_t>(I));
    H.observe(I);
  });

  EXPECT_EQ(C.value(), Tasks * PerTask);
  EXPECT_EQ(G.value(), static_cast<int64_t>(Tasks * (Tasks - 1) / 2));
  EXPECT_EQ(H.count(), Tasks);
  EXPECT_EQ(H.sum(), Tasks * (Tasks - 1) / 2);

  // Snapshot sees the same merged values; reset zeroes every shard.
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.Counters.at("test.hits"), Tasks * PerTask);
  EXPECT_EQ(S.Histograms.at("test.lat_us").Count, Tasks);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
}

TEST(MetricsInstrumentTest, RegistryReturnsStableInstruments) {
  MetricsRegistry Reg;
  Counter &A = Reg.counter("same.name");
  Counter &B = Reg.counter("same.name");
  EXPECT_EQ(&A, &B);
  // Different families never collide even with an identical name.
  Reg.gauge("same.name").set(7);
  A.add(3);
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.Counters.at("same.name"), 3u);
  EXPECT_EQ(S.Gauges.at("same.name"), 7);
}

TEST(MetricsInstrumentTest, HistogramBucketPlacement) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(1023), 10u);
  EXPECT_EQ(Histogram::bucketFor(1024), 11u);
  // Everything at or beyond 2^(HistogramBuckets-1) lands in the last bucket.
  EXPECT_EQ(Histogram::bucketFor(1ULL << 40), HistogramBuckets - 1);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), HistogramBuckets - 1);

  Histogram H;
  H.observe(0);
  H.observe(5);
  H.observe(5);
  H.observe(1ULL << 50);
  std::vector<uint64_t> B = H.buckets();
  ASSERT_EQ(B.size(), HistogramBuckets);
  EXPECT_EQ(B[0], 1u);
  EXPECT_EQ(B[3], 2u);
  EXPECT_EQ(B[HistogramBuckets - 1], 1u);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 10u + (1ULL << 50));
}

// ----------------------------------------------------------------------------
// JSON schema.
// ----------------------------------------------------------------------------

namespace {

MetricsSnapshot sampleSnapshot() {
  MetricsRegistry Reg;
  Reg.counter("runtime.words_appended").add(123456789);
  Reg.counter("reconstruct.cache_hits").add(42);
  Reg.gauge("runtime.buffers_owned").set(-3); // negative gauges round-trip
  Reg.gauge("daemon.watched_processes").set(12);
  Histogram &H = Reg.histogram("runtime.snap_latency_us");
  H.observe(0);
  H.observe(17);
  H.observe(90000);
  return Reg.snapshot();
}

} // namespace

TEST(MetricsJsonTest, RoundTripCompactAndPretty) {
  MetricsSnapshot S = sampleSnapshot();
  for (unsigned Indent : {0u, 2u}) {
    std::string J = S.toJson(Indent);
    MetricsSnapshot Back;
    ASSERT_TRUE(MetricsSnapshot::fromJson(J, Back)) << J;
    EXPECT_EQ(Back, S) << "indent " << Indent;
  }
}

TEST(MetricsJsonTest, ByteStableForEqualSnapshots) {
  // Sorted keys + fixed schema: two equal snapshots serialize to equal
  // bytes (what makes telemetry safe to diff across snaps).
  EXPECT_EQ(sampleSnapshot().toJson(), sampleSnapshot().toJson());
  EXPECT_NE(sampleSnapshot().toJson().find("\"schema\":"), std::string::npos);
}

TEST(MetricsJsonTest, EscapesHostileNames) {
  MetricsRegistry Reg;
  Reg.counter("we\"ird\\name\n\t").add(1);
  MetricsSnapshot S = Reg.snapshot();
  MetricsSnapshot Back;
  ASSERT_TRUE(MetricsSnapshot::fromJson(S.toJson(), Back));
  EXPECT_EQ(Back, S);
}

TEST(MetricsJsonTest, RejectsMalformedDocuments) {
  MetricsSnapshot Out;
  EXPECT_FALSE(MetricsSnapshot::fromJson("", Out));
  EXPECT_FALSE(MetricsSnapshot::fromJson("{}", Out));
  EXPECT_FALSE(MetricsSnapshot::fromJson("not json at all", Out));
  // Wrong schema tag.
  EXPECT_FALSE(MetricsSnapshot::fromJson(
      "{\"schema\":\"something-else\",\"counters\":{},\"gauges\":{},"
      "\"histograms\":{}}",
      Out));
  // Trailing garbage after a valid document.
  std::string J = sampleSnapshot().toJson();
  EXPECT_FALSE(MetricsSnapshot::fromJson(J + "x", Out));
  // Truncation anywhere must fail, never crash.
  for (size_t Len = 0; Len < J.size(); Len += 7)
    EXPECT_FALSE(MetricsSnapshot::fromJson(J.substr(0, Len), Out));
}

// ----------------------------------------------------------------------------
// TELEMETRY extended records.
// ----------------------------------------------------------------------------

TEST(TelemetryRecordTest, ChunkedEncodeDecodeRoundTrip) {
  // A registry big enough that the JSON spans several chunks (each record
  // carries at most 664 payload bytes).
  MetricsRegistry Reg;
  for (int I = 0; I < 60; ++I)
    Reg.counter(formatv("runtime.some_long_counter_name_%02d", I)).add(I * 7);
  Reg.histogram("runtime.snap_latency_us").observe(1234);
  std::string Json = Reg.snapshot().toJson();
  ASSERT_GT(Json.size(), 2 * 664u);

  std::vector<uint32_t> Words = encodeTelemetryRecords(Json);
  ASSERT_FALSE(Words.empty());
  std::string Back;
  ASSERT_TRUE(decodeTelemetryRecords(Words, Back));
  EXPECT_EQ(Back, Json);

  // Empty stream <-> empty document.
  std::string Empty;
  EXPECT_TRUE(decodeTelemetryRecords({}, Empty));
  EXPECT_TRUE(Empty.empty());
}

TEST(TelemetryRecordTest, TornStreamsAreRejected) {
  std::string Json = sampleSnapshot().toJson();
  std::vector<uint32_t> Words = encodeTelemetryRecords(Json);
  std::string Out;

  // Truncated mid-record.
  std::vector<uint32_t> Cut(Words.begin(), Words.end() - 1);
  EXPECT_FALSE(decodeTelemetryRecords(Cut, Out));

  // A flipped header word.
  std::vector<uint32_t> Flipped = Words;
  Flipped[0] ^= 0x80000000u;
  EXPECT_FALSE(decodeTelemetryRecords(Flipped, Out));

  // Out-of-order chunks (swap the two records of a two-chunk stream).
  MetricsRegistry Reg;
  for (int I = 0; I < 40; ++I)
    Reg.counter(formatv("c.pad_%02d_xxxxxxxxxxxxxxxx", I)).add(1);
  std::vector<uint32_t> Two = encodeTelemetryRecords(Reg.snapshot().toJson());
  std::string TwoJson;
  ASSERT_TRUE(decodeTelemetryRecords(Two, TwoJson));
  // Find the second record's start: the next word with the ext-header tag
  // (top two bits 00) after the first.
  size_t Second = 1;
  while (Second < Two.size() && (Two[Second] >> 30) != 0)
    ++Second;
  ASSERT_LT(Second, Two.size()) << "expected a multi-chunk stream";
  std::vector<uint32_t> Swapped;
  Swapped.insert(Swapped.end(), Two.begin() + Second, Two.end());
  Swapped.insert(Swapped.end(), Two.begin(), Two.begin() + Second);
  EXPECT_FALSE(decodeTelemetryRecords(Swapped, Out));
}

TEST(TelemetryRecordTest, GoldenSnapRoundTripsTelemetry) {
  // The checked-in fixture predates telemetry (format v2): it must load
  // with an empty stream, and re-serializing it with telemetry attached
  // (v3) must round-trip without disturbing anything else.
  const std::string SnapPath =
      std::string(TB_TESTS_DIR) + "/golden/golden.tbsnap";
  SnapFile Snap;
  ASSERT_TRUE(loadSnap(SnapPath, Snap))
      << "missing fixture " << SnapPath
      << " — regenerate with TRACEBACK_REGEN_GOLDEN=1 ./test_goldensnap";
  EXPECT_TRUE(Snap.Telemetry.empty());
  MetricsSnapshot None;
  EXPECT_FALSE(Snap.telemetry(None)) << "v2 snap must report no telemetry";

  MetricsSnapshot Health = sampleSnapshot();
  Snap.setTelemetry(Health);
  std::vector<uint8_t> Bytes = Snap.serialize();
  SnapFile Back;
  ASSERT_TRUE(SnapFile::deserialize(Bytes, Back));
  MetricsSnapshot Embedded;
  ASSERT_TRUE(Back.telemetry(Embedded));
  EXPECT_EQ(Embedded, Health);

  // Telemetry piggybacks on the snap without touching the trace payload.
  EXPECT_EQ(Back.ProcessName, Snap.ProcessName);
  ASSERT_EQ(Back.Buffers.size(), Snap.Buffers.size());
  for (size_t I = 0; I < Snap.Buffers.size(); ++I)
    EXPECT_EQ(Back.Buffers[I].Raw, Snap.Buffers[I].Raw) << "buffer " << I;
}

// ----------------------------------------------------------------------------
// Fault-injection counters.
// ----------------------------------------------------------------------------

namespace {

/// Two threads + a snap: gives every fault class something to hit.
const char *ChaosWorkload = R"(
fn worker(a) {
  var x = a;
  while (1) {
    x = x * 5 + 3;
    x = x % 999983;
    yield();
  }
  return x;
}
fn main() export {
  spawn(addr_of(worker), 1);
  var i = 0;
  while (i < 250) {
    i = i + 1;
    yield();
  }
  snap(1);
}
)";

} // namespace

TEST(FaultCounterTest, TwentySeedSweepMatchesFiredKinds) {
  uint64_t Base = testSeed();
  Module Mod = compileOrDie(ChaosWorkload);
  for (uint64_t I = 0; I < 20; ++I) {
    uint64_t Seed = Base + I;
    FaultPlan Plan = FaultPlan::random(Seed, 1500);

    MetricsRegistry Reg;
    SingleProcess S;
    FaultInjector FI(Plan, &Reg);
    S.D.world().Injector = &FI;
    S.runModule(Mod, /*Instrument=*/true);
    S.D.world().Injector = nullptr;

    // The per-class counters must agree exactly with the injector's own
    // record of what fired.
    std::map<std::string, uint64_t> Expected;
    for (FaultKind K : FI.firedKinds())
      ++Expected[std::string("inject.fired.") + faultKindName(K)];
    std::map<std::string, uint64_t> Got;
    for (const auto &[Name, Value] : Reg.snapshot().Counters)
      if (Name.rfind("inject.fired.", 0) == 0 && Value > 0)
        Got[Name] = Value;
    EXPECT_EQ(Got, Expected) << "seed " << Seed << " plan:\n"
                             << Plan.toText();
  }
}

// ----------------------------------------------------------------------------
// End-to-end runtime telemetry.
// ----------------------------------------------------------------------------

namespace {

const char *SnappyWorkload = R"(
fn helper(a) {
  var y = a * 2;
  return y + 1;
}
fn main() export {
  var x = 0;
  var i = 0;
  while (i < 3000) {
    x = x + helper(i);
    i = i + 1;
  }
  snap(1);
  print(x);
}
)";

} // namespace

TEST(RuntimeTelemetryTest, SnapEmbedsNonzeroRuntimeCounters) {
  // A local registry isolates this deployment's numbers from other tests.
  MetricsRegistry Reg;
  Deployment D;
  D.Metrics = &Reg;
  Machine *M = D.addMachine("host0");
  Process *P = M->createProcess("app");
  std::string Error;
  ASSERT_NE(D.deploy(*P, compileOrDie(SnappyWorkload), true, Error), nullptr)
      << Error;
  ASSERT_NE(P->start("main"), nullptr);
  ASSERT_EQ(D.world().run(), World::RunResult::AllExited);
  ASSERT_FALSE(D.snaps().empty());

  // The embedded producer telemetry carries live runtime counters.
  MetricsSnapshot Health;
  ASSERT_TRUE(D.snaps().front().telemetry(Health));
  EXPECT_GT(Health.Counters.at("runtime.words_appended"), 0u);
  EXPECT_GT(Health.Counters.at("runtime.subbuffer_commits"), 0u);
  EXPECT_GE(Health.Counters.at("runtime.snaps_taken"), 1u);
  ASSERT_TRUE(Health.Histograms.count("runtime.snap_latency_us"));
  EXPECT_GE(Health.Histograms.at("runtime.snap_latency_us").Count, 1u);

  // The daemon watched the process and saw the snap.
  MetricsSnapshot Live = Reg.snapshot();
  EXPECT_GE(Live.Counters.at("daemon.snaps_received"), 1u);
  EXPECT_GE(Live.Gauges.at("daemon.watched_processes"), 1);

  // Reconstruction exposes the same document on the trace.
  ReconstructedTrace Trace = D.reconstruct(D.snaps().front());
  MetricsSnapshot FromTrace;
  ASSERT_TRUE(MetricsSnapshot::fromJson(Trace.TelemetryJson, FromTrace));
  EXPECT_EQ(FromTrace, Health);
  // ... and its own cost shows up in the reconstruct family.
  MetricsSnapshot After = Reg.snapshot();
  EXPECT_GE(After.Counters.at("reconstruct.snaps"), 1u);
  EXPECT_GT(After.Counters.at("reconstruct.records"), 0u);
}

// ----------------------------------------------------------------------------
// Versioned SnapSink contract.
// ----------------------------------------------------------------------------

namespace {

/// A pre-extension consumer: overrides only onSnap, knows nothing of
/// telemetry. Must keep compiling and receiving snaps untouched.
struct V1Sink : SnapSink {
  void onSnap(const SnapFile &Snap) override { Snaps.push_back(Snap); }
  std::vector<SnapFile> Snaps;
};

} // namespace

TEST(SnapSinkVersionTest, DefaultVersionIsOneAndTelemetryIsNoop) {
  V1Sink Sink;
  EXPECT_EQ(Sink.consumerVersion(), 1u);
  EXPECT_LT(Sink.consumerVersion(), SnapSink::Versioned);
  // The base-class default must be callable and do nothing.
  static_cast<SnapSink &>(Sink).onTelemetry(7, sampleSnapshot());
  EXPECT_TRUE(Sink.Snaps.empty());
}

TEST(SnapSinkVersionTest, CollectingSinkReceivesTelemetry) {
  CollectingSnapSink Sink;
  EXPECT_GE(Sink.consumerVersion(), SnapSink::Versioned);
  MetricsSnapshot S = sampleSnapshot();
  Sink.onTelemetry(99, S);
  ASSERT_EQ(Sink.Telemetry.size(), 1u);
  EXPECT_EQ(Sink.Telemetry[0].first, 99u);
  EXPECT_EQ(Sink.Telemetry[0].second, S);
}

// ----------------------------------------------------------------------------
// ReconstructOptions regroup.
// ----------------------------------------------------------------------------

TEST(ReconstructOptionsTest, NestedAndLegacySpellingsAgree) {
  ReconstructOptions A;
  EXPECT_FALSE(A.legacyUncached());
  A.Cache.LegacyUncached = true;
  EXPECT_TRUE(A.legacyUncached());

  // The deprecated flat alias still works for one release.
  ReconstructOptions B;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  B.LegacyUncached = true;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  EXPECT_TRUE(B.legacyUncached());
  EXPECT_FALSE(B.Cache.LegacyUncached);
}
