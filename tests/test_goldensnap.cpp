//===- tests/test_goldensnap.cpp - Snap format golden fixture -------------===//
//
// Part of the TraceBack reproduction project.
//
// Guards the on-disk snap + mapfile formats and the text rendering against
// accidental drift: a serialized snap checked into tests/golden/ must keep
// reconstructing to byte-identical output. Regenerate deliberately with
//   TRACEBACK_REGEN_GOLDEN=1 ./test_goldensnap
// after an *intentional* format change, and review the fixture diff.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/FileIO.h"
#include "reconstruct/Reconstructor.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

/// Fixed workload: calls, a loop, a snap — enough to exercise DAG, ext and
/// sync-free rendering paths. Everything downstream is deterministic
/// (simulated clocks, seeded ids), so the output is stable byte-for-byte.
const char *GoldenWorkload = R"(
fn helper(a) {
  var y = a * 2;
  return y + 1;
}
fn main() export {
  var x = 0;
  var i = 0;
  while (i < 5) {
    x = x + helper(i);
    i = i + 1;
  }
  snap(1);
  print(x);
}
)";

std::string renderSnap(const SnapFile &Snap,
                       const ReconstructedTrace &Trace) {
  // Mirrors `tbtool reconstruct`'s default output.
  std::string Out = renderFaultView(Snap, Trace);
  Out += "\n";
  for (const ThreadTrace &T : Trace.Threads) {
    Out += renderFlatTrace(T);
    Out += "\n";
  }
  return Out;
}

} // namespace

TEST(GoldenSnapTest, ByteIdenticalReconstruction) {
  const std::string Dir = std::string(TB_TESTS_DIR) + "/golden";
  const std::string SnapPath = Dir + "/golden.tbsnap";
  const std::string MapPath = Dir + "/golden.tbmap";
  const std::string ExpectedPath = Dir + "/expected.txt";

  if (std::getenv("TRACEBACK_REGEN_GOLDEN")) {
    SingleProcess S;
    ASSERT_EQ(S.runModule(compileOrDie(GoldenWorkload), true),
              World::RunResult::AllExited);
    ASSERT_FALSE(S.D.snaps().empty());
    const SnapFile &Snap = S.D.snaps().front();
    ASSERT_TRUE(saveSnap(Snap, SnapPath)) << SnapPath;
    ASSERT_EQ(S.D.maps().all().size(), 1u);
    ASSERT_TRUE(saveMapFile(S.D.maps().all()[0], MapPath)) << MapPath;
    ReconstructedTrace Trace = S.D.reconstruct(Snap);
    ASSERT_TRUE(writeFileText(ExpectedPath, renderSnap(Snap, Trace)));
    GTEST_SKIP() << "regenerated golden fixtures in " << Dir;
  }

  SnapFile Snap;
  ASSERT_TRUE(loadSnap(SnapPath, Snap))
      << "missing fixture " << SnapPath
      << " — regenerate with TRACEBACK_REGEN_GOLDEN=1";
  MapFile Map;
  ASSERT_TRUE(loadMapFile(MapPath, Map)) << MapPath;
  MapFileStore Store;
  Store.add(std::move(Map));
  Reconstructor R(Store);
  ReconstructedTrace Trace = R.reconstruct(Snap);
  EXPECT_TRUE(Trace.Warnings.empty());

  std::string Expected;
  ASSERT_TRUE(readFileText(ExpectedPath, Expected)) << ExpectedPath;
  EXPECT_EQ(renderSnap(Snap, Trace), Expected)
      << "snap format or rendering drifted from the golden fixture";
}
