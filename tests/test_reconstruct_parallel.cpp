//===- tests/test_reconstruct_parallel.cpp - Pipeline equivalence ---------===//
//
// Part of the TraceBack reproduction project.
//
// The batch reconstruction pipeline (decode cache, memoized resolution,
// worker pool) must be a pure performance change: for ANY snap, the
// rendered traces and the warning stream must be byte-identical to the
// legacy single-threaded uncached reconstruction, for every combination
// of cache setting and worker count. A seeded 100-workload sweep checks
// exactly that, plus unit tests for the new support pieces.
//
//===----------------------------------------------------------------------===//

#include "reconstruct/Reconstructor.h"
#include "reconstruct/SynthWorkload.h"
#include "reconstruct/Views.h"
#include "support/FlatMap.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace traceback;

namespace {

/// Everything observable about a reconstruction, as one string.
std::string renderEverything(const SnapFile &Snap,
                             const ReconstructedTrace &T) {
  std::string Out = renderFaultView(Snap, T);
  for (const ThreadTrace &Thread : T.Threads) {
    Out += renderFlatTrace(Thread);
    Out += renderCallTree(Thread);
  }
  for (const std::string &W : T.Warnings) {
    Out += W;
    Out += '\n';
  }
  return Out;
}

std::string reconstructRendered(const SynthWorkload &W,
                                const MapFileStore &Store,
                                const ReconstructOptions &Opts,
                                ThreadPool *Pool) {
  Reconstructor R(Store, Opts);
  ReconstructedTrace T = R.reconstruct(W.Snap, Pool);
  return renderEverything(W.Snap, T);
}

} // namespace

// ---------------------------------------------------------------------------
// The property: every pipeline configuration renders the legacy bytes.
// ---------------------------------------------------------------------------

TEST(ReconstructParallelProperty, HundredSeedSweepIsByteIdentical) {
  uint64_t Base = seedFromEnv("TRACEBACK_TEST_SEED", 0xB00573D);
  SynthWorkloadOptions O;
  O.Modules = 4;
  O.DagsPerModule = 6;
  O.Threads = 3;
  O.RecordsPerThread = 200;
  O.HotPairs = 8;
  O.HotPercent = 80;
  O.IncludeCorrupt = true; // Warning paths must match too.

  ThreadPool Pool(4);
  for (uint64_t I = 0; I < 100; ++I) {
    uint64_t Seed = Base + I;
    SynthWorkload W = makeSynthWorkload(Seed, O);
    MapFileStore Store;
    for (MapFile &M : W.Maps)
      ASSERT_TRUE(Store.add(std::move(M)));

    ReconstructOptions Legacy;
    Legacy.Cache.LegacyUncached = true;
    std::string Reference = reconstructRendered(W, Store, Legacy, nullptr);
    ASSERT_FALSE(Reference.empty());

    ReconstructOptions Cached;
    ReconstructOptions Uncached;
    Uncached.Cache.Enabled = false;
    struct Variant {
      const char *Name;
      const ReconstructOptions *Opts;
      ThreadPool *Pool;
    } Variants[] = {
        {"cache,jobs=1", &Cached, nullptr},
        {"nocache,jobs=1", &Uncached, nullptr},
        {"cache,jobs=4", &Cached, &Pool},
        {"nocache,jobs=4", &Uncached, &Pool},
    };
    for (const Variant &V : Variants)
      ASSERT_EQ(Reference, reconstructRendered(W, Store, *V.Opts, V.Pool))
          << "variant " << V.Name << " diverged on seed " << Seed;
  }
}

TEST(ReconstructParallelProperty, SharedReconstructorAcrossSnaps) {
  // Batch mode reuses one Reconstructor (one decode cache) across many
  // snaps; the cache must not leak state between them.
  SynthWorkloadOptions O;
  O.Modules = 3;
  O.DagsPerModule = 5;
  O.Threads = 2;
  O.RecordsPerThread = 150;
  uint64_t Base = seedFromEnv("TRACEBACK_TEST_SEED", 0xB00573D) ^ 0x5eed;

  std::vector<SynthWorkload> Snaps;
  for (uint64_t I = 0; I < 4; ++I)
    Snaps.push_back(makeSynthWorkload(Base + I, O));
  MapFileStore Store;
  for (SynthWorkload &W : Snaps)
    for (MapFile &M : W.Maps)
      Store.add(std::move(M));

  std::vector<std::string> Isolated;
  for (SynthWorkload &W : Snaps) {
    Reconstructor R(Store);
    Isolated.push_back(renderEverything(W.Snap, R.reconstruct(W.Snap)));
  }
  Reconstructor Shared(Store);
  for (size_t I = 0; I < Snaps.size(); ++I)
    EXPECT_EQ(Isolated[I], renderEverything(Snaps[I].Snap,
                                            Shared.reconstruct(Snaps[I].Snap)))
        << "snap " << I;
  EXPECT_GT(Shared.pathCache().hits() + Shared.pathCache().misses(), 0u);
}

// ---------------------------------------------------------------------------
// Decode cache.
// ---------------------------------------------------------------------------

namespace {

/// Tiny two-way branch DAG: header -> (a | b) -> join.
MapDag diamondDag() {
  MapDag D;
  D.RelId = 0;
  auto Block = [](uint32_t Start, int8_t Bit) {
    MapBlock B;
    B.StartOffset = Start;
    B.EndOffset = Start + 8;
    B.BitIndex = Bit;
    B.Function = "f";
    B.Lines.push_back({0, Start / 8 + 1, Start});
    return B;
  };
  D.Blocks.push_back(Block(0, -1));
  D.Blocks.push_back(Block(8, 0));
  D.Blocks.push_back(Block(16, 1));
  D.Blocks.push_back(Block(24, 2));
  D.Blocks[0].Succs = {1, 2};
  D.Blocks[1].Succs = {3};
  D.Blocks[2].Succs = {3};
  return D;
}

} // namespace

TEST(DagPathCacheTest, HitsAndContentAddressing) {
  MapDag D = diamondDag();
  DagPathCache Cache;
  SharedDagPath P1 = Cache.decode(1, D, 0b101);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 0u);
  ASSERT_TRUE(P1);
  EXPECT_EQ(*P1, (std::vector<uint16_t>{0, 1, 3}));

  SharedDagPath P2 = Cache.decode(1, D, 0b101);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(P1.get(), P2.get()) << "hit must share the decoded path";

  // A different module key is a different cache line even for the same
  // DAG shape and bits.
  SharedDagPath P3 = Cache.decode(2, D, 0b101);
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(*P3, *P1);

  // Negative results (undecodable bits) are cached too.
  SharedDagPath Bad1 = Cache.decode(1, D, 0b011); // Both arms: impossible.
  ASSERT_TRUE(Bad1);
  EXPECT_TRUE(Bad1->empty());
  uint64_t MissesBefore = Cache.misses();
  SharedDagPath Bad2 = Cache.decode(1, D, 0b011);
  EXPECT_EQ(Cache.misses(), MissesBefore);
  EXPECT_TRUE(Bad2->empty());
}

// ---------------------------------------------------------------------------
// Iterative decoder hardening.
// ---------------------------------------------------------------------------

TEST(DecodeDagPathTest, VeryDeepImpliedChainDecodesIteratively) {
  // header -> 40000 implied blocks -> one bit block. The pre-PR
  // recursive DFS would grow the call stack linearly with the chain;
  // the explicit-stack walk handles it in bounded stack space.
  const uint16_t Chain = 40000;
  MapDag D;
  D.RelId = 0;
  for (uint32_t I = 0; I < Chain + 2u; ++I) {
    MapBlock B;
    B.StartOffset = I * 4;
    B.EndOffset = I * 4 + 4;
    B.BitIndex = -1;
    B.Function = "deep";
    D.Blocks.push_back(std::move(B));
  }
  D.Blocks.back().BitIndex = 0;
  for (uint32_t I = 0; I + 1 < Chain + 2u; ++I)
    D.Blocks[I].Succs = {static_cast<uint16_t>(I + 1)};

  std::vector<uint16_t> Path = decodeDagPath(D, 1u << 0);
  ASSERT_EQ(Path.size(), Chain + 2u);
  EXPECT_EQ(Path.front(), 0u);
  EXPECT_EQ(Path.back(), Chain + 1u);

  // Bit unset: the walk must not claim the chain ran to the bit block.
  EXPECT_EQ(decodeDagPath(D, 0).size(), Chain + 1u)
      << "unset trailing bit stops the tail extension at the bit block";
}

TEST(DecodeDagPathTest, CorruptSuccessorIndexIsIgnored) {
  MapDag D = diamondDag();
  D.Blocks[1].Succs = {999}; // Out of range: edge must be skipped.
  // Arm a no longer reaches the join, so "a then join" cannot decode.
  EXPECT_TRUE(decodeDagPath(D, 0b101).empty());
  // Arm b's route is intact.
  EXPECT_EQ(decodeDagPath(D, 0b110), (std::vector<uint16_t>{0, 2, 3}));
}

TEST(DecodeDagPathTest, CyclicImpliedChainTerminates) {
  // header -> implied a <-> implied b cycle. Corrupt map data must not
  // hang the decoder.
  MapDag D;
  D.RelId = 0;
  for (uint32_t I = 0; I < 3; ++I) {
    MapBlock B;
    B.StartOffset = I * 4;
    B.EndOffset = I * 4 + 4;
    B.BitIndex = -1;
    D.Blocks.push_back(std::move(B));
  }
  D.Blocks[0].Succs = {1};
  D.Blocks[1].Succs = {2};
  D.Blocks[2].Succs = {1}; // Cycle.
  std::vector<uint16_t> Path = decodeDagPath(D, 0);
  EXPECT_EQ(Path, (std::vector<uint16_t>{0, 1, 2}))
      << "tail extension stops at the first revisited block";
}

// ---------------------------------------------------------------------------
// MapFileStore duplicate registration.
// ---------------------------------------------------------------------------

TEST(MapFileStoreTest, DuplicateChecksumLastAddWins) {
  MapFile A;
  A.ModuleName = "first";
  A.Checksum = MD5::hash("same", 4);
  A.DagIdBase = 1;
  A.Dags.push_back(diamondDag());

  MapFile B;
  B.ModuleName = "second";
  B.Checksum = A.Checksum;
  B.DagIdBase = 1;

  MapFileStore Store;
  EXPECT_TRUE(Store.add(A));
  EXPECT_EQ(Store.size(), 1u);

  std::string Warning;
  EXPECT_FALSE(Store.add(B, &Warning));
  EXPECT_EQ(Store.size(), 1u) << "replacement, not accumulation";
  EXPECT_NE(Warning.find("first"), std::string::npos);
  EXPECT_NE(Warning.find("second"), std::string::npos);

  const MapFile *Found = Store.byChecksum(A.Checksum);
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->ModuleName, "second") << "the newest mapfile wins";
  EXPECT_TRUE(Found->Dags.empty());
}

// ---------------------------------------------------------------------------
// ThreadPool + parallelForIndex.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasksAcrossWaves) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Wave = 0; Wave < 3; ++Wave) {
    for (int I = 0; I < 50; ++I)
      Pool.run([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), 50 * (Wave + 1));
  }
}

TEST(ThreadPoolTest, ParallelForIndexCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Seen(257);
  parallelForIndex(&Pool, Seen.size(),
                   [&Seen](size_t I) { Seen[I].fetch_add(1); });
  for (size_t I = 0; I < Seen.size(); ++I)
    ASSERT_EQ(Seen[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForIndexRunsInlineWithoutPool) {
  std::vector<int> Order;
  parallelForIndex(nullptr, 5, [&Order](size_t I) {
    Order.push_back(static_cast<int>(I)); // No pool: strictly in order.
  });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ResolveJobsFloorsAtOne) {
  EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
  EXPECT_GE(ThreadPool::resolveJobs(-3), 1u);
  EXPECT_EQ(ThreadPool::resolveJobs(7), 7u);
}

// ---------------------------------------------------------------------------
// FlatMap.
// ---------------------------------------------------------------------------

TEST(FlatMapTest, InsertFindOverwrite) {
  FlatMap64<int> M;
  EXPECT_EQ(M.find(42), nullptr);
  M.insertOrAssign(42, 1);
  ASSERT_NE(M.find(42), nullptr);
  EXPECT_EQ(*M.find(42), 1);
  M.insertOrAssign(42, 2);
  EXPECT_EQ(*M.find(42), 2);
  EXPECT_EQ(M.size(), 1u);
}

TEST(FlatMapTest, ManyKeysSurviveRehash) {
  FlatMap64<uint64_t> M;
  const uint64_t N = 5000;
  for (uint64_t I = 0; I < N; ++I)
    M.insertOrAssign(I * 0x9E3779B97F4A7C15ULL, I);
  EXPECT_EQ(M.size(), N);
  for (uint64_t I = 0; I < N; ++I) {
    const uint64_t *V = M.find(I * 0x9E3779B97F4A7C15ULL);
    ASSERT_NE(V, nullptr) << "key " << I;
    EXPECT_EQ(*V, I);
  }
  EXPECT_EQ(M.find(12345), nullptr);
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.find(0), nullptr);
}

