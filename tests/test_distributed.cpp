//===- tests/test_distributed.cpp - Distributed tracing tests -------------===//
//
// Part of the TraceBack reproduction project (paper section 5).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/FileIO.h"
#include "reconstruct/Stitch.h"
#include "triage/Signature.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
/// Client on machine A calls service 40 on machine B; the server's clock
/// is skewed ahead by `Skew` cycles.
struct TwoMachines {
  Deployment D;
  Machine *MA, *MB;
  Process *Client, *Server;

  explicit TwoMachines(int64_t Skew = 100000) {
    MA = D.addMachine("alpha", "winnt");
    MB = D.addMachine("beta", "solaris", Skew);
    Client = MA->createProcess("client");
    Server = MB->createProcess("server");
  }

  void deployAll(const std::string &ClientSrc, const std::string &ServerSrc) {
    std::string Error;
    Module CM = compileOrDie(ClientSrc, "climod", Technology::Native,
                             "client.ml");
    Module SM = compileOrDie(ServerSrc, "srvmod", Technology::Native,
                             "server.ml");
    ASSERT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
    ASSERT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
  }

  void run() {
    Server->start("main");
    for (int I = 0; I < 10; ++I)
      D.world().stepSlice();
    Client->start("main");
    while (!Client->Exited && D.world().cycles() < 50'000'000)
      D.world().stepSlice();
  }
};

const char *EchoServer = R"(
fn main() export {
  srv_register(40);
  var buf = alloc(64);
  var lenp = alloc(8);
  while (1) {
    var id = rpc_recv(buf, 64, lenp);
    store(buf, load(buf) * 10);
    rpc_reply(id, buf, 8);
  }
}
)";

const char *OneShotClient = R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 4);
  var status = rpc(40, arg, 8, rep);
  print(status);
  print(load(rep));
  snap(1);
}
)";
} // namespace

TEST(DistributedTest, SyncRecordsFormCausalChain) {
  TwoMachines T;
  T.deployAll(OneShotClient, EchoServer);
  T.run();
  EXPECT_EQ(T.Client->Output, "0\n40\n");

  // The client's API snap and the server snap (taken via its runtime).
  ASSERT_FALSE(T.D.snaps().empty());
  TracebackRuntime *SrvRT = T.D.runtimeFor(*T.Server, Technology::Native);
  SnapFile SrvSnap = SrvRT->takeSnap(SnapReason::External, 0);
  const SnapFile *CliSnap = nullptr;
  for (const SnapFile &S : T.D.snaps())
    if (S.ProcessName == "client")
      CliSnap = &S;
  ASSERT_NE(CliSnap, nullptr);

  ReconstructedTrace CT = T.D.reconstruct(*CliSnap);
  ReconstructedTrace ST = T.D.reconstruct(SrvSnap);
  ASSERT_FALSE(CT.Threads.empty());
  ASSERT_FALSE(ST.Threads.empty());

  // Collect sync events: client must hold CallSend+ReplyRecv (seq 1, 4),
  // server CallRecv+ReplySend (seq 2, 3), all on one logical thread.
  std::map<uint64_t, std::vector<std::pair<uint64_t, SyncKind>>> ByLogical;
  auto Collect = [&](const ReconstructedTrace &T2) {
    for (const ThreadTrace &Th : T2.Threads)
      for (const TraceEvent &E : Th.Events)
        if (E.EventKind == TraceEvent::Kind::Sync)
          ByLogical[E.LogicalThreadId].push_back({E.Sequence, E.Sync});
  };
  Collect(CT);
  Collect(ST);
  ASSERT_EQ(ByLogical.size(), 1u) << "one RPC, one logical thread";
  auto &Chain = ByLogical.begin()->second;
  std::sort(Chain.begin(), Chain.end());
  ASSERT_EQ(Chain.size(), 4u);
  EXPECT_EQ(Chain[0], (std::pair<uint64_t, SyncKind>{1, SyncKind::CallSend}));
  EXPECT_EQ(Chain[1], (std::pair<uint64_t, SyncKind>{2, SyncKind::CallRecv}));
  EXPECT_EQ(Chain[2],
            (std::pair<uint64_t, SyncKind>{3, SyncKind::ReplySend}));
  EXPECT_EQ(Chain[3],
            (std::pair<uint64_t, SyncKind>{4, SyncKind::ReplyRecv}));
}

TEST(DistributedTest, StitcherFusesLogicalThread) {
  TwoMachines T;
  T.deployAll(OneShotClient, EchoServer);
  T.run();
  TracebackRuntime *SrvRT = T.D.runtimeFor(*T.Server, Technology::Native);
  SnapFile SrvSnap = SrvRT->takeSnap(SnapReason::External, 0);
  ReconstructedTrace CT, ST;
  for (const SnapFile &S : T.D.snaps())
    if (S.ProcessName == "client")
      CT = T.D.reconstruct(S);
  ST = T.D.reconstruct(SrvSnap);

  DistributedStitcher Stitcher;
  Stitcher.addTrace(CT);
  Stitcher.addTrace(ST);
  std::vector<std::string> Warnings;
  std::vector<LogicalThread> Logical = Stitcher.stitch(Warnings);
  ASSERT_EQ(Logical.size(), 1u);
  const LogicalThread &LT = Logical[0];
  ASSERT_GE(LT.Segments.size(), 3u)
      << "client prologue, server body, client epilogue";
  // Machine hop: first segment on alpha, a middle one on beta.
  EXPECT_EQ(LT.Segments.front().Trace->MachineName, "alpha");
  bool OnBeta = false;
  for (const LogicalSegment &Seg : LT.Segments)
    if (Seg.Trace->MachineName == "beta")
      OnBeta = true;
  EXPECT_TRUE(OnBeta);
  // Rendering mentions both machines.
  std::string View = renderLogicalThread(LT);
  EXPECT_NE(View.find("alpha"), std::string::npos);
  EXPECT_NE(View.find("beta"), std::string::npos);
}

TEST(DistributedTest, ClockSkewEstimatedFromSyncs) {
  const int64_t Skew = 250000;
  TwoMachines T(Skew);
  T.deployAll(OneShotClient, EchoServer);
  T.run();
  TracebackRuntime *SrvRT = T.D.runtimeFor(*T.Server, Technology::Native);
  SnapFile SrvSnap = SrvRT->takeSnap(SnapReason::External, 0);
  ReconstructedTrace CT, ST;
  for (const SnapFile &S : T.D.snaps())
    if (S.ProcessName == "client")
      CT = T.D.reconstruct(S);
  ST = T.D.reconstruct(SrvSnap);
  DistributedStitcher Stitcher;
  Stitcher.addTrace(CT);
  Stitcher.addTrace(ST);
  auto Offsets = Stitcher.estimateClockOffsets();
  ASSERT_EQ(Offsets.size(), 2u);
  // One runtime is the reference (offset 0); the other's offset must be
  // within RPC latency of the true skew.
  int64_t MaxOff = 0;
  for (auto &[Id, Off] : Offsets)
    MaxOff = std::max(MaxOff, std::abs(Off));
  EXPECT_NEAR(static_cast<double>(MaxOff), static_cast<double>(Skew),
              static_cast<double>(Skew) * 0.2 + 20000.0);
}

TEST(DistributedTest, CrossLanguageJniStyle) {
  // Managed module calls a native module in the same process; the two
  // runtimes' buffers must stitch into one logical thread.
  SingleProcess S;
  Module Native = compileOrDie(R"(
fn nativework(x) export {
  var y = x * 2;
  return y + 1;
}
)",
                               "nativemod", Technology::Native, "native.ml");
  Module Managed = compileOrDie(R"(
import nativework;
fn main() export {
  var r = nativework(20);
  print(r);
  snap(1);
}
)",
                                "managedmod", Technology::Managed,
                                "managed.ml");
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, Native, true, Error), nullptr) << Error;
  ASSERT_NE(S.D.deploy(*S.P, Managed, true, Error), nullptr) << Error;
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
  EXPECT_EQ(S.P->Output, "41\n");

  // The managed runtime snapped via the API; also snap the native side.
  TracebackRuntime *NativeRT = S.D.runtimeFor(*S.P, Technology::Native);
  TracebackRuntime *ManagedRT = S.D.runtimeFor(*S.P, Technology::Managed);
  ASSERT_NE(NativeRT, ManagedRT);
  SnapFile NativeSnap = NativeRT->takeSnap(SnapReason::External, 0);
  const SnapFile *ManagedSnap = nullptr;
  for (const SnapFile &Snap : S.D.snaps())
    if (Snap.Tech == Technology::Managed)
      ManagedSnap = &Snap;
  ASSERT_NE(ManagedSnap, nullptr);

  ReconstructedTrace MT = S.D.reconstruct(*ManagedSnap);
  ReconstructedTrace NT = S.D.reconstruct(NativeSnap);
  ASSERT_FALSE(MT.Threads.empty()) << "managed trace missing";
  ASSERT_FALSE(NT.Threads.empty()) << "native trace missing";

  DistributedStitcher Stitcher;
  Stitcher.addTrace(MT);
  Stitcher.addTrace(NT);
  std::vector<std::string> Warnings;
  std::vector<LogicalThread> Logical = Stitcher.stitch(Warnings);
  ASSERT_EQ(Logical.size(), 1u);
  // The fused view interleaves managed and native lines.
  std::string View = renderLogicalThread(Logical[0]);
  EXPECT_NE(View.find("managed.ml"), std::string::npos) << View;
  EXPECT_NE(View.find("native.ml"), std::string::npos) << View;
}

TEST(DistributedTest, GroupSnapAcrossMachines) {
  // A fault in the client must trigger a group snap of the server.
  TwoMachines T;
  T.deployAll(R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  rpc(40, arg, 8, rep);
  var p = 0;
  print(load(p));    // crash after the RPC
}
)",
              EchoServer);
  T.run();
  bool ClientCrashSnap = false, ServerPeerSnap = false;
  for (const SnapFile &S : T.D.snaps()) {
    if (S.ProcessName == "client" && (S.Reason == SnapReason::Exception ||
                                      S.Reason == SnapReason::Unhandled))
      ClientCrashSnap = true;
    if (S.ProcessName == "server" && S.Reason == SnapReason::GroupPeer)
      ServerPeerSnap = true;
  }
  EXPECT_TRUE(ClientCrashSnap);
  EXPECT_TRUE(ServerPeerSnap)
      << "service daemons must coordinate the group snap";
}

namespace {

/// Hand-builds one physical thread holding only SYNC records — the
/// minimal input estimateClockOffsets consumes, with every timestamp
/// under the test's control.
ThreadTrace
syncOnlyThread(uint64_t RuntimeId, const std::string &MachineName,
               std::vector<std::tuple<SyncKind, uint64_t, uint64_t>> Syncs) {
  ThreadTrace T;
  T.RuntimeId = RuntimeId;
  T.ThreadId = RuntimeId;
  T.ProcessName = "p";
  T.MachineName = MachineName;
  for (auto &[Kind, Seq, Ts] : Syncs) {
    TraceEvent E;
    E.EventKind = TraceEvent::Kind::Sync;
    E.Sync = Kind;
    E.LogicalThreadId = 7;
    E.Sequence = Seq;
    E.Timestamp = Ts;
    T.Events.push_back(E);
  }
  return T;
}

} // namespace

TEST(ClockOffsetTest, AsymmetricLatencyAveragesOut) {
  // One RPC between runtime 1 (reference) and runtime 2 whose clock runs
  // Skew ahead. Request latency and reply latency differ, so each leg's
  // sample is off by its own latency; NTP-style averaging cancels the
  // symmetric part and leaves Skew + (FwdLat - RevLat) / 2 exactly.
  const int64_t Skew = 50000, FwdLat = 400, RevLat = 100;
  ReconstructedTrace Client, Server;
  Client.Threads.push_back(syncOnlyThread(
      1, "alpha",
      {{SyncKind::CallSend, 1, 1000},
       {SyncKind::ReplyRecv, 4, static_cast<uint64_t>(1600 + RevLat)}}));
  Server.Threads.push_back(syncOnlyThread(
      2, "beta",
      {{SyncKind::CallRecv, 2, static_cast<uint64_t>(1000 + FwdLat + Skew)},
       {SyncKind::ReplySend, 3, static_cast<uint64_t>(1600 + Skew)}}));
  DistributedStitcher Stitcher;
  Stitcher.addTrace(Client);
  Stitcher.addTrace(Server);
  auto Offsets = Stitcher.estimateClockOffsets();
  ASSERT_EQ(Offsets.size(), 2u);
  EXPECT_EQ(Offsets.at(1), 0) << "first-seen runtime is the reference";
  EXPECT_EQ(Offsets.at(2), Skew + (FwdLat - RevLat) / 2);
}

TEST(ClockOffsetTest, SymmetricLatencyRecoversSkewExactly) {
  const int64_t Skew = 123456, Lat = 300;
  ReconstructedTrace Client, Server;
  Client.Threads.push_back(syncOnlyThread(
      1, "alpha",
      {{SyncKind::CallSend, 1, 5000},
       {SyncKind::ReplyRecv, 4, static_cast<uint64_t>(9000 + Lat)}}));
  Server.Threads.push_back(syncOnlyThread(
      2, "beta",
      {{SyncKind::CallRecv, 2, static_cast<uint64_t>(5000 + Lat + Skew)},
       {SyncKind::ReplySend, 3, static_cast<uint64_t>(9000 + Skew)}}));
  DistributedStitcher Stitcher;
  Stitcher.addTrace(Client);
  Stitcher.addTrace(Server);
  auto Offsets = Stitcher.estimateClockOffsets();
  ASSERT_EQ(Offsets.size(), 2u);
  EXPECT_EQ(Offsets.at(2), Skew);
}

TEST(ClockOffsetTest, RuntimeWithoutSyncEdgesIsAbsent) {
  // Runtime 3 recorded no SYNC pair with anyone: no sample can place its
  // clock, so it must be absent from the map rather than guessed at 0.
  ReconstructedTrace Client, Server, Loner;
  Client.Threads.push_back(syncOnlyThread(
      1, "alpha",
      {{SyncKind::CallSend, 1, 1000}, {SyncKind::ReplyRecv, 4, 2000}}));
  Server.Threads.push_back(syncOnlyThread(
      2, "beta",
      {{SyncKind::CallRecv, 2, 1500}, {SyncKind::ReplySend, 3, 1800}}));
  Loner.Threads.push_back(syncOnlyThread(3, "gamma", {}));
  DistributedStitcher Stitcher;
  Stitcher.addTrace(Client);
  Stitcher.addTrace(Server);
  Stitcher.addTrace(Loner);
  auto Offsets = Stitcher.estimateClockOffsets();
  EXPECT_EQ(Offsets.count(1), 1u);
  EXPECT_EQ(Offsets.count(2), 1u);
  EXPECT_EQ(Offsets.count(3), 0u)
      << "unreachable runtimes must not get a fabricated offset";
}

TEST(ClockOffsetTest, ZeroTimestampSamplesAreSkipped) {
  // A truncated ring can zero a SYNC timestamp; such a pair is unusable
  // and must not poison the estimate with a wild sample.
  const int64_t Skew = 7000;
  ReconstructedTrace Client, Server;
  Client.Threads.push_back(syncOnlyThread(
      1, "alpha",
      {{SyncKind::CallSend, 1, 0}, // Lost timestamp: pair unusable.
       {SyncKind::ReplyRecv, 4, 2000}}));
  Server.Threads.push_back(syncOnlyThread(
      2, "beta",
      {{SyncKind::CallRecv, 2, 999999},
       {SyncKind::ReplySend, 3, static_cast<uint64_t>(2000 + Skew)}}));
  DistributedStitcher Stitcher;
  Stitcher.addTrace(Client);
  Stitcher.addTrace(Server);
  auto Offsets = Stitcher.estimateClockOffsets();
  // Only the reply-leg sample survives: offset = t3 - t4 = Skew with the
  // (zero) reverse latency this hand-built pair encodes.
  ASSERT_EQ(Offsets.count(2), 1u);
  EXPECT_EQ(Offsets.at(2), Skew);
}

TEST(DistributedTest, MissingPeerProducesUpfrontAndGapWarnings) {
  // A partial group snap: the stitcher is told 'beta' is absent, and one
  // trace has a sequence gap (records that lived on the missing peer).
  ReconstructedTrace Partial;
  Partial.Threads.push_back(syncOnlyThread(
      1, "alpha",
      {{SyncKind::CallSend, 1, 1000}, {SyncKind::ReplyRecv, 4, 2000}}));
  DistributedStitcher Stitcher;
  Stitcher.addTrace(Partial);
  Stitcher.noteMissingPeer("beta");
  Stitcher.noteMissingPeer("beta"); // Duplicate names collapse.
  ASSERT_EQ(Stitcher.missingPeers().size(), 1u);
  std::vector<std::string> Warnings;
  (void)Stitcher.stitch(Warnings);
  ASSERT_GE(Warnings.size(), 2u);
  EXPECT_NE(Warnings[0].find("partial group snap"), std::string::npos);
  EXPECT_NE(Warnings[0].find("beta"), std::string::npos);
  // The seq 1 -> 4 gap is attributed to the missing peer.
  bool GapExplained = false;
  for (const std::string &W : Warnings)
    if (W.find("sequence gap") != std::string::npos &&
        W.find("a group-snap peer is missing") != std::string::npos)
      GapExplained = true;
  EXPECT_TRUE(GapExplained) << "gap warnings must mention the absent peer";
}

TEST(GoldenStitchTest, StitchedRenderMatchesFixture) {
  // The deterministic two-machine echo scenario, stitched and rendered.
  // Guards the SYNC matching, segment layout and rendering against drift;
  // regenerate deliberately with TRACEBACK_REGEN_GOLDEN=1 and review.
  const std::string Path =
      std::string(TB_TESTS_DIR) + "/golden/stitch_fixture.txt";

  TwoMachines T;
  T.deployAll(OneShotClient, EchoServer);
  if (::testing::Test::HasFatalFailure())
    return;
  T.run();
  ASSERT_EQ(T.Client->Output, "0\n40\n");
  TracebackRuntime *SrvRT = T.D.runtimeFor(*T.Server, Technology::Native);
  SnapFile SrvSnap = SrvRT->takeSnap(SnapReason::External, 0);
  ReconstructedTrace CT, ST;
  for (const SnapFile &S : T.D.snaps())
    if (S.ProcessName == "client")
      CT = T.D.reconstruct(S);
  ST = T.D.reconstruct(SrvSnap);
  DistributedStitcher Stitcher;
  Stitcher.addTrace(CT);
  Stitcher.addTrace(ST);
  std::vector<std::string> Warnings;
  std::string Rendered;
  for (const LogicalThread &LT : Stitcher.stitch(Warnings))
    Rendered += renderLogicalThread(LT);
  for (const std::string &W : Warnings)
    Rendered += "warning: " + W + "\n";
  ASSERT_FALSE(Rendered.empty());

  if (std::getenv("TRACEBACK_REGEN_GOLDEN")) {
    ASSERT_TRUE(writeFileText(Path, Rendered)) << Path;
    GTEST_SKIP() << "regenerated golden stitch fixture " << Path;
  }
  std::string Expected;
  ASSERT_TRUE(readFileText(Path, Expected))
      << "missing fixture " << Path
      << " — regenerate with TRACEBACK_REGEN_GOLDEN=1";
  EXPECT_EQ(Rendered, Expected)
      << "stitched rendering drifted from the golden fixture";
}

TEST(DistributedTest, HangDetectionViaHeartbeat) {
  SingleProcess S;
  Module M = compileOrDie(R"(
fn main() export {
  lock(1);
  var t = spawn(addr_of(other), 0);
  sleep(100);
  lock(2);
}
fn other(x) {
  lock(2);
  sleep(2000);
  lock(1);
  return 0;
}
)");
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, M, true, Error), nullptr) << Error;
  S.P->start("main");
  World::RunResult R = S.D.world().run(5'000'000);
  EXPECT_EQ(R, World::RunResult::Idle) << "deadlock expected";
  ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
  ASSERT_NE(Daemon, nullptr);
  Daemon->sampleHeartbeats();
  // No progress is possible; the daemon flags the process as hung.
  EXPECT_EQ(Daemon->detectHangs().size(), 1u);
  EXPECT_EQ(Daemon->snapHungProcesses(), 1u);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().back();
  EXPECT_EQ(Snap.Reason, SnapReason::Hang);
  // Fault view: one line per thread.
  ReconstructedTrace T = S.D.reconstruct(Snap);
  std::string View = renderFaultView(Snap, T);
  EXPECT_NE(View.find("hang"), std::string::npos);
  EXPECT_NE(View.find("thread 1"), std::string::npos);
  EXPECT_NE(View.find("thread 2"), std::string::npos);
}

// ----------------------------------------------------------------------------
// Triage: the MISSING-PEER marker of a partial group snap must normalize
// to one signature no matter which peer the partition cut off.
// ----------------------------------------------------------------------------

namespace {

/// Runs the partitioned group-snap scenario over the real network
/// transport with the absent peer's identity (machine name, OS, machine
/// id, clock skew) varied, and returns the MISSING-PEER marker the
/// client-side daemon emitted when its GroupSnapRequest went unanswered.
SnapFile partitionedGroupSnapMarker(const char *PeerName, const char *PeerOs,
                                    bool ExtraMachine, int64_t PeerSkew) {
  Deployment D;
  Machine *MA = D.addMachine("alpha", "winnt");
  if (ExtraMachine)
    D.addMachine("filler", "linux"); // Shifts the peer's machine id.
  Machine *MB = D.addMachine(PeerName, PeerOs, PeerSkew);
  D.enableNetworkTransport();
  Process *Client = MA->createProcess("client");
  Process *Server = MB->createProcess("server");
  Module CM = compileOrDie(OneShotClient, "climod", Technology::Native,
                           "client.ml");
  Module SM = compileOrDie(EchoServer, "srvmod", Technology::Native,
                           "server.ml");
  std::string Error;
  EXPECT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
  EXPECT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
  // Cut only the snap-transport fabric; guest RPC rides its own plane,
  // so the client still completes its call before snapping.
  D.world().netSetPartitioned(MA->Id, MB->Id, true);
  Server->start("main");
  for (int I = 0; I < 10; ++I)
    D.world().stepSlice();
  Client->start("main");
  while (!Client->Exited && D.world().cycles() < 50'000'000)
    D.world().stepSlice();
  EXPECT_TRUE(Client->Exited);
  EXPECT_TRUE(D.pumpNetwork()) << "a partition must degrade, not hang";
  for (const SnapFile &S : D.snaps())
    if (S.Reason == SnapReason::MissingPeer)
      return S;
  ADD_FAILURE() << "no MISSING-PEER marker emitted for absent peer "
                << PeerName;
  return SnapFile();
}

} // namespace

TEST(DistributedTest, MissingPeerSignatureStableAcrossPeers) {
  // Two partial group snaps, each missing a *different* peer: distinct
  // machine name, OS, machine id and clock skew. Triage must fold both
  // into one signature — "a peer was missing from the group snap" is the
  // fault; which peer is incident detail, or every partition would open
  // a fresh cluster per absent machine.
  SnapFile A = partitionedGroupSnapMarker("beta", "solaris",
                                          /*ExtraMachine=*/false, 100000);
  SnapFile B = partitionedGroupSnapMarker("gamma", "linux",
                                          /*ExtraMachine=*/true, 250000);
  ASSERT_EQ(A.Reason, SnapReason::MissingPeer);
  ASSERT_EQ(B.Reason, SnapReason::MissingPeer);
  ASSERT_NE(A.MachineName, B.MachineName);
  ASSERT_NE(A.ReasonDetail, B.ReasonDetail)
      << "the scenario must vary the absent peer's machine id";

  FaultSignature SA = extractSignature(A);
  FaultSignature SB = extractSignature(B);
  EXPECT_EQ(SA, SB)
      << "marker signatures must not depend on which peer was absent";
  EXPECT_EQ(SA.fingerprint(), SB.fingerprint());
  EXPECT_EQ(SA.canonicalText(), SB.canonicalText());
  EXPECT_EQ(SA.Kind, "missing-peer");
  EXPECT_EQ(SA.Markers, std::vector<std::string>{"missing-peer"});
  EXPECT_TRUE(SA.Path.empty()) << "marker snaps carry no trace buffers";
}
