//===- tests/test_property.cpp - Randomized pipeline properties -----------===//
//
// Part of the TraceBack reproduction project.
//
// The two invariants that make TraceBack trustworthy, checked over a
// parameterized sweep of randomly generated programs:
//  1. Semantic transparency: instrumented output == original output.
//  2. Trace fidelity: the reconstructed line sequence is a suffix of the
//     VM's ground-truth line log, under clean snaps and crashes alike.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

/// Deterministic random structured program generator. Programs use only
/// defined arithmetic (guarded / and %), always terminate (bounded loops)
/// and optionally end with a deliberate crash.
class ProgramGen {
public:
  ProgramGen(uint64_t Seed, bool CrashAtEnd)
      : Rand(Seed), CrashAtEnd(CrashAtEnd) {}

  std::string generate() {
    std::string S;
    int Helpers = 1 + static_cast<int>(Rand.below(3));
    for (int I = 0; I < Helpers; ++I) {
      S += "fn helper" + std::to_string(I) + "(a, b) {\n";
      S += "var x = a;\nvar y = b + 1;\n";
      S += body(2, I);
      S += "return x + y;\n}\n";
    }
    S += "fn main() export {\nvar x = 11;\nvar y = 5;\n";
    S += body(0, Helpers);
    if (CrashAtEnd) {
      switch (Rand.below(3)) {
      case 0:
        S += "var bad = 0;\nx = load(bad);\n";
        break;
      case 1:
        S += "var zero = y - y;\nx = x / zero;\n";
        break;
      case 2:
        S += "throw 13;\n";
        break;
      }
    } else {
      S += "snap(1);\n";
    }
    S += "print(x + y);\n}\n";
    return S;
  }

private:
  std::string body(int Depth, int MaxHelper) {
    std::string S;
    int N = 1 + static_cast<int>(Rand.below(4));
    for (int I = 0; I < N; ++I) {
      switch (Rand.below(Depth >= 2 ? 3 : 6)) {
      case 0:
        S += "x = x + y * " + std::to_string(1 + Rand.below(5)) + ";\n";
        break;
      case 1:
        S += "y = (y * 3 + x) % 1000003;\n";
        break;
      case 2:
        S += "x = x - (y & 255);\n";
        break;
      case 3:
        S += "if (x % " + std::to_string(2 + Rand.below(4)) +
             " == 0) {\n" + body(Depth + 1, MaxHelper) + "} else {\n" +
             body(Depth + 1, MaxHelper) + "}\n";
        break;
      case 4: {
        std::string Var = "i" + std::to_string(LoopCounter++);
        S += "for (var " + Var + " = 0; " + Var + " < " +
             std::to_string(2 + Rand.below(8)) + "; " + Var + " = " + Var +
             " + 1) {\n" + body(Depth + 1, MaxHelper) + "}\n";
        break;
      }
      case 5:
        if (MaxHelper > 0)
          S += "x = x + helper" +
               std::to_string(Rand.below(static_cast<uint64_t>(MaxHelper))) +
               "(x % 97, y % 31);\n";
        break;
      }
    }
    return S;
  }

  Rng Rand;
  bool CrashAtEnd;
  int LoopCounter = 0;
};

struct Params {
  uint64_t Seed;
  bool Crash;
  bool Managed;
};

class PipelineProperty : public ::testing::TestWithParam<Params> {};

} // namespace

TEST_P(PipelineProperty, TransparencyAndFidelity) {
  const Params &P = GetParam();
  ProgramGen GenA(P.Seed, P.Crash);
  std::string Source = GenA.generate();
  Technology Tech = P.Managed ? Technology::Managed : Technology::Native;
  Module M = compileOrDie(Source, "prog", Tech);

  // 1. Transparency.
  SingleProcess Plain;
  World::RunResult PlainResult = Plain.runModule(M, false);
  SingleProcess Traced{/*WithOracle=*/true};
  World::RunResult TracedResult = Traced.runModule(M, true);
  EXPECT_EQ(PlainResult, TracedResult) << Source;
  EXPECT_EQ(Plain.P->Output, Traced.P->Output) << Source;
  EXPECT_EQ(Plain.P->ExitCode, Traced.P->ExitCode) << Source;
  EXPECT_EQ(Plain.P->LastFault.Code, Traced.P->LastFault.Code) << Source;

  // 2. Fidelity.
  ASSERT_FALSE(Traced.D.snaps().empty()) << Source;
  ReconstructedTrace T = Traced.D.reconstruct(Traced.D.snaps().back());
  const ThreadTrace *Main = T.threadById(1);
  ASSERT_NE(Main, nullptr) << Source;
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(Traced.Oracle, 1);
  ASSERT_FALSE(Got.empty()) << Source;
  if (P.Crash) {
    EXPECT_TRUE(isSuffixOf(Got, Want))
        << Source << "\ngot tail: "
        << ::testing::PrintToString(std::vector<std::string>(
               Got.end() - std::min<size_t>(Got.size(), 10), Got.end()))
        << "\nwant tail: "
        << ::testing::PrintToString(std::vector<std::string>(
               Want.end() - std::min<size_t>(Want.size(), 10), Want.end()));
  } else {
    // Clean snap: trace stops at the snap; lines after it (the final
    // print) are not in the trace. Got must be a contiguous run of Want
    // ending within a few lines of its end.
    auto It = std::search(Want.begin(), Want.end(), Got.begin(), Got.end());
    ASSERT_NE(It, Want.end()) << Source;
    EXPECT_LE(static_cast<size_t>(Want.end() - It), Got.size() + 4)
        << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, PipelineProperty,
    ::testing::Values(
        Params{1001, false, false}, Params{1002, false, false},
        Params{1003, false, false}, Params{1004, false, false},
        Params{1005, false, false}, Params{1006, false, false},
        Params{1007, false, false}, Params{1008, false, false},
        Params{2001, true, false}, Params{2002, true, false},
        Params{2003, true, false}, Params{2004, true, false},
        Params{2005, true, false}, Params{2006, true, false},
        Params{2007, true, false}, Params{2008, true, false},
        Params{2009, true, false}, Params{2010, true, false},
        Params{2011, true, false}, Params{2012, true, false},
        Params{3001, false, true}, Params{3002, false, true},
        Params{3003, false, true}, Params{3004, true, true},
        Params{3005, true, true}, Params{3006, true, true},
        Params{3007, true, true}, Params{3008, false, true}),
    [](const ::testing::TestParamInfo<Params> &Info) {
      std::string Name = "seed" + std::to_string(Info.param.Seed);
      Name += Info.param.Crash ? "_crash" : "_clean";
      Name += Info.param.Managed ? "_managed" : "_native";
      return Name;
    });

// Path-bit budget sweep: tiling + fidelity hold for every budget.
class BitBudgetProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitBudgetProperty, FidelityUnderBudget) {
  unsigned Bits = GetParam();
  ProgramGen Gen(4242, /*CrashAtEnd=*/true);
  std::string Source = Gen.generate();
  Module M = compileOrDie(Source, "prog");
  SingleProcess Traced{/*WithOracle=*/true};
  InstrumentOptions Opts;
  Opts.Tile.PathBits = Bits;
  std::string Error;
  ASSERT_NE(Traced.D.deploy(*Traced.P, M, true, Opts, Error), nullptr)
      << Error;
  Traced.P->start("main");
  Traced.D.world().run();
  ASSERT_FALSE(Traced.D.snaps().empty());
  ReconstructedTrace T = Traced.D.reconstruct(Traced.D.snaps().back());
  const ThreadTrace *Main = T.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(Traced.Oracle, 1);
  EXPECT_TRUE(isSuffixOf(Got, Want)) << "bits=" << Bits;
}

INSTANTIATE_TEST_SUITE_P(Budgets, BitBudgetProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 10u));

// Tiny-buffer fidelity: with buffers small enough to lap many times, the
// reconstructed history must still be an exact suffix of reality.
class TinyBufferProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TinyBufferProperty, SuffixSurvivesRingWrap) {
  uint32_t BufBytes = GetParam();
  ProgramGen Gen(777, /*CrashAtEnd=*/true);
  std::string Source = Gen.generate();
  Module M = compileOrDie(Source, "prog");
  SingleProcess Traced{/*WithOracle=*/true};
  Traced.D.Policy.BufferBytes = BufBytes;
  std::string Error;
  ASSERT_NE(Traced.D.deploy(*Traced.P, M, true, Error), nullptr) << Error;
  Traced.P->start("main");
  Traced.D.world().run();
  ASSERT_FALSE(Traced.D.snaps().empty());
  ReconstructedTrace T = Traced.D.reconstruct(Traced.D.snaps().back());
  const ThreadTrace *Main = T.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(Traced.Oracle, 1);
  ASSERT_FALSE(Got.empty());
  // Seam repair may drop a handful of events at the OLD end; tolerate by
  // trimming the head of Got, never its tail.
  bool Ok = false;
  for (size_t Skip = 0; Skip <= 8 && !Ok; ++Skip) {
    if (Got.size() <= Skip)
      break;
    std::vector<std::string> G(Got.begin() + Skip, Got.end());
    Ok = isSuffixOf(G, Want);
  }
  EXPECT_TRUE(Ok) << "buffer bytes " << BufBytes;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TinyBufferProperty,
                         ::testing::Values(512u, 1024u, 2048u, 8192u));

// Multi-module programs: the crash is in a second (imported) module.
TEST(PipelineProperty, CrossModuleCrashFidelity) {
  const char *LibSrc = R"(
fn unstable(x) export {
  var y = x * 3;
  if (y > 50) {
    var p = 0;
    y = load(p);
  }
  return y;
}
)";
  const char *AppSrc = R"(
import unstable;
fn main() export {
  var acc = 0;
  for (var i = 0; i < 40; i = i + 1) {
    acc = acc + unstable(i);
  }
  print(acc);
}
)";
  SingleProcess S{/*WithOracle=*/true};
  Module Lib = compileOrDie(LibSrc, "libunstable", Technology::Native,
                            "lib.ml");
  Module App = compileOrDie(AppSrc, "app", Technology::Native, "app.ml");
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, Lib, true, Error), nullptr) << Error;
  ASSERT_NE(S.D.deploy(*S.P, App, true, Error), nullptr) << Error;
  S.P->start("main");
  S.D.world().run();
  ASSERT_FALSE(S.D.snaps().empty());
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  const ThreadTrace *Main = T.threadById(1);
  ASSERT_NE(Main, nullptr);
  std::vector<std::string> Got = lineSequence(*Main);
  std::vector<std::string> Want = oracleSequence(S.Oracle, 1);
  EXPECT_TRUE(isSuffixOf(Got, Want)) << ::testing::PrintToString(Got);
  // The fault line lives in lib.ml.
  ASSERT_FALSE(Got.empty());
  EXPECT_NE(Got.back().find("lib.ml"), std::string::npos);
}

// Fuzz-lite: random corruption of serialized artifacts must never crash
// the parsers, and random corruption of buffer words must never crash
// reconstruction.
TEST(RobustnessProperty, CorruptSnapBytesNeverCrash) {
  SingleProcess S;
  Module M = compileOrDie(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 50; i = i + 1) { s = s + i; }
  snap(1);
}
)");
  S.runModule(M, true);
  std::vector<uint8_t> Bytes = S.D.snaps().back().serialize();
  Rng Rand(99);
  for (int Case = 0; Case < 200; ++Case) {
    std::vector<uint8_t> Fuzzed = Bytes;
    int Flips = 1 + static_cast<int>(Rand.below(8));
    for (int I = 0; I < Flips; ++I)
      Fuzzed[Rand.below(Fuzzed.size())] ^=
          static_cast<uint8_t>(1 + Rand.below(255));
    SnapFile Out;
    (void)SnapFile::deserialize(Fuzzed, Out); // Must not crash/hang.
    // Truncations too.
    Fuzzed.resize(Rand.below(Fuzzed.size() + 1));
    (void)SnapFile::deserialize(Fuzzed, Out);
  }
  SUCCEED();
}

TEST(RobustnessProperty, CorruptBufferWordsReconstructSafely) {
  SingleProcess S;
  Module M = compileOrDie(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 200; i = i + 1) {
    if (i & 1) { s = s + i; } else { s = s ^ 3; }
  }
  snap(1);
}
)");
  S.runModule(M, true);
  SnapFile Snap = S.D.snaps().back();
  Rng Rand(1234);
  for (int Case = 0; Case < 100; ++Case) {
    SnapFile Fuzzed = Snap;
    for (SnapBufferImage &B : Fuzzed.Buffers) {
      if (B.Raw.empty())
        continue;
      int Stomps = 1 + static_cast<int>(Rand.below(6));
      for (int I = 0; I < Stomps; ++I) {
        size_t W = Rand.below(B.Raw.size() / 4) * 4;
        for (int J = 0; J < 4; ++J)
          B.Raw[W + J] = static_cast<uint8_t>(Rand.next());
      }
    }
    ReconstructedTrace T = S.D.reconstruct(Fuzzed); // Must not crash.
    (void)T;
  }
  SUCCEED();
}

TEST(RobustnessProperty, CorruptMapfileBytesNeverCrash) {
  SingleProcess S;
  Module M = compileOrDie("fn main() export { print(1); }");
  std::string Error;
  Module Instr;
  ASSERT_TRUE(S.D.instrumentOnly(M, InstrumentOptions(), Instr, Error));
  ASSERT_EQ(S.D.maps().all().size(), 1u);
  std::vector<uint8_t> Bytes = S.D.maps().all()[0].serialize();
  Rng Rand(5);
  for (int Case = 0; Case < 200; ++Case) {
    std::vector<uint8_t> Fuzzed = Bytes;
    Fuzzed[Rand.below(Fuzzed.size())] ^=
        static_cast<uint8_t>(1 + Rand.below(255));
    MapFile Out;
    (void)MapFile::deserialize(Fuzzed, Out);
  }
  SUCCEED();
}
