//===- tests/test_lang.cpp - MiniLang compiler tests ----------------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
std::string runAndGetOutput(const std::string &Source) {
  SingleProcess S;
  Module M = compileOrDie(Source);
  EXPECT_EQ(S.runModule(M, /*Instrument=*/false),
            World::RunResult::AllExited);
  return S.P->Output;
}
} // namespace

TEST(LangTest, ArithmeticPrecedence) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  print(2 + 3 * 4);
  print((2 + 3) * 4);
  print(10 / 3);
  print(10 % 3);
  print(1 << 5);
  print(100 >> 2);
  print(-7);
  print(!0);
  print(!5);
}
)"),
            "14\n20\n3\n1\n32\n25\n-7\n1\n0\n");
}

TEST(LangTest, ComparisonsAndLogic) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  print(3 < 4);
  print(4 <= 3);
  print(5 > 1);
  print(5 >= 6);
  print(5 == 5);
  print(5 != 5);
  print(1 && 2);
  print(0 && 2);
  print(0 || 3);
  print(0 || 0);
}
)"),
            "1\n0\n1\n0\n1\n0\n1\n0\n1\n0\n");
}

TEST(LangTest, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(runAndGetOutput(R"(
fn touch() {
  print(777);
  return 1;
}
fn main() export {
  var a = 0 && touch();
  var b = 1 || touch();
  print(a + b);
}
)"),
            "1\n")
      << "touch() must never run";
}

TEST(LangTest, ControlFlow) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  var sum = 0;
  for (var i = 1; i <= 10; i = i + 1) {
    sum = sum + i;
  }
  print(sum);
  var n = 27;
  var steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  print(steps);
}
)"),
            "55\n111\n");
}

TEST(LangTest, FunctionsAndRecursion) {
  EXPECT_EQ(runAndGetOutput(R"(
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() export {
  print(fib(15));
}
)"),
            "610\n");
}

TEST(LangTest, ArraysViaAlloc) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  var a = alloc(80);
  for (var i = 0; i < 10; i = i + 1) {
    a[i] = i * i;
  }
  var sum = 0;
  for (var j = 0; j < 10; j = j + 1) {
    sum = sum + a[j];
  }
  print(sum);
}
)"),
            "285\n");
}

TEST(LangTest, StringsAndBytes) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  prints("hi there\n");
  var s = "abc";
  print(loadb(s));
  print(loadb(s + 1));
  storeb(s, 122);
  prints(s);
}
)"),
            "hi there\n97\n98\nzbc");
}

TEST(LangTest, ThrowAndCatch) {
  EXPECT_EQ(runAndGetOutput(R"(
fn risky(x) {
  if (x > 2) { throw 9; }
  return x;
}
fn main() export {
  var got = 0;
  try {
    got = risky(1);
    got = got + risky(5);
    print(12345);
  } catch {
    print(got);
  }
  print(got + 1);
}
)"),
            "1\n2\n")
      << "catch must see side effects before the throw";
}

TEST(LangTest, NestedTryInnermostWins) {
  EXPECT_EQ(runAndGetOutput(R"(
fn main() export {
  try {
    try {
      throw 3;
    } catch {
      print(1);
    }
    print(2);
  } catch {
    print(99);
  }
}
)"),
            "1\n2\n");
}

TEST(LangTest, FunctionPointers) {
  EXPECT_EQ(runAndGetOutput(R"(
fn add(a, b) { return a + b; }
fn mul(a, b) { return a * b; }
fn apply(f, a, b) { return callptr(f, a, b); }
fn main() export {
  print(apply(addr_of(add), 3, 4));
  print(apply(addr_of(mul), 3, 4));
}
)"),
            "7\n12\n");
}

TEST(LangTest, ThreadsFromLanguage) {
  EXPECT_EQ(runAndGetOutput(R"(
fn worker(buf) {
  lock(1);
  store(buf, load(buf) + 100);
  unlock(1);
  return 0;
}
fn main() export {
  var buf = alloc(8);
  store(buf, 5);
  var t1 = spawn(addr_of(worker), buf);
  var t2 = spawn(addr_of(worker), buf);
  join(t1);
  join(t2);
  print(load(buf));
}
)"),
            "205\n");
}

TEST(LangTest, ImportsCallNativeModule) {
  SingleProcess S;
  std::string Error;
  ASSERT_NE(S.D.deploy(*S.P, buildLibTbc(), /*Instrument=*/false, Error),
            nullptr)
      << Error;
  Module App = compileOrDie(R"(
import strlen;
fn main() export {
  print(strlen("four"));
}
)");
  ASSERT_NE(S.D.deploy(*S.P, App, /*Instrument=*/false, Error), nullptr)
      << Error;
  S.P->start("main");
  EXPECT_EQ(S.D.world().run(), World::RunResult::AllExited);
  EXPECT_EQ(S.P->Output, "4\n");
}

TEST(LangTest, ParseErrors) {
  minilang::Program Prog;
  std::string Error;
  EXPECT_FALSE(minilang::parseProgram("fn main( {", "x.ml", Prog, Error));
  EXPECT_NE(Error.find("x.ml:1"), std::string::npos);
  EXPECT_FALSE(minilang::parseProgram("fn f() { var 1 = 2; }", "x.ml",
                                      Prog, Error));
  EXPECT_FALSE(
      minilang::parseProgram("fn f() { throw x; }", "x.ml", Prog, Error));
  EXPECT_FALSE(minilang::parseProgram("fn f(a,b,c,d,e) {}", "x.ml", Prog,
                                      Error))
      << "more than 4 parameters";
}

TEST(LangTest, CodegenErrors) {
  Module M;
  std::string Error;
  EXPECT_FALSE(minilang::compileMiniLang("fn f() { return nope; }", "x.ml",
                                         "m", Technology::Native, M, Error));
  EXPECT_NE(Error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(minilang::compileMiniLang("fn f() { ghost(1); }", "x.ml",
                                         "m", Technology::Native, M, Error));
  EXPECT_NE(Error.find("unknown function"), std::string::npos);
}

TEST(LangTest, LineTableTracksStatements) {
  Module M = compileOrDie(R"(
fn main() export {
  var a = 1;
  var b = 2;
  print(a + b);
}
)");
  // Lines 3, 4, 5 must appear in the line table.
  std::set<uint32_t> Seen;
  for (const LineEntry &L : M.Lines)
    Seen.insert(L.Line);
  EXPECT_TRUE(Seen.count(3));
  EXPECT_TRUE(Seen.count(4));
  EXPECT_TRUE(Seen.count(5));
}
