//===- tests/test_crash_consistency.cpp - Survivability property ----------===//
//
// Part of the TraceBack reproduction project.
//
// The paper's central survivability claim (sections 3.1-3.2), checked
// mechanically: whatever slice a process is killed at, the trace recovered
// from the surviving buffers is a PREFIX of the fault-free golden trace.
// Because the VM and the injector are both deterministic, every seed below
// is replayable: TRACEBACK_TEST_SEED=<seed> reruns the exact failure.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "replay/Recorder.h"
#include "replay/ReplayDriver.h"
#include "triage/Clusterer.h"
#include "vm/FaultInjector.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {

/// Bounded workload with a multi-line loop body (so repeat-collapsing in
/// reconstruction matches the transition-based oracle) and default-size
/// buffers (no ring wrap: recovery yields a true prefix, not a window).
const char *SweepWorkload = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 300) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  print(x);
}
)";

const char *TwoThreadWorkload = R"(
fn worker(a) {
  var x = a;
  var j = 0;
  while (j < 400) {
    x = x * 5 + 3;
    x = x % 999983;
    j = j + 1;
    yield();
  }
  return x;
}
fn main() export {
  spawn(addr_of(worker), 1);
  var i = 0;
  var y = 2;
  while (i < 300) {
    y = y * 7 + 1;
    y = y % 1000033;
    i = i + 1;
    yield();
  }
  print(y);
}
)";

const char *SnapAtEndWorkload = R"(
fn main() export {
  var x = 1;
  var i = 0;
  while (i < 200) {
    x = x * 3 + 1;
    x = x % 1000003;
    i = i + 1;
    yield();
  }
  snap(1);
  print(x);
}
)";

/// True if, after dropping at most \p Slack trailing entries, \p Got is an
/// exact elementwise prefix of \p Golden. The slack is confined to the
/// final partial DAG record (the tile the fault interrupted).
bool isPrefixWithSlack(const std::vector<std::string> &Got,
                       const std::vector<std::string> &Golden,
                       size_t Slack = 12) {
  for (size_t Drop = 0; Drop <= Slack && Drop <= Got.size(); ++Drop) {
    size_t N = Got.size() - Drop;
    if (N <= Golden.size() &&
        std::equal(Got.begin(), Got.begin() + N, Golden.begin()))
      return true;
  }
  return false;
}

/// Fault-free run: golden per-thread line sequences + total slice count.
struct GoldenRun {
  std::vector<Process::OracleEvent> Oracle;
  uint64_t TotalSlices = 0;

  explicit GoldenRun(const char *Source) {
    SingleProcess S{/*WithOracle=*/true};
    EXPECT_EQ(S.runModule(compileOrDie(Source), /*Instrument=*/true),
              World::RunResult::AllExited);
    Oracle = std::move(S.Oracle);
    TotalSlices = S.D.world().slices();
  }

  std::vector<std::string> lines(uint64_t Tid) const {
    return oracleSequence(Oracle, Tid);
  }
};

} // namespace

// ----------------------------------------------------------------------------
// The headline property: 200-seed kill -9 sweep.
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, KillSweepRecoversGoldenPrefix) {
  GoldenRun Golden(SweepWorkload);
  std::vector<std::string> Want = Golden.lines(1);
  ASSERT_GT(Want.size(), 100u);
  ASSERT_GT(Golden.TotalSlices, 10u);

  Rng Seeds(testSeed());
  const int NumSeeds = 200;
  int Recovered = 0;
  for (int Run = 0; Run < NumSeeds; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Events.push_back(
        {FaultKind::KillProcess, 1 + R.below(Golden.TotalSlices - 1), 0});

    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    ServiceDaemon *Daemon = S.D.daemonFor(*S.M);
    ASSERT_NE(Daemon, nullptr);
    // Half the sweep ingests through the sharded async queue
    // (collectPostMortem drains it before returning), so the kill points
    // also cover the queued-delivery path.
    if (Run % 2) {
      ServiceDaemon::IngestOptions IO;
      IO.Async = true;
      Daemon->configureIngest(IO);
    }
    S.runModule(compileOrDie(SweepWorkload), /*Instrument=*/true);
    ASSERT_TRUE(S.P->HardKilled)
        << "seed " << Seed << ": kill at slice "
        << Plan.Events[0].Trigger << " did not land";

    // Post-mortem collection from the dead image, then a full v4 wire
    // round trip before reconstruction: every kill point also proves the
    // compressed snap format preserves whatever survived.
    auto PM = Daemon->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u) << "seed " << Seed;
    std::vector<uint8_t> Wire = PM[0]->serialize();
    SnapFile Decoded;
    ASSERT_TRUE(SnapFile::deserialize(Wire, Decoded)) << "seed " << Seed;
    ReconstructedTrace Trace = S.D.reconstruct(Decoded);
    const ThreadTrace *Main = Trace.threadById(1);
    if (!Main)
      continue; // Killed before anything was committed — acceptable loss.
    std::vector<std::string> Got = lineSequence(*Main);
    if (Got.empty())
      continue;
    ++Recovered;
    ASSERT_TRUE(isPrefixWithSlack(Got, Want))
        << "seed " << Seed << " (kill slice " << Plan.Events[0].Trigger
        << "): recovered " << Got.size()
        << " lines are not a golden prefix — replay with "
           "TRACEBACK_TEST_SEED";
  }
  // Most kills land after the first records were written.
  EXPECT_GT(Recovered, NumSeeds / 2)
      << "sweep recovered suspiciously few traces";
}

TEST(CrashConsistencyTest, MultiThreadedKillSweep) {
  GoldenRun Golden(TwoThreadWorkload);
  std::vector<std::string> WantMain = Golden.lines(1);
  std::vector<std::string> WantWorker = Golden.lines(2);
  ASSERT_GT(WantMain.size(), 50u);
  ASSERT_GT(WantWorker.size(), 50u);

  Rng Seeds(testSeed() ^ 0x2222);
  int Recovered = 0;
  for (int Run = 0; Run < 20; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Events.push_back(
        {FaultKind::KillProcess, 1 + R.below(Golden.TotalSlices - 1), 0});

    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(TwoThreadWorkload), /*Instrument=*/true);
    ASSERT_TRUE(S.P->HardKilled) << "seed " << Seed;
    auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u);
    ReconstructedTrace Trace = S.D.reconstruct(*PM[0]);
    // EVERY recovered thread must be prefix-consistent with its golden.
    for (const ThreadTrace &T : Trace.Threads) {
      std::vector<std::string> Got = lineSequence(T);
      if (Got.empty())
        continue;
      ++Recovered;
      const std::vector<std::string> &Want =
          T.ThreadId == 1 ? WantMain : WantWorker;
      ASSERT_TRUE(isPrefixWithSlack(Got, Want))
          << "seed " << Seed << " thread " << T.ThreadId;
    }
  }
  EXPECT_GT(Recovered, 10);
}

// ----------------------------------------------------------------------------
// Torn-write sweep: a zeroed word costs the tail, never the prefix.
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, TornWriteSweepKeepsPrefix) {
  GoldenRun Golden(SnapAtEndWorkload);
  std::vector<std::string> Want = Golden.lines(1);
  ASSERT_GT(Want.size(), 50u);

  Rng Seeds(testSeed() ^ 0x3333);
  int Fired = 0;
  for (int Run = 0; Run < 20; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    // Mode 0 (whole word zeroed), paired with death at the same slice:
    // the paper's torn write is an in-flight store cut short *by* the
    // crash, so nothing may touch the zeroed word afterwards. (A tear the
    // process survives can later be OR-ed by a lightweight probe into a
    // junk word — a gap, not a tail loss; that shape is covered by the
    // graceful-degradation test, not the prefix property.)
    uint64_t At = 1 + R.below(Golden.TotalSlices - 1);
    Plan.Events.push_back({FaultKind::TornWrite, At, 0});
    Plan.Events.push_back({FaultKind::KillProcess, At, 0});

    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SnapAtEndWorkload), true);
    if (!FI.allFired())
      continue; // Tear found no record to hit before the kill landed.
    ++Fired;
    ASSERT_TRUE(S.P->HardKilled) << "seed " << Seed;
    auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u);
    ReconstructedTrace Trace = S.D.reconstruct(*PM.front());
    const ThreadTrace *Main = Trace.threadById(1);
    if (!Main)
      continue;
    ASSERT_TRUE(isPrefixWithSlack(lineSequence(*Main), Want))
        << "seed " << Seed << ": torn write must only cost the tail";
  }
  EXPECT_GT(Fired, 10);
}

// ----------------------------------------------------------------------------
// Snap-file byte corruption: deserialization + reconstruction never crash.
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, CorruptedSnapBytesNeverCrash) {
  SingleProcess S;
  ASSERT_EQ(S.runModule(compileOrDie(SnapAtEndWorkload), true),
            World::RunResult::AllExited);
  ASSERT_FALSE(S.D.snaps().empty());
  std::vector<uint8_t> Pristine = S.D.snaps().front().serialize();
  ASSERT_FALSE(Pristine.empty());

  Rng Seeds(testSeed() ^ 0x4444);
  int Survived = 0;
  for (int Run = 0; Run < 50; ++Run) {
    uint64_t Seed = Seeds.next();
    std::vector<uint8_t> Bytes = Pristine;
    FaultInjector::corruptSnapBytes(Bytes, Seed, /*ByteFlips=*/1 + Run % 32,
                                    /*Truncate=*/(Run % 3) == 0);
    SnapFile Out;
    if (!SnapFile::deserialize(Bytes, Out))
      continue; // Rejected: fine, as long as it did not crash.
    ++Survived;
    // Accepted: reconstruction must degrade gracefully too.
    ReconstructedTrace Trace = S.D.reconstruct(Out);
    (void)Trace;
  }
  // Not all corruptions are detectable; some must flow through the full
  // reconstruction path to prove graceful degradation. Nothing to assert
  // on Survived: either outcome is correct if we got here without dying.
  SUCCEED() << Survived << "/50 corrupted snaps deserialized";
}

// ----------------------------------------------------------------------------
// One seed per fault class, all in the chaos label (acceptance criteria).
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, EveryFaultClassFiresAtLeastOnce) {
  uint64_t Base = testSeed() ^ 0x5555;
  size_t ClassesFired = 0;

  // Process kill.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 1;
    Plan.Events.push_back({FaultKind::KillProcess, 100, 0});
    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SweepWorkload), true);
    EXPECT_TRUE(S.P->HardKilled);
    if (FI.allFired())
      ++ClassesFired;
  }
  // Thread kill.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 2;
    Plan.Events.push_back({FaultKind::KillThread, 100, 0});
    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(TwoThreadWorkload), true);
    if (FI.allFired())
      ++ClassesFired;
  }
  // Torn write.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 3;
    Plan.Events.push_back({FaultKind::TornWrite, 100, 0});
    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SnapAtEndWorkload), true);
    if (FI.allFired())
      ++ClassesFired;
  }
  // Snap corruption.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 4;
    Plan.Events.push_back({FaultKind::SnapCorrupt, 0, 8});
    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SnapAtEndWorkload), true);
    if (FI.allFired())
      ++ClassesFired;
  }
  // RPC drop.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 5;
    Plan.Events.push_back({FaultKind::RpcDropWire, 0, 0});
    FaultInjector FI(Plan);
    Deployment D;
    D.world().Injector = &FI;
    Machine *MA = D.addMachine("alpha");
    Machine *MB = D.addMachine("beta");
    Process *Client = MA->createProcess("client");
    Process *Server = MB->createProcess("server");
    std::string Error;
    Module CM = compileOrDie(R"(
fn main() export {
  var arg = alloc(8);
  var rep = alloc(1024);
  store(arg, 4);
  rpc(40, arg, 8, rep);
  print(load(rep));
}
)",
                             "climod", Technology::Native, "client.ml");
    Module SM = compileOrDie(R"(
fn main() export {
  srv_register(40);
  var buf = alloc(64);
  var lenp = alloc(8);
  while (1) {
    var id = rpc_recv(buf, 64, lenp);
    store(buf, load(buf) * 10);
    rpc_reply(id, buf, 8);
  }
}
)",
                             "srvmod", Technology::Native, "server.ml");
    ASSERT_NE(D.deploy(*Client, CM, true, Error), nullptr) << Error;
    ASSERT_NE(D.deploy(*Server, SM, true, Error), nullptr) << Error;
    Server->start("main");
    for (int I = 0; I < 10; ++I)
      D.world().stepSlice();
    Client->start("main");
    while (!Client->Exited && D.world().cycles() < 50'000'000)
      D.world().stepSlice();
    EXPECT_EQ(Client->Output, "40\n");
    if (FI.allFired())
      ++ClassesFired;
  }
  // Unload racing a snap.
  {
    FaultPlan Plan;
    Plan.Seed = Base + 6;
    Plan.Events.push_back({FaultKind::UnloadRace, 100, 0});
    SingleProcess S;
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SweepWorkload), true);
    EXPECT_FALSE(S.D.snaps().empty());
    if (FI.allFired())
      ++ClassesFired;
  }

  EXPECT_EQ(ClassesFired, 6u) << "every fault class must be exercisable";
}

// ----------------------------------------------------------------------------
// Triage: a trace recovered past a torn write (TruncatedAt-marked) must
// land in the same cluster as its uncorrupted counterpart — the tear
// cost the tail of the history, not the identity of the fault.
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, RecoveredTornTracesClusterWithCleanKills) {
  GoldenRun Golden(SnapAtEndWorkload);
  ASSERT_GT(Golden.TotalSlices, 40u);

  Rng Seeds(testSeed() ^ 0x6666);
  int Paired = 0;
  for (int Run = 0; Run < 10; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    // One steady-state cut point shared by both runs: the clean run is
    // killed there outright, the recovered run additionally has an
    // in-flight trace store torn at the same instant.
    uint64_t Half = Golden.TotalSlices / 2;
    uint64_t At = Half + R.below(Half / 2);

    FaultPlan CleanPlan;
    CleanPlan.Seed = Seed;
    CleanPlan.Events.push_back({FaultKind::KillProcess, At, 0});
    SingleProcess SC;
    FaultInjector CleanFI(CleanPlan);
    SC.D.world().Injector = &CleanFI;
    SC.runModule(compileOrDie(SnapAtEndWorkload), true);
    ASSERT_TRUE(SC.P->HardKilled) << "seed " << Seed;
    auto CleanPM = SC.D.daemonFor(*SC.M)->collectPostMortem(*SC.P);
    ASSERT_EQ(CleanPM.size(), 1u);
    ReconstructedTrace CleanTrace = SC.D.reconstruct(*CleanPM.front());
    FaultSignature Clean = extractSignature(*CleanPM.front(), CleanTrace);
    if (Clean.Path.empty())
      continue;

    FaultPlan TornPlan;
    TornPlan.Seed = Seed;
    TornPlan.Events.push_back({FaultKind::TornWrite, At, 0});
    TornPlan.Events.push_back({FaultKind::KillProcess, At, 0});
    SingleProcess ST;
    FaultInjector TornFI(TornPlan);
    ST.D.world().Injector = &TornFI;
    ST.runModule(compileOrDie(SnapAtEndWorkload), true);
    if (!TornFI.allFired())
      continue; // No record was in flight to tear at this cut.
    ASSERT_TRUE(ST.P->HardKilled) << "seed " << Seed;
    auto TornPM = ST.D.daemonFor(*ST.M)->collectPostMortem(*ST.P);
    ASSERT_EQ(TornPM.size(), 1u);
    ReconstructedTrace TornTrace = ST.D.reconstruct(*TornPM.front());
    bool Marked = false;
    for (const ThreadTrace &T : TornTrace.Threads)
      Marked |= T.TruncatedAt != UINT64_MAX;
    if (!Marked)
      continue; // The tear hit an already-consumed word.
    FaultSignature Torn = extractSignature(*TornPM.front(), TornTrace);
    EXPECT_NE(std::find(Torn.Markers.begin(), Torn.Markers.end(),
                        std::string("torn-tail")),
              Torn.Markers.end())
        << "seed " << Seed << ": recovered trace must carry the marker";
    if (Torn.Path.empty())
      continue;

    // Identical cut, so the two histories differ only in the torn tail:
    // the near tier must reunite them (the fingerprints differ — the
    // torn signature carries the marker and a shorter path).
    SignatureClusterer C;
    size_t CleanIdx = C.add(Clean, "clean");
    size_t TornIdx = C.add(Torn, "recovered");
    EXPECT_EQ(CleanIdx, TornIdx)
        << "seed " << Seed
        << ": a TruncatedAt-recovered trace split from its clean "
           "counterpart";
    Paired += CleanIdx == TornIdx;
  }
  // Most steady-state cuts have a record in flight; the sweep must pair
  // more often than it skips or it proves nothing.
  EXPECT_GT(Paired, 4) << "suspiciously few torn/clean pairs clustered";
}

// ----------------------------------------------------------------------------
// Record-and-replay under kill -9: an execution log byte-truncated
// mid-write still replays its surviving prefix, and the one permissible
// divergence lands exactly at the TruncatedAt marker — never before it.
// ----------------------------------------------------------------------------

TEST(CrashConsistencyTest, TruncatedExecutionLogReplaysPrefixExactly) {
  Rng Seeds(testSeed() ^ 0x7777);
  int Checked = 0;
  for (int Run = 0; Run < 8; ++Run) {
    uint64_t Seed = Seeds.next();
    Rng R(Seed);
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.Events.push_back({FaultKind::KillProcess, 40 + R.below(200), 0});

    SingleProcess S;
    S.D.Policy.RecordExecution = true;
    ExecutionRecorder Rec;
    Rec.attach(S.D);
    FaultInjector FI(Plan);
    S.D.world().Injector = &FI;
    S.runModule(compileOrDie(SweepWorkload), /*Instrument=*/true);
    ASSERT_TRUE(S.P->HardKilled) << "seed " << Seed;
    auto PM = S.D.daemonFor(*S.M)->collectPostMortem(*S.P);
    ASSERT_EQ(PM.size(), 1u);
    ASSERT_FALSE(PM[0]->ExecLog.empty()) << "seed " << Seed;
    const std::vector<uint8_t> &Full = PM[0]->ExecLog;
    ExecutionLog Intact;
    ASSERT_TRUE(ExecutionLog::deserialize(Full, Intact));
    ASSERT_FALSE(Intact.Truncated);

    // kill -9 mid-write: cut the byte stream at assorted points and
    // replay whatever prefix survives.
    for (int Cut = 0; Cut < 6; ++Cut) {
      size_t Bytes = Full.size() / 2 + R.below(Full.size() / 2 - 8);
      std::vector<uint8_t> Torn(Full.begin(), Full.begin() + Bytes);
      ExecutionLog Log;
      if (!ExecutionLog::deserialize(Torn, Log))
        continue; // Cut landed inside META/GENESIS: no world to rebuild.
      if (!Log.Truncated || Log.Entries.empty())
        continue;
      ASSERT_LT(Log.truncatedAt(), Intact.truncatedAt());
      ++Checked;

      ReplayDriver Drv(Log);
      std::string Error;
      ASSERT_TRUE(Drv.build(Error)) << "seed " << Seed << ": " << Error;
      EXPECT_TRUE(Drv.run()) << "seed " << Seed << " cut " << Bytes
                             << ": prefix replay stalled";
      // The prefix replays cleanly: the only divergence the enforcer may
      // report is the truncation itself, stamped exactly at truncatedAt().
      for (const Divergence &D : Drv.enforcer().divergences()) {
        EXPECT_EQ(D.K, Divergence::Kind::LogTruncated)
            << "seed " << Seed << " cut " << Bytes << ": "
            << divergenceKindName(D.K) << " — " << D.Detail;
        EXPECT_EQ(D.EventIndex, Log.truncatedAt())
            << "seed " << Seed << " cut " << Bytes
            << ": divergence before the TruncatedAt marker";
      }
      EXPECT_LE(Drv.enforcer().divergences().size(), 1u)
          << "seed " << Seed << " cut " << Bytes;
      // Replay runs to the end of the surviving log and no further (the
      // recorded kill typically lies beyond the cut), consuming every
      // recovered entry along the way.
      EXPECT_TRUE(Drv.enforcer().done())
          << "seed " << Seed << " cut " << Bytes;
      EXPECT_EQ(Drv.enforcer().consumed(), Log.Entries.size())
          << "seed " << Seed << " cut " << Bytes;
    }
  }
  EXPECT_GT(Checked, 5) << "truncation sweep never hit the event stream";
}
