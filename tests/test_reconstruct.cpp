//===- tests/test_reconstruct.cpp - Reconstruction unit tests -------------===//
//
// Part of the TraceBack reproduction project (paper section 4).
//
//===----------------------------------------------------------------------===//

#include "reconstruct/RecordRecovery.h"
#include "reconstruct/Reconstructor.h"
#include "reconstruct/Views.h"
#include "vm/Fault.h"

#include <gtest/gtest.h>

using namespace traceback;

namespace {
/// Builds a raw buffer image from a word list with sub-buffer sentinels.
SnapBufferImage makeBuffer(const std::vector<uint32_t> &DataWords,
                           uint32_t SubWords, uint32_t SubCount,
                           uint32_t Committed, uint64_t Owner) {
  SnapBufferImage B;
  B.SubBufferWords = SubWords;
  B.SubBufferCount = SubCount;
  B.CommittedSubBuffer = Committed;
  B.OwnerThread = Owner;
  B.RecordsBase = 0x1000;
  std::vector<uint32_t> Words(static_cast<size_t>(SubWords) * SubCount, 0);
  for (uint32_t S = 0; S < SubCount; ++S)
    Words[(S + 1ull) * SubWords - 1] = SentinelRecord;
  // Fill data skipping sentinel slots.
  size_t Pos = 0;
  for (uint32_t W : DataWords) {
    while (Pos < Words.size() && Words[Pos] == SentinelRecord)
      ++Pos;
    if (Pos >= Words.size())
      break;
    Words[Pos++] = W;
  }
  B.Raw.resize(Words.size() * 4);
  for (size_t I = 0; I < Words.size(); ++I)
    for (int J = 0; J < 4; ++J)
      B.Raw[I * 4 + J] = static_cast<uint8_t>(Words[I] >> (J * 8));
  return B;
}

std::vector<uint32_t> threadStart(uint64_t Tid, uint64_t Ts = 5) {
  return encodeExtRecord({ExtType::ThreadStart, 0, {Tid, Ts}});
}
std::vector<uint32_t> threadEnd(uint64_t Tid, uint64_t Ts = 9) {
  return encodeExtRecord({ExtType::ThreadEnd, 0, {Tid, Ts}});
}

void append(std::vector<uint32_t> &Out, const std::vector<uint32_t> &In) {
  Out.insert(Out.end(), In.begin(), In.end());
}
} // namespace

TEST(LinearizeTest, RingOrderAndSentinelStripping) {
  std::vector<uint32_t> Words = {1, 2, 3, SentinelRecord, 5, 6};
  // Frontier at index 1 (newest = 2): oldest-first = 3,5,6,1,2.
  std::vector<uint32_t> Out = linearizeRing(Words, 1);
  EXPECT_EQ(Out, (std::vector<uint32_t>{3, 5, 6, 1, 2}));
}

TEST(RecoveryTest, CleanCursorFrontier) {
  std::vector<uint32_t> Data;
  append(Data, threadStart(7));
  Data.push_back(makeDagRecord(10));
  Data.push_back(makeDagRecord(11) | 1);
  SnapBufferImage B = makeBuffer(Data, 16, 2, UINT32_MAX, 7);
  // Thread cursor points at the last written word.
  SnapThreadInfo TI;
  TI.ThreadId = 7;
  TI.Cursor = 0x1000 + (Data.size() - 1) * 4;
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {TI}, Warnings);
  ASSERT_EQ(Segments.size(), 1u);
  EXPECT_EQ(Segments[0].ThreadId, 7u);
  EXPECT_FALSE(Segments[0].Truncated);
  ASSERT_EQ(Segments[0].Records.size(), 3u);
  EXPECT_EQ(Segments[0].Records[1].DagWord, makeDagRecord(10));
  EXPECT_EQ(Segments[0].Records[2].DagWord, makeDagRecord(11) | 1);
}

TEST(RecoveryTest, AbruptTerminationUsesCommitScan) {
  // No cursor info: frontier found via committed index + last-non-zero.
  std::vector<uint32_t> Data;
  append(Data, threadStart(3));
  for (int I = 0; I < 20; ++I)
    Data.push_back(makeDagRecord(100 + I));
  SnapBufferImage B = makeBuffer(Data, 16, 4, /*Committed=*/0, 3);
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {}, Warnings);
  ASSERT_EQ(Segments.size(), 1u);
  // Records in sub 0 (15 slots) and the active sub-buffer are recovered.
  EXPECT_GE(Segments[0].Records.size(), 20u);
}

TEST(RecoveryTest, MultipleThreadLifetimesSplit) {
  std::vector<uint32_t> Data;
  append(Data, threadStart(2));
  Data.push_back(makeDagRecord(10));
  append(Data, threadEnd(2));
  append(Data, threadStart(4));
  Data.push_back(makeDagRecord(11));
  Data.push_back(makeDagRecord(12));
  SnapBufferImage B = makeBuffer(Data, 32, 2, UINT32_MAX, 4);
  SnapThreadInfo TI;
  TI.ThreadId = 4;
  TI.Cursor = 0x1000 + (Data.size() - 1) * 4;
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {TI}, Warnings);
  ASSERT_EQ(Segments.size(), 2u);
  EXPECT_EQ(Segments[0].ThreadId, 2u);
  EXPECT_EQ(Segments[1].ThreadId, 4u);
  EXPECT_EQ(Segments[0].Records.size(), 3u); // start, dag, end
  EXPECT_EQ(Segments[1].Records.size(), 3u); // start, dag, dag
}

TEST(RecoveryTest, SeamTornRecordRepaired) {
  // Simulate ring overwrite: an ext record whose header was overwritten
  // leaves orphan continuation words at the oldest end.
  std::vector<uint32_t> Orphans = threadStart(9);
  std::vector<uint32_t> Data;
  // Drop the header, keep continuations (torn record).
  for (size_t I = 1; I < Orphans.size(); ++I)
    Data.push_back(Orphans[I]);
  Data.push_back(makeDagRecord(42));
  SnapBufferImage B = makeBuffer(Data, 32, 2, UINT32_MAX, 9);
  SnapThreadInfo TI;
  TI.ThreadId = 9;
  TI.Cursor = 0x1000 + (Data.size() - 1) * 4;
  std::vector<std::string> Warnings;
  auto Segments = recoverBufferRecords(B, {TI}, Warnings);
  ASSERT_EQ(Segments.size(), 1u);
  EXPECT_TRUE(Segments[0].Truncated);
  ASSERT_EQ(Segments[0].Records.size(), 1u);
  EXPECT_EQ(Segments[0].Records[0].DagWord, makeDagRecord(42));
  EXPECT_FALSE(Warnings.empty());
}

TEST(RecoveryTest, EmptyBufferYieldsNothing) {
  SnapBufferImage B = makeBuffer({}, 16, 2, UINT32_MAX, 0);
  std::vector<std::string> Warnings;
  EXPECT_TRUE(recoverBufferRecords(B, {}, Warnings).empty());
}

// ---------------------------------------------------------------------------
// Reconstructor with a synthetic mapfile.
// ---------------------------------------------------------------------------

namespace {
/// One module, one DAG: header block (lines 1-2, ends in call), then a
/// conditional with two arm blocks (line 3 / line 4) joining (line 5).
MapFile syntheticMap(MD5Digest Sum) {
  MapFile Map;
  Map.ModuleName = "synth";
  Map.Checksum = Sum;
  Map.DagIdBase = 100;
  Map.DagIdCount = 1;
  Map.Files = {"synth.c"};
  MapDag D;
  D.RelId = 0;
  MapBlock Header;
  Header.StartOffset = 0;
  Header.EndOffset = 20;
  Header.Flags = MBF_FuncEntry;
  Header.Function = "f";
  Header.Lines = {{0, 1, 0}, {0, 2, 10}};
  Header.Succs = {1, 2};
  MapBlock Then;
  Then.StartOffset = 20;
  Then.EndOffset = 30;
  Then.BitIndex = 0;
  Then.Function = "f";
  Then.Lines = {{0, 3, 20}};
  Then.Succs = {3};
  MapBlock Else;
  Else.StartOffset = 30;
  Else.EndOffset = 40;
  Else.BitIndex = 1;
  Else.Function = "f";
  Else.Lines = {{0, 4, 30}};
  Else.Succs = {3};
  MapBlock Join;
  Join.StartOffset = 40;
  Join.EndOffset = 50;
  Join.BitIndex = 2;
  Join.Function = "f";
  Join.Lines = {{0, 5, 40}};
  Join.Flags = MBF_EndsInRet;
  D.Blocks = {Header, Then, Else, Join};
  Map.Dags.push_back(D);
  return Map;
}

SnapFile syntheticSnap(const std::vector<uint32_t> &Words, MD5Digest Sum) {
  SnapFile Snap;
  Snap.ProcessName = "p";
  Snap.MachineName = "m";
  Snap.RuntimeId = 777;
  SnapModuleInfo MI;
  MI.Name = "synth";
  MI.Checksum = Sum;
  MI.DagIdBase = 100;
  MI.DagIdCount = 1;
  MI.Instrumented = true;
  Snap.Modules.push_back(MI);
  SnapBufferImage B = makeBuffer(Words, 64, 2, UINT32_MAX, 1);
  Snap.Buffers.push_back(B);
  SnapThreadInfo TI;
  TI.ThreadId = 1;
  TI.Cursor = 0x1000 + (Words.size() - 1) * 4;
  Snap.Threads.push_back(TI);
  return Snap;
}
} // namespace

TEST(ReconstructorTest, DagToLines) {
  MD5Digest Sum = MD5::hash("synth", 5);
  MapFileStore Store;
  Store.add(syntheticMap(Sum));
  std::vector<uint32_t> Words;
  append(Words, threadStart(1));
  Words.push_back(makeDagRecord(100) | 0b101); // then-arm + join
  SnapFile Snap = syntheticSnap(Words, Sum);
  Reconstructor R(Store);
  ReconstructedTrace T = R.reconstruct(Snap);
  ASSERT_EQ(T.Threads.size(), 1u);
  auto Lines = [&] {
    std::vector<uint32_t> L;
    for (const TraceEvent &E : T.Threads[0].Events)
      if (E.EventKind == TraceEvent::Kind::Line)
        L.push_back(E.Line);
    return L;
  }();
  EXPECT_EQ(Lines, (std::vector<uint32_t>{1, 2, 3, 5}));
}

TEST(ReconstructorTest, ExceptionTrimsWithinBlock) {
  MD5Digest Sum = MD5::hash("synth", 5);
  MapFileStore Store;
  Store.add(syntheticMap(Sum));
  std::vector<uint32_t> Words;
  append(Words, threadStart(1));
  Words.push_back(makeDagRecord(100)); // Header only (lines 1,2)...
  // Exception at offset 5 = inside line 1's span (line 2 starts at 10).
  append(Words, encodeExtRecord({ExtType::Exception,
                                 static_cast<uint16_t>(FaultCode::Segv),
                                 {Sum.low64(), 5, 123}}));
  SnapFile Snap = syntheticSnap(Words, Sum);
  Reconstructor R(Store);
  ReconstructedTrace T = R.reconstruct(Snap);
  ASSERT_EQ(T.Threads.size(), 1u);
  std::vector<uint32_t> Lines;
  for (const TraceEvent &E : T.Threads[0].Events)
    if (E.EventKind == TraceEvent::Kind::Line)
      Lines.push_back(E.Line);
  EXPECT_EQ(Lines, (std::vector<uint32_t>{1}))
      << "line 2 starts after the fault offset and must be trimmed";
}

TEST(ReconstructorTest, UnknownModuleWarns) {
  MD5Digest Sum = MD5::hash("synth", 5);
  MapFileStore Store; // Empty: no mapfile.
  std::vector<uint32_t> Words;
  append(Words, threadStart(1));
  Words.push_back(makeDagRecord(100));
  SnapFile Snap = syntheticSnap(Words, Sum);
  Reconstructor R(Store);
  ReconstructedTrace T = R.reconstruct(Snap);
  EXPECT_FALSE(T.Warnings.empty());
  ASSERT_EQ(T.Threads.size(), 1u);
  bool Untraced = false;
  for (const TraceEvent &E : T.Threads[0].Events)
    if (E.EventKind == TraceEvent::Kind::Untraced)
      Untraced = true;
  EXPECT_TRUE(Untraced);
}

TEST(ReconstructorTest, CorruptPathBitsWarn) {
  MD5Digest Sum = MD5::hash("synth", 5);
  MapFileStore Store;
  Store.add(syntheticMap(Sum));
  std::vector<uint32_t> Words;
  append(Words, threadStart(1));
  Words.push_back(makeDagRecord(100) | 0b011); // Both arms: impossible.
  SnapFile Snap = syntheticSnap(Words, Sum);
  Reconstructor R(Store);
  ReconstructedTrace T = R.reconstruct(Snap);
  bool Warned = false;
  for (const std::string &W : T.Warnings)
    if (W.find("do not decode") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
}
