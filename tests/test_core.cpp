//===- tests/test_core.cpp - Core facade / persistence tests --------------===//
//
// Part of the TraceBack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "core/DynamicCode.h"
#include "core/FileIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace traceback;
using namespace traceback::testing_helpers;

namespace {
std::string tempPath(const char *Name) {
  return std::string("/tmp/tbtest_") + Name;
}
} // namespace

TEST(FileIOTest, ModuleRoundTrip) {
  Module M = compileOrDie("fn main() export { print(7); }", "persisted");
  std::string Path = tempPath("mod.tbo");
  ASSERT_TRUE(saveModule(M, Path));
  Module Back;
  ASSERT_TRUE(loadModule(Path, Back));
  EXPECT_EQ(Back.Name, M.Name);
  EXPECT_EQ(Back.Code, M.Code);
  std::remove(Path.c_str());
  EXPECT_FALSE(loadModule(Path, Back)) << "missing file must fail";
}

TEST(FileIOTest, SnapAndMapRoundTripThroughDisk) {
  SingleProcess S;
  Module M = compileOrDie("fn main() export { snap(2); }");
  S.runModule(M, true);
  ASSERT_FALSE(S.D.snaps().empty());

  std::string SnapPath = tempPath("snap.tbsnap");
  std::string MapPath = tempPath("map.tbmap");
  ASSERT_TRUE(saveSnap(S.D.snaps().back(), SnapPath));
  ASSERT_EQ(S.D.maps().all().size(), 1u);
  ASSERT_TRUE(saveMapFile(S.D.maps().all()[0], MapPath));

  // A "different machine": reconstruct purely from the files.
  SnapFile Snap;
  MapFile Map;
  ASSERT_TRUE(loadSnap(SnapPath, Snap));
  ASSERT_TRUE(loadMapFile(MapPath, Map));
  MapFileStore Store;
  Store.add(std::move(Map));
  Reconstructor R(Store);
  ReconstructedTrace T = R.reconstruct(Snap);
  EXPECT_FALSE(T.Threads.empty());
  EXPECT_TRUE(T.Warnings.empty());
  std::remove(SnapPath.c_str());
  std::remove(MapPath.c_str());
}

TEST(FileIOTest, CorruptFilesRejected) {
  std::string Path = tempPath("junk.bin");
  ASSERT_TRUE(writeFileText(Path, "this is not a module"));
  Module M;
  EXPECT_FALSE(loadModule(Path, M));
  SnapFile S;
  EXPECT_FALSE(loadSnap(Path, S));
  MapFile Map;
  EXPECT_FALSE(loadMapFile(Path, Map));
  std::remove(Path.c_str());
}

TEST(DynamicCodeTest, CacheHitsOnIdenticalPage) {
  // Section 3.4: an ASP-style page compiled twice (same content) is
  // instrumented once; the second consumer hits the cache.
  Module Page = compileOrDie("fn handler() export { return 7; }", "page1");
  InstrumentationCache Cache;
  InstrumentOptions Opts;
  Module Out1, Out2;
  MapFile Map1, Map2;
  std::string Error;
  ASSERT_TRUE(Cache.instrument(Page, Opts, Out1, Map1, Error)) << Error;
  ASSERT_TRUE(Cache.instrument(Page, Opts, Out2, Map2, Error)) << Error;
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Out1.Code, Out2.Code);
  EXPECT_EQ(Map1.Checksum, Map2.Checksum);
}

TEST(DynamicCodeTest, RebuiltPageReinstrumented) {
  Module PageV1 = compileOrDie("fn handler() export { return 7; }", "page");
  Module PageV2 = compileOrDie("fn handler() export { return 8; }", "page");
  InstrumentationCache Cache;
  InstrumentOptions Opts;
  Module Out;
  MapFile Map;
  std::string Error;
  ASSERT_TRUE(Cache.instrument(PageV1, Opts, Out, Map, Error));
  ASSERT_TRUE(Cache.instrument(PageV2, Opts, Out, Map, Error));
  EXPECT_EQ(Cache.misses(), 2u) << "changed checksum -> re-instrument";
  EXPECT_EQ(Cache.hits(), 0u);
}

TEST(DynamicCodeTest, OnDiskCacheSharedAcrossProcesses) {
  std::string Dir = tempPath("cache_dir");
  std::string Cmd = "rm -rf " + Dir + " && mkdir -p " + Dir;
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  Module Page = compileOrDie("fn handler() export { return 1; }", "diskpage");
  InstrumentOptions Opts;
  Module Out;
  MapFile Map;
  std::string Error;
  {
    InstrumentationCache First(Dir);
    ASSERT_TRUE(First.instrument(Page, Opts, Out, Map, Error));
    EXPECT_EQ(First.misses(), 1u);
  }
  {
    // A fresh process (new cache object) finds the on-disk entry.
    InstrumentationCache Second(Dir);
    ASSERT_TRUE(Second.instrument(Page, Opts, Out, Map, Error));
    EXPECT_EQ(Second.hits(), 1u);
    EXPECT_EQ(Second.misses(), 0u);
  }
  std::system(("rm -rf " + Dir).c_str());
}

TEST(CoreTest, MemoryCaptureInSnap) {
  SingleProcess S;
  S.D.Policy.CaptureMemory = true;
  // Put a recognizable value on the stack right before the fault.
  Module M = compileOrDie(R"(
fn main() export {
  var marker = 81985529216486895;
  var p = 0;
  print(load(p) + marker);
}
)");
  S.runModule(M, true);
  ASSERT_FALSE(S.D.snaps().empty());
  const SnapFile &Snap = S.D.snaps().back();
  ASSERT_FALSE(Snap.Memory.empty());
  // The marker value 0x0123456789ABCDEF must appear in a stack region.
  const uint8_t Pattern[] = {0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01};
  bool Found = false;
  for (const SnapMemoryRegion &R : Snap.Memory)
    for (size_t I = 0; I + 8 <= R.Bytes.size(); ++I)
      if (std::memcmp(R.Bytes.data() + I, Pattern, 8) == 0)
        Found = true;
  EXPECT_TRUE(Found) << "local variable value must be in the memory dump";
  // Round-trips through serialization.
  SnapFile Back;
  ASSERT_TRUE(SnapFile::deserialize(Snap.serialize(), Back));
  ASSERT_EQ(Back.Memory.size(), Snap.Memory.size());
  EXPECT_EQ(Back.Memory[0].Bytes, Snap.Memory[0].Bytes);
  // The dump renders.
  std::string Dump = renderMemoryDump(Back);
  EXPECT_NE(Dump.find("stack t1"), std::string::npos);
}

TEST(CoreTest, LogicalClockFallbackOrdersEvents) {
  SingleProcess S;
  S.D.Policy.UseLogicalClock = true;
  Module M = compileOrDie(R"(
fn main() export {
  for (var i = 0; i < 20; i = i + 1) { yield(); }
  snap(1);
}
)");
  S.runModule(M, true);
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  // Timestamps are logical ticks: strictly positive and non-decreasing.
  uint64_t Last = 0;
  bool AnyTs = false;
  for (const TraceEvent &E : T.Threads[0].Events) {
    if (E.Timestamp == 0)
      continue;
    AnyTs = true;
    EXPECT_GE(E.Timestamp, Last);
    Last = E.Timestamp;
  }
  EXPECT_TRUE(AnyTs);
  EXPECT_LT(Last, 1000u) << "logical ticks, not machine cycles";
}

TEST(CoreTest, TimestampsMonotonicWithinThread) {
  // Regression for the probe/record interleaving bug: a lightweight probe
  // must never corrupt a runtime-written record (the pad-word protocol).
  SingleProcess S;
  Module M = compileOrDie(R"(
fn main() export {
  var s = 0;
  for (var i = 0; i < 200; i = i + 1) {
    if (i & 1) { s = s + now(); } else { s = s ^ i; }
    if (s & 2) { s = s + 1; } else { s = s - 1; }
  }
  snap(1);
}
)");
  S.runModule(M, true);
  ReconstructedTrace T = S.D.reconstruct(S.D.snaps().back());
  ASSERT_FALSE(T.Threads.empty());
  uint64_t Last = 0;
  for (const TraceEvent &E : T.Threads[0].Events) {
    if (E.Timestamp == 0)
      continue;
    EXPECT_GE(E.Timestamp, Last) << "corrupted timestamp record";
    EXPECT_LT(E.Timestamp, 1ull << 40) << "garbage high bits";
    Last = E.Timestamp;
  }
}

TEST(CoreTest, LibTbcAssemblesAndExports) {
  Module M = buildLibTbc();
  EXPECT_EQ(M.Name, "libtbc");
  for (const char *Sym : {"memcpy", "strcpy", "memset", "strlen"}) {
    const Symbol *S = M.findSymbol(Sym);
    ASSERT_NE(S, nullptr) << Sym;
    EXPECT_TRUE(S->Exported);
  }
}

TEST(CoreTest, UnresolvedImportFaultsAtCallTime) {
  SingleProcess S;
  Module Importer;
  std::string Error;
  ASSERT_TRUE(minilang::compileMiniLang(
      "import ghost_fn;\nfn main() export { ghost_fn(); }", "i.ml",
      "importer", Technology::Native, Importer, Error));
  // Imports bind lazily: load succeeds, the call faults at runtime.
  ASSERT_NE(S.D.deploy(*S.P, Importer, true, Error), nullptr) << Error;
  S.P->start("main");
  S.D.world().run();
  EXPECT_EQ(S.P->LastFault.Code, FaultCode::BadJump);
}
