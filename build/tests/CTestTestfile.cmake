# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_records[1]_include.cmake")
include("/root/repo/build/tests/test_tiling[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_reconstruct[1]_include.cmake")
include("/root/repo/build/tests/test_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_views[1]_include.cmake")
