file(REMOVE_RECURSE
  "CMakeFiles/test_end2end.dir/test_end2end.cpp.o"
  "CMakeFiles/test_end2end.dir/test_end2end.cpp.o.d"
  "test_end2end"
  "test_end2end.pdb"
  "test_end2end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
