file(REMOVE_RECURSE
  "CMakeFiles/tb_distributed.dir/ServiceDaemon.cpp.o"
  "CMakeFiles/tb_distributed.dir/ServiceDaemon.cpp.o.d"
  "libtb_distributed.a"
  "libtb_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
