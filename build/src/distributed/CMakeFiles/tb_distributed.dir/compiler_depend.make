# Empty compiler generated dependencies file for tb_distributed.
# This may be replaced when dependencies are built.
