file(REMOVE_RECURSE
  "libtb_distributed.a"
)
