file(REMOVE_RECURSE
  "CMakeFiles/tb_support.dir/Compress.cpp.o"
  "CMakeFiles/tb_support.dir/Compress.cpp.o.d"
  "CMakeFiles/tb_support.dir/MD5.cpp.o"
  "CMakeFiles/tb_support.dir/MD5.cpp.o.d"
  "CMakeFiles/tb_support.dir/Text.cpp.o"
  "CMakeFiles/tb_support.dir/Text.cpp.o.d"
  "libtb_support.a"
  "libtb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
