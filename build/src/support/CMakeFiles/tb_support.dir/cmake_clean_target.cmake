file(REMOVE_RECURSE
  "libtb_support.a"
)
