# Empty compiler generated dependencies file for tb_support.
# This may be replaced when dependencies are built.
