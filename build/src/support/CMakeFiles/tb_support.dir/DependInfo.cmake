
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Compress.cpp" "src/support/CMakeFiles/tb_support.dir/Compress.cpp.o" "gcc" "src/support/CMakeFiles/tb_support.dir/Compress.cpp.o.d"
  "/root/repo/src/support/MD5.cpp" "src/support/CMakeFiles/tb_support.dir/MD5.cpp.o" "gcc" "src/support/CMakeFiles/tb_support.dir/MD5.cpp.o.d"
  "/root/repo/src/support/Text.cpp" "src/support/CMakeFiles/tb_support.dir/Text.cpp.o" "gcc" "src/support/CMakeFiles/tb_support.dir/Text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
