# Empty dependencies file for tb_baselines.
# This may be replaced when dependencies are built.
