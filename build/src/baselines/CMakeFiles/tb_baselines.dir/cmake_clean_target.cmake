file(REMOVE_RECURSE
  "libtb_baselines.a"
)
