file(REMOVE_RECURSE
  "CMakeFiles/tb_baselines.dir/BallLarus.cpp.o"
  "CMakeFiles/tb_baselines.dir/BallLarus.cpp.o.d"
  "CMakeFiles/tb_baselines.dir/NaiveTracer.cpp.o"
  "CMakeFiles/tb_baselines.dir/NaiveTracer.cpp.o.d"
  "libtb_baselines.a"
  "libtb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
