
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/tb_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/tb_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/tb_analysis.dir/Liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
