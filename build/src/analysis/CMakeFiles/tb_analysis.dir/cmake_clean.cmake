file(REMOVE_RECURSE
  "CMakeFiles/tb_analysis.dir/CFG.cpp.o"
  "CMakeFiles/tb_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/tb_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/tb_analysis.dir/Liveness.cpp.o.d"
  "libtb_analysis.a"
  "libtb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
