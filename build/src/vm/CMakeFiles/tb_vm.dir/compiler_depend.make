# Empty compiler generated dependencies file for tb_vm.
# This may be replaced when dependencies are built.
