file(REMOVE_RECURSE
  "libtb_vm.a"
)
