file(REMOVE_RECURSE
  "CMakeFiles/tb_vm.dir/AddressSpace.cpp.o"
  "CMakeFiles/tb_vm.dir/AddressSpace.cpp.o.d"
  "CMakeFiles/tb_vm.dir/Process.cpp.o"
  "CMakeFiles/tb_vm.dir/Process.cpp.o.d"
  "CMakeFiles/tb_vm.dir/World.cpp.o"
  "CMakeFiles/tb_vm.dir/World.cpp.o.d"
  "libtb_vm.a"
  "libtb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
