
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/DagBaseFile.cpp" "src/runtime/CMakeFiles/tb_runtime.dir/DagBaseFile.cpp.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/DagBaseFile.cpp.o.d"
  "/root/repo/src/runtime/Policy.cpp" "src/runtime/CMakeFiles/tb_runtime.dir/Policy.cpp.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/Policy.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/runtime/CMakeFiles/tb_runtime.dir/Runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/Runtime.cpp.o.d"
  "/root/repo/src/runtime/Snap.cpp" "src/runtime/CMakeFiles/tb_runtime.dir/Snap.cpp.o" "gcc" "src/runtime/CMakeFiles/tb_runtime.dir/Snap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tb_runtime_records.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
