file(REMOVE_RECURSE
  "CMakeFiles/tb_runtime.dir/DagBaseFile.cpp.o"
  "CMakeFiles/tb_runtime.dir/DagBaseFile.cpp.o.d"
  "CMakeFiles/tb_runtime.dir/Policy.cpp.o"
  "CMakeFiles/tb_runtime.dir/Policy.cpp.o.d"
  "CMakeFiles/tb_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/tb_runtime.dir/Runtime.cpp.o.d"
  "CMakeFiles/tb_runtime.dir/Snap.cpp.o"
  "CMakeFiles/tb_runtime.dir/Snap.cpp.o.d"
  "libtb_runtime.a"
  "libtb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
