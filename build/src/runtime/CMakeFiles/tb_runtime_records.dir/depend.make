# Empty dependencies file for tb_runtime_records.
# This may be replaced when dependencies are built.
