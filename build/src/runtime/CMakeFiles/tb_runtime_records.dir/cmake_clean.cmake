file(REMOVE_RECURSE
  "CMakeFiles/tb_runtime_records.dir/TraceRecord.cpp.o"
  "CMakeFiles/tb_runtime_records.dir/TraceRecord.cpp.o.d"
  "libtb_runtime_records.a"
  "libtb_runtime_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_runtime_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
