file(REMOVE_RECURSE
  "libtb_runtime_records.a"
)
