# Empty compiler generated dependencies file for tb_lang.
# This may be replaced when dependencies are built.
