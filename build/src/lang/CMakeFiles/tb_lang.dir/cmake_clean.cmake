file(REMOVE_RECURSE
  "CMakeFiles/tb_lang.dir/CodeGen.cpp.o"
  "CMakeFiles/tb_lang.dir/CodeGen.cpp.o.d"
  "CMakeFiles/tb_lang.dir/Parser.cpp.o"
  "CMakeFiles/tb_lang.dir/Parser.cpp.o.d"
  "libtb_lang.a"
  "libtb_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
