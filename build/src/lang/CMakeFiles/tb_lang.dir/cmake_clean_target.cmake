file(REMOVE_RECURSE
  "libtb_lang.a"
)
