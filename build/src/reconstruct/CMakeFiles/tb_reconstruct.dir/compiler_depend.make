# Empty compiler generated dependencies file for tb_reconstruct.
# This may be replaced when dependencies are built.
