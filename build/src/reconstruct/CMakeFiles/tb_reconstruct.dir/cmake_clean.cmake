file(REMOVE_RECURSE
  "CMakeFiles/tb_reconstruct.dir/Reconstructor.cpp.o"
  "CMakeFiles/tb_reconstruct.dir/Reconstructor.cpp.o.d"
  "CMakeFiles/tb_reconstruct.dir/RecordRecovery.cpp.o"
  "CMakeFiles/tb_reconstruct.dir/RecordRecovery.cpp.o.d"
  "CMakeFiles/tb_reconstruct.dir/Stitch.cpp.o"
  "CMakeFiles/tb_reconstruct.dir/Stitch.cpp.o.d"
  "CMakeFiles/tb_reconstruct.dir/Views.cpp.o"
  "CMakeFiles/tb_reconstruct.dir/Views.cpp.o.d"
  "libtb_reconstruct.a"
  "libtb_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
