file(REMOVE_RECURSE
  "libtb_reconstruct.a"
)
