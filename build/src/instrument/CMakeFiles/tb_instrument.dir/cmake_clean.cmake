file(REMOVE_RECURSE
  "CMakeFiles/tb_instrument.dir/Checksum.cpp.o"
  "CMakeFiles/tb_instrument.dir/Checksum.cpp.o.d"
  "CMakeFiles/tb_instrument.dir/DagTiling.cpp.o"
  "CMakeFiles/tb_instrument.dir/DagTiling.cpp.o.d"
  "CMakeFiles/tb_instrument.dir/Instrumenter.cpp.o"
  "CMakeFiles/tb_instrument.dir/Instrumenter.cpp.o.d"
  "CMakeFiles/tb_instrument.dir/MapFile.cpp.o"
  "CMakeFiles/tb_instrument.dir/MapFile.cpp.o.d"
  "libtb_instrument.a"
  "libtb_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
