# Empty compiler generated dependencies file for tb_instrument.
# This may be replaced when dependencies are built.
