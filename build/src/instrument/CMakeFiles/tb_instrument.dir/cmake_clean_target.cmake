file(REMOVE_RECURSE
  "libtb_instrument.a"
)
