file(REMOVE_RECURSE
  "libtb_core.a"
)
