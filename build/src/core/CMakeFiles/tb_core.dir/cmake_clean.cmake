file(REMOVE_RECURSE
  "CMakeFiles/tb_core.dir/DynamicCode.cpp.o"
  "CMakeFiles/tb_core.dir/DynamicCode.cpp.o.d"
  "CMakeFiles/tb_core.dir/FileIO.cpp.o"
  "CMakeFiles/tb_core.dir/FileIO.cpp.o.d"
  "CMakeFiles/tb_core.dir/Session.cpp.o"
  "CMakeFiles/tb_core.dir/Session.cpp.o.d"
  "libtb_core.a"
  "libtb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
