file(REMOVE_RECURSE
  "libtb_isa.a"
)
