file(REMOVE_RECURSE
  "CMakeFiles/tb_isa.dir/Assembler.cpp.o"
  "CMakeFiles/tb_isa.dir/Assembler.cpp.o.d"
  "CMakeFiles/tb_isa.dir/Builder.cpp.o"
  "CMakeFiles/tb_isa.dir/Builder.cpp.o.d"
  "CMakeFiles/tb_isa.dir/Disassembler.cpp.o"
  "CMakeFiles/tb_isa.dir/Disassembler.cpp.o.d"
  "CMakeFiles/tb_isa.dir/Encoding.cpp.o"
  "CMakeFiles/tb_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/tb_isa.dir/Module.cpp.o"
  "CMakeFiles/tb_isa.dir/Module.cpp.o.d"
  "CMakeFiles/tb_isa.dir/Opcode.cpp.o"
  "CMakeFiles/tb_isa.dir/Opcode.cpp.o.d"
  "libtb_isa.a"
  "libtb_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
