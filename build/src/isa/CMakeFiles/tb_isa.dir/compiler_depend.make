# Empty compiler generated dependencies file for tb_isa.
# This may be replaced when dependencies are built.
