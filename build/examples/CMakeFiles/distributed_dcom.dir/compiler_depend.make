# Empty compiler generated dependencies file for distributed_dcom.
# This may be replaced when dependencies are built.
