file(REMOVE_RECURSE
  "CMakeFiles/distributed_dcom.dir/distributed_dcom.cpp.o"
  "CMakeFiles/distributed_dcom.dir/distributed_dcom.cpp.o.d"
  "distributed_dcom"
  "distributed_dcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_dcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
