# Empty dependencies file for crash_investigation.
# This may be replaced when dependencies are built.
