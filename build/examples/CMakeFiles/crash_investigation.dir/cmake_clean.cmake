file(REMOVE_RECURSE
  "CMakeFiles/crash_investigation.dir/crash_investigation.cpp.o"
  "CMakeFiles/crash_investigation.dir/crash_investigation.cpp.o.d"
  "crash_investigation"
  "crash_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
