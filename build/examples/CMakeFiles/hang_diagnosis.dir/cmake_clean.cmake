file(REMOVE_RECURSE
  "CMakeFiles/hang_diagnosis.dir/hang_diagnosis.cpp.o"
  "CMakeFiles/hang_diagnosis.dir/hang_diagnosis.cpp.o.d"
  "hang_diagnosis"
  "hang_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hang_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
