# Empty dependencies file for hang_diagnosis.
# This may be replaced when dependencies are built.
