file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_specweb.dir/bench_table2_specweb.cpp.o"
  "CMakeFiles/bench_table2_specweb.dir/bench_table2_specweb.cpp.o.d"
  "bench_table2_specweb"
  "bench_table2_specweb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_specweb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
