
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_specweb.cpp" "bench/CMakeFiles/bench_table2_specweb.dir/bench_table2_specweb.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_specweb.dir/bench_table2_specweb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/reconstruct/CMakeFiles/tb_reconstruct.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/tb_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/tb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/tb_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tb_runtime_records.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
