file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_sync.dir/bench_distributed_sync.cpp.o"
  "CMakeFiles/bench_distributed_sync.dir/bench_distributed_sync.cpp.o.d"
  "bench_distributed_sync"
  "bench_distributed_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
