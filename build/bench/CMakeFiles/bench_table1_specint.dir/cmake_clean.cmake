file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_specint.dir/bench_table1_specint.cpp.o"
  "CMakeFiles/bench_table1_specint.dir/bench_table1_specint.cpp.o.d"
  "bench_table1_specint"
  "bench_table1_specint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_specint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
