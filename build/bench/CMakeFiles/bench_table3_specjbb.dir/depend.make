# Empty dependencies file for bench_table3_specjbb.
# This may be replaced when dependencies are built.
