file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_specjbb.dir/bench_table3_specjbb.cpp.o"
  "CMakeFiles/bench_table3_specjbb.dir/bench_table3_specjbb.cpp.o.d"
  "bench_table3_specjbb"
  "bench_table3_specjbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_specjbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
