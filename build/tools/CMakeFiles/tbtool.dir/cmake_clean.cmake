file(REMOVE_RECURSE
  "CMakeFiles/tbtool.dir/tbtool.cpp.o"
  "CMakeFiles/tbtool.dir/tbtool.cpp.o.d"
  "tbtool"
  "tbtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
