# Empty compiler generated dependencies file for tbtool.
# This may be replaced when dependencies are built.
